"""Deployment shapes and backend builders shared by the benchmarks.

The paper's instance-type studies hold total cores at 16 while varying
the type; these are the exact axis labels from Figures 3/4, 7/8 and
12/13: ``L - 8 x 2``, ``XL - 4 x 4``, ``HCXL - 2 x 8``, ``HM4XL - 2 x 8``.
"""

from __future__ import annotations

from repro.cloud.failures import FaultPlan
from repro.core.backends import Backend, make_backend

# (instance type, n_instances, workers_per_instance) at 16 cores total.
EC2_16_CORE_SHAPES: list[tuple[str, int, int]] = [
    ("L", 8, 2),
    ("XL", 4, 4),
    ("HCXL", 2, 8),
    ("HM4XL", 2, 8),
]


def quiet_ec2(
    instance_type: str = "HCXL",
    n_instances: int = 2,
    workers_per_instance: int = 8,
    **kwargs,
) -> Backend:
    """A deterministic, fault-free EC2 backend."""
    defaults = dict(
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
        seed=17,
    )
    defaults.update(kwargs)
    return make_backend(
        "ec2",
        instance_type=instance_type,
        n_instances=n_instances,
        workers_per_instance=workers_per_instance,
        **defaults,
    )


def quiet_azure(
    instance_type: str = "Small",
    n_instances: int = 16,
    workers_per_instance: int = 1,
    **kwargs,
) -> Backend:
    """A deterministic, fault-free Azure backend."""
    defaults = dict(
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
        seed=17,
    )
    defaults.update(kwargs)
    return make_backend(
        "azure",
        instance_type=instance_type,
        n_instances=n_instances,
        workers_per_instance=workers_per_instance,
        **defaults,
    )


def ec2_16core_backends(**kwargs) -> list[Backend]:
    """The four Figure 3/4-style deployments."""
    return [
        quiet_ec2(itype, n, w, **kwargs) for itype, n, w in EC2_16_CORE_SHAPES
    ]
