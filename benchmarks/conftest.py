"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures: it runs
the simulation once under pytest-benchmark timing, prints the rows (run
with ``-s`` to see them live), writes them to ``benchmarks/results/``,
and asserts the paper's qualitative shape (who wins, by what rough
factor, where crossovers fall).
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Print a table and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under benchmark timing and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
