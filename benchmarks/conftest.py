"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures: it runs
the simulation once under pytest-benchmark timing, prints the rows (run
with ``-s`` to see them live), writes them to ``benchmarks/results/``,
and asserts the paper's qualitative shape (who wins, by what rough
factor, where crossovers fall).

The study-based benchmarks route their sweeps through
:mod:`repro.sweep` via the ``sweep_kwargs`` fixture: worker processes
come from ``REPRO_JOBS`` (default ``os.cpu_count()``) and completed
points are reused through the content-addressed cache under
``.repro-cache/``.  Set ``REPRO_NO_CACHE=1`` when you want the timing
columns to measure fresh simulation instead of cache reads.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def sweep_kwargs():
    """``jobs=``/``cache=`` plumbing for study-based benchmarks."""
    from repro.sweep import default_cache

    return {"jobs": None, "cache": default_cache()}


@pytest.fixture
def emit():
    """Print a table and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under benchmark timing and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
