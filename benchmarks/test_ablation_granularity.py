"""Ablation: task granularity vs cloud service overhead.

The paper's conclusion: "Given sufficiently coarser grain task
decompositions, Cloud infrastructure service-based frameworks ... offered
good parallel efficiencies" — and it deliberately bundles 100 BLAST
queries per file "to make the tasks coarser granular".

This bench splits the same total query workload into more, finer tasks
and measures how the per-task queue/storage overhead erodes parallel
efficiency on the EC2 Classic Cloud.
"""

from repro.core.application import get_application
from repro.core.metrics import parallel_efficiency
from repro.core.report import format_table
from repro.workloads.protein import blast_task_specs

from benchmarks._shapes import quiet_ec2
from benchmarks.conftest import run_once

TOTAL_QUERIES = 6400
QUERIES_PER_FILE = [400, 100, 25, 5, 1]


def test_ablation_task_granularity(benchmark, emit):
    app = get_application("blast")

    def sweep():
        out = []
        for per_file in QUERIES_PER_FILE:
            n_files = TOTAL_QUERIES // per_file
            tasks = blast_task_specs(
                n_files,
                queries_per_file=per_file,
                inhomogeneous_base=False,
                seed=41,
            )
            backend = quiet_ec2(n_instances=2)
            result = backend.run(app, tasks)
            t1 = backend.estimate_sequential_time(app, tasks)
            efficiency = parallel_efficiency(
                t1, result.makespan_seconds, backend.total_cores
            )
            overhead = sum(
                r.download_time + r.upload_time for r in result.records
            )
            compute = result.total_compute_seconds()
            out.append(
                (per_file, n_files, result.makespan_seconds, efficiency,
                 overhead / (overhead + compute))
            )
        return out

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_granularity",
        format_table(
            ["queries/file", "tasks", "makespan (s)", "efficiency",
             "service overhead"],
            [
                [q, n, f"{m:,.0f}", f"{eff:.3f}", f"{100 * ov:.1f}%"]
                for q, n, m, eff, ov in rows
            ],
            title="Ablation: task granularity vs queue/storage overhead "
                  f"({TOTAL_QUERIES} BLAST queries total, 16 cores)",
        ),
    )

    effs = {q: eff for q, _, _, eff, _ in rows}
    overheads = {q: ov for q, _, _, _, ov in rows}
    # Coarse tasks: good efficiency (ceiling set by HCXL's memory
    # pressure, as in Figure 10), negligible service overhead.
    assert effs[400] > 0.78
    assert overheads[400] < 0.02
    # Fine tasks: per-task service overhead grows by an order of
    # magnitude and efficiency gives back its gains.
    assert effs[1] <= effs[400] + 0.01
    assert overheads[1] > overheads[400] * 5
    assert overheads[1] > 0.01
