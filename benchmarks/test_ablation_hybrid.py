"""Ablation: on-premise augmentation vs workload data-intensity.

Paper §2.1.3: local machines can join the cloud job "although it might
not be the best option due to the data being stored in the cloud".  This
bench adds an 8-core on-premise machine to a single-HCXL deployment for
each application and measures the speedup — large for compute-bound
Cap3/BLAST-style work, small for WAN-throttled data-heavy GTM.
"""

from repro.classiccloud import (
    ClassicCloudConfig,
    ClassicCloudFramework,
    LocalAugmentation,
)
from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs
from repro.workloads.pubchem import gtm_task_specs

from benchmarks.conftest import run_once


def config(augmentation=None):
    return ClassicCloudConfig(
        provider="aws",
        instance_type="HCXL",
        n_instances=1,
        workers_per_instance=8,
        fault_plan=FaultPlan.none(),
        consistency_window_s=0.0,
        seed=19,
        local_augmentation=augmentation,
    )


def test_ablation_hybrid_augmentation(benchmark, emit):
    workloads = {
        "Cap3 (200 KB inputs)": (
            get_application("cap3"),
            cap3_task_specs(48, reads_per_file=458),
        ),
        "GTM (66 MB inputs)": (
            get_application("gtm"),
            gtm_task_specs(48),
        ),
    }
    augmentation = LocalAugmentation(n_workers=8, wan_bandwidth_mbps=10.0)

    def study():
        out = []
        for name, (app, tasks) in workloads.items():
            base = ClassicCloudFramework(config()).run(app, tasks)
            hybrid = ClassicCloudFramework(config(augmentation)).run(app, tasks)
            local_share = sum(
                1 for r in hybrid.records if "local" in r.worker and r.won
            ) / len(tasks)
            out.append(
                (
                    name,
                    base.makespan_seconds,
                    hybrid.makespan_seconds,
                    local_share,
                )
            )
        return out

    rows = run_once(benchmark, study)
    emit(
        "ablation_hybrid",
        format_table(
            ["workload", "cloud only (s)", "hybrid (s)", "speedup",
             "tasks done locally"],
            [
                [name, f"{base:,.0f}", f"{hybrid:,.0f}",
                 f"{base / hybrid:.2f}x", f"{100 * share:.0f}%"]
                for name, base, hybrid, share in rows
            ],
            title="Ablation: +8 on-premise cores over a 10 Mbit WAN "
                  "(1 HCXL instance baseline)",
        ),
    )

    results = {name: (base / hybrid, share) for name, base, hybrid, share in rows}
    cap3_speedup, cap3_share = results["Cap3 (200 KB inputs)"]
    gtm_speedup, gtm_share = results["GTM (66 MB inputs)"]
    # Compute-bound work parallelizes across the WAN; data-heavy doesn't.
    assert cap3_speedup > 1.5
    assert gtm_speedup < cap3_speedup
    assert cap3_share > gtm_share
    # The hybrid never makes things worse — local workers are additive.
    assert gtm_speedup >= 0.98