"""Ablation: Twister-style static-data caching for iterative MapReduce.

The paper's conclusion announces TwisterAzure — iterative MapReduce on
Azure primitives.  The design question it answers: how much does caching
static data on long-lived workers save over re-dispatching a fresh
Classic Cloud job per iteration?  This bench sweeps the iteration count
and reports the growing advantage.
"""

from repro.core.report import format_table
from repro.twister import TwisterAzureSimulator, TwisterSimConfig

from benchmarks.conftest import run_once

ITERATION_COUNTS = [1, 5, 10, 20]


def test_ablation_iterative_caching(benchmark, emit):
    def sweep():
        out = []
        for n_iterations in ITERATION_COUNTS:
            results = TwisterAzureSimulator(
                TwisterSimConfig(n_iterations=n_iterations)
            ).compare()
            out.append(
                (
                    n_iterations,
                    results["naive"].total_seconds,
                    results["twister"].total_seconds,
                )
            )
        return out

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_iterative_caching",
        format_table(
            ["iterations", "naive re-dispatch (s)", "twister caching (s)",
             "speedup"],
            [
                [n, f"{naive:,.0f}", f"{twister:,.0f}",
                 f"{naive / twister:.2f}x"]
                for n, naive, twister in rows
            ],
            title="Ablation: per-iteration re-dispatch vs cached static "
                  "data (16 workers, 256 MB static partition, 5 s "
                  "compute/iteration)",
        ),
    )

    speedups = [naive / twister for _, naive, twister in rows]
    # One iteration: identical work (both download the static data once).
    assert speedups[0] < 1.1
    # The caching advantage grows monotonically with iteration count...
    assert all(b >= a for a, b in zip(speedups, speedups[1:]))
    # ...and becomes substantial for long-running iterative jobs.
    assert speedups[-1] > 1.5
