"""Ablation: data-locality-aware scheduling as input size grows.

The paper (Section 6.2): "When the input data size is larger, Hadoop
and DryadLINQ applications have an advantage of data locality-based
scheduling over EC2.  The Hadoop and DryadLINQ models bring computation
to the data optimizing the I/O load."

This bench turns Hadoop's locality preference on and off while scaling
the per-task input size (Cap3's ~KB files up to GTM's ~66 MB compressed
splits), measuring the growing cost of remote reads over a 1 Gbps
network.
"""

from dataclasses import replace

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.report import format_table
from repro.workloads.pubchem import gtm_task_specs

from benchmarks.conftest import run_once

INPUT_MB = [1, 66, 512, 2048]
# Four waves over the 64 slots: the makespan reflects the average read
# cost instead of a single unlucky straggler.
N_FILES = 256


def tasks_with_input_size(megabytes):
    tasks = gtm_task_specs(n_files=N_FILES)
    return [replace(t, input_size=megabytes * 1_000_000) for t in tasks]


def test_ablation_data_locality(benchmark, emit):
    app = get_application("gtm")
    cluster = get_cluster("gtm-hadoop").subset(8)

    def sweep():
        out = []
        for megabytes in INPUT_MB:
            tasks = tasks_with_input_size(megabytes)
            results = {}
            for locality in (True, False):
                backend = make_backend(
                    "hadoop",
                    cluster=cluster,
                    locality_aware=locality,
                    seed=37,
                )
                run = backend.run(app, tasks)
                results[locality] = run
            out.append(
                (
                    megabytes,
                    results[True].makespan_seconds,
                    results[False].makespan_seconds,
                    results[True].extras["locality_fraction"],
                    results[False].extras["locality_fraction"],
                )
            )
        return out

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_locality",
        format_table(
            ["input/task", "locality on (s)", "locality off (s)",
             "local reads on", "local reads off", "penalty"],
            [
                [f"{mb} MB", f"{on:,.0f}", f"{off:,.0f}",
                 f"{100 * lf_on:.0f}%", f"{100 * lf_off:.0f}%",
                 f"{off / on:.2f}x"]
                for mb, on, off, lf_on, lf_off in rows
            ],
            title="Ablation: Hadoop data-locality scheduling vs input size "
                  f"({N_FILES} GTM splits, 8 nodes, 1 Gbps)",
        ),
    )

    # Locality-aware scheduling achieves mostly-local reads.
    for _, _, _, lf_on, lf_off in rows:
        assert lf_on > 0.9
        assert lf_off < lf_on
    penalties = [off / on for _, on, off, _, _ in rows]
    # Tiny inputs: locality hardly matters.  Large inputs: it does.
    assert penalties[0] < 1.05
    assert penalties[-1] > 1.15
    assert penalties[-1] > penalties[0]
