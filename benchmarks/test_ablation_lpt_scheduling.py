"""Ablation: FIFO vs longest-processing-time-first map scheduling.

Hadoop schedules map tasks in submission order (FIFO); when the paper's
inhomogeneous files include a few very long tasks, FIFO can start one of
them last and stretch the tail.  With per-task work estimates, LPT
(longest first) eliminates that — an extension the paper's data makes
easy to motivate.
"""

import pytest

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks.conftest import run_once

SIGMAS = ["homogeneous", "inhomogeneous", "heavy-tailed"]


def workload(kind, seed):
    from dataclasses import replace

    tasks = cap3_task_specs(
        96,
        reads_per_file=300,
        inhomogeneous=(kind != "homogeneous"),
        seed=seed,
    )
    if kind == "heavy-tailed":
        # A few 6x whoppers buried late in submission order.
        tasks = [
            replace(t, work_units=t.work_units * (6.0 if i in (88, 91, 94) else 1.0))
            for i, t in enumerate(tasks)
        ]
    return tasks


def test_ablation_lpt_vs_fifo(benchmark, emit):
    app = get_application("cap3")
    cluster = get_cluster("cap3-baremetal").subset(4)

    def study():
        out = []
        for kind in SIGMAS:
            tasks = workload(kind, seed=29)
            times = {}
            for policy in ("fifo", "lpt"):
                backend = make_backend(
                    "hadoop",
                    cluster=cluster,
                    scheduling_policy=policy,
                    speculative_execution=False,
                    seed=29,
                )
                times[policy] = backend.run(app, tasks).makespan_seconds
            out.append((kind, times["fifo"], times["lpt"]))
        return out

    rows = run_once(benchmark, study)
    emit(
        "ablation_lpt_scheduling",
        format_table(
            ["workload", "FIFO (s)", "LPT (s)", "LPT saving"],
            [
                [kind, f"{fifo:,.0f}", f"{lpt:,.0f}",
                 f"{100 * (fifo - lpt) / fifo:+.0f}%"]
                for kind, fifo, lpt in rows
            ],
            title="Ablation: FIFO vs longest-task-first map scheduling "
                  "(96 Cap3 files, 32 slots)",
        ),
    )

    by_kind = {kind: (fifo, lpt) for kind, fifo, lpt in rows}
    # Homogeneous: policy is irrelevant.
    fifo_h, lpt_h = by_kind["homogeneous"]
    assert lpt_h == pytest.approx(fifo_h, rel=0.05)
    # Heavy-tailed: LPT starts the whoppers first and wins clearly.
    fifo_t, lpt_t = by_kind["heavy-tailed"]
    assert lpt_t < fifo_t * 0.85
    # LPT never loses meaningfully on any mix.
    for kind, (fifo, lpt) in by_kind.items():
        assert lpt <= fifo * 1.05, kind
