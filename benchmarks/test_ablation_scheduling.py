"""Ablation: dynamic global-queue scheduling vs static partitioning.

The paper attributes Hadoop's (and the Classic Cloud's) natural load
balancing to its dynamic global queue, and DryadLINQ's weakness to
static node-level partitions.  This bench runs identical inhomogeneous
Cap3 workloads through both policies on matched hardware, sweeping the
skew, and reports the growing static-partitioning penalty.
"""

from dataclasses import replace

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks.conftest import run_once

# Multiply the work of the last quarter of files by this factor.
SKEWS = [1.0, 2.0, 4.0, 8.0]
N_FILES = 64
N_NODES = 4


def skewed_tasks(skew):
    tasks = cap3_task_specs(N_FILES, reads_per_file=300)
    cut = N_FILES * 3 // 4
    return [
        replace(t, work_units=t.work_units * (skew if i >= cut else 1.0))
        for i, t in enumerate(tasks)
    ]


def test_ablation_dynamic_vs_static_scheduling(benchmark, emit):
    app = get_application("cap3")

    def sweep():
        out = []
        for skew in SKEWS:
            tasks = skewed_tasks(skew)
            hadoop = make_backend(
                "hadoop", cluster=get_cluster("cap3-baremetal").subset(N_NODES)
            ).run(app, tasks)
            dryad = make_backend(
                "dryadlinq",
                cluster=get_cluster("cap3-baremetal-windows").subset(N_NODES),
            ).run(app, tasks)
            # Normalize out Cap3's 12.5% Windows advantage.
            dryad_linux_equiv = dryad.makespan_seconds * 1.125
            out.append(
                (
                    skew,
                    hadoop.makespan_seconds,
                    dryad_linux_equiv,
                    dryad.extras["partition_imbalance"],
                )
            )
        return out

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_scheduling",
        format_table(
            ["skew", "dynamic queue (s)", "static partitions (s)",
             "partition imbalance", "penalty"],
            [
                [f"{s:.0f}x", f"{h:,.0f}", f"{d:,.0f}", f"{imb:.2f}",
                 f"{d / h:.2f}x"]
                for s, h, d, imb in rows
            ],
            title="Ablation: dynamic global queue vs static partitions "
                  "under work skew (64 Cap3 files, 4 nodes x 8 cores; "
                  "static times normalized to Linux speed)",
        ),
    )

    penalties = [d / h for _, h, d, _ in rows]
    # Homogeneous: the two policies are equivalent (within noise).
    assert penalties[0] < 1.15
    # The static penalty grows monotonically with skew...
    assert penalties[-1] > penalties[0]
    assert penalties[-1] > 1.5
    # ...and tracks the partition imbalance metric.
    imbalances = [imb for _, _, _, imb in rows]
    assert imbalances == sorted(imbalances)
