"""Ablation: speculative execution under straggler injection.

Hadoop (and Dryad) "perform duplicate execution of slower executing
tasks"; the paper lists this among their fault-tolerance features.  This
bench injects stragglers at increasing rates and measures how much of
the straggler damage speculative execution claws back — plus its cost in
duplicate compute.
"""

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks.conftest import run_once

STRAGGLER_RATES = [0.0, 0.05, 0.1, 0.2]


def test_ablation_speculative_execution(benchmark, emit):
    app = get_application("cap3")
    tasks = cap3_task_specs(96, reads_per_file=300)
    cluster = get_cluster("cap3-baremetal").subset(4)

    def sweep():
        out = []
        for rate in STRAGGLER_RATES:
            runs = {}
            for speculative in (True, False):
                backend = make_backend(
                    "hadoop",
                    cluster=cluster,
                    speculative_execution=speculative,
                    straggler_probability=rate,
                    straggler_slowdown=8.0,
                    seed=31,
                )
                result = backend.run(app, tasks)
                runs[speculative] = result
            out.append(
                (
                    rate,
                    runs[False].makespan_seconds,
                    runs[True].makespan_seconds,
                    runs[True].extras["speculative_attempts"],
                )
            )
        return out

    rows = run_once(benchmark, sweep)
    emit(
        "ablation_speculation",
        format_table(
            ["straggler rate", "no speculation (s)", "speculation (s)",
             "backup attempts", "saved"],
            [
                [f"{r * 100:.0f}%", f"{off:,.0f}", f"{on:,.0f}", f"{n:.0f}",
                 f"{100 * (off - on) / off:+.0f}%"]
                for r, off, on, n in rows
            ],
            title="Ablation: speculative execution vs 8x stragglers "
                  "(96 Cap3 files, 32 slots)",
        ),
    )

    by_rate = {r: (off, on, n) for r, off, on, n in rows}
    # No stragglers: speculation costs (almost) nothing.
    off0, on0, _ = by_rate[0.0]
    assert on0 <= off0 * 1.05
    # With stragglers: speculation wins meaningfully.
    for rate in (0.1, 0.2):
        off, on, n_backups = by_rate[rate]
        assert on < off * 0.75, f"speculation didn't help at {rate}"
        assert n_backups > 0
