"""Ablation: the visibility timeout, Classic Cloud's one tuning knob.

The paper's fault-tolerance design hinges on it: too short and healthy
tasks reappear mid-flight (duplicate execution, wasted compute); long
enough and duplicates vanish while crash recovery merely takes longer.
This sweep quantifies that trade-off — the justification for the
framework's auto-sizing rule (3x the worst-case task time).
"""

from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan
from repro.core.application import get_application
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks.conftest import run_once

# Tasks take ~50s on an HCXL core; sweep around that.
TIMEOUTS = [15.0, 30.0, 60.0, 120.0, 300.0]


def test_ablation_visibility_timeout(benchmark, emit):
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=48, reads_per_file=200)

    def sweep():
        out = []
        for timeout in TIMEOUTS:
            config = ClassicCloudConfig(
                provider="aws",
                instance_type="HCXL",
                n_instances=2,
                workers_per_instance=8,
                visibility_timeout_s=timeout,
                fault_plan=FaultPlan.none(),
                consistency_window_s=0.0,
                seed=23,
            )
            result = ClassicCloudFramework(config).run(app, tasks)
            out.append(
                (
                    timeout,
                    result.makespan_seconds,
                    result.extras["reappearances"],
                    result.total_compute_seconds(),
                )
            )
        return out

    rows = run_once(benchmark, sweep)
    base_compute = rows[-1][3]
    emit(
        "ablation_visibility_timeout",
        format_table(
            ["visibility timeout (s)", "makespan (s)", "reappearances",
             "wasted compute"],
            [
                [f"{t:.0f}", f"{m:,.0f}", f"{r:.0f}",
                 f"{100 * (c - base_compute) / base_compute:+.0f}%"]
                for t, m, r, c in rows
            ],
            title="Ablation: visibility timeout vs duplicate execution "
                  "(48 Cap3 tasks, ~50s each)",
        ),
    )

    by_timeout = {t: (m, r, c) for t, m, r, c in rows}
    # Too-short timeouts force reappearances and waste compute.
    assert by_timeout[15.0][1] > 0
    assert by_timeout[15.0][2] > by_timeout[300.0][2] * 1.2
    # Long-enough timeouts eliminate duplicates entirely (no faults).
    assert by_timeout[120.0][1] == 0
    assert by_timeout[300.0][1] == 0
    # And the job still completes correctly at every setting (implicit:
    # run() would raise otherwise); makespan at 15s is no better than
    # at 120s.
    assert by_timeout[15.0][0] >= by_timeout[120.0][0] * 0.95
