"""Figures 10 and 11: BLAST parallel efficiency and per-query-file time.

Paper setup: an inhomogeneous base set of 128 query files (100 sequences
each), replicated one to six times; 16 HCXL on EC2, 16 Large on Azure,
the iDataplex cluster for Hadoop, and a 16-core Windows HPC cluster for
DryadLINQ.

Paper findings to reproduce:
* near-linear scalability, all platforms within ~20% efficiency;
* the Windows environments (Azure, DryadLINQ) show the better overall
  efficiency;
* EC2's is the lowest — HCXL's limited memory shared across 8 workers.
"""

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.report import format_series
from repro.workloads.protein import blast_task_specs

from benchmarks._shapes import quiet_azure, quiet_ec2
from benchmarks.conftest import run_once

FILE_COUNTS = [128, 256, 384, 512]


def backends():
    return {
        "EC2 (16xHCXL)": quiet_ec2(n_instances=16),
        "Azure (16xLarge)": quiet_azure(
            instance_type="Large", n_instances=16, workers_per_instance=4
        ),
        "Hadoop (iDataplex)": make_backend(
            "hadoop", cluster=get_cluster("idataplex").subset(16)
        ),
        "DryadLINQ (HPC)": make_backend(
            "dryadlinq", cluster=get_cluster("hpc-blast").subset(8)
        ),
    }


def test_fig10_11_blast_scaling(benchmark, emit):
    app = get_application("blast")

    def study():
        out = {}
        for name, backend in backends().items():
            eff_points, time_points = {}, {}
            for n_files in FILE_COUNTS:
                tasks = blast_task_specs(n_files, seed=6)
                result = backend.run(app, tasks)
                t1 = backend.estimate_sequential_time(app, tasks)
                eff_points[n_files] = parallel_efficiency(
                    t1, result.makespan_seconds, backend.total_cores
                )
                time_points[n_files] = average_time_per_file_per_core(
                    result.makespan_seconds, backend.total_cores, n_files
                )
            out[name] = (eff_points, time_points)
        return out

    results = run_once(benchmark, study)
    efficiency_series = {n: e for n, (e, _) in results.items()}
    time_series = {n: t for n, (_, t) in results.items()}
    emit(
        "fig10_blast_parallel_efficiency",
        format_series("query files", efficiency_series,
                      title="Figure 10: BLAST parallel efficiency"),
    )
    emit(
        "fig11_blast_time_per_query_file",
        format_series("query files", time_series, value_format="{:.1f}",
                      title="Figure 11: BLAST per-query-file per-core time (s)"),
    )

    final = {name: series[FILE_COUNTS[-1]] for name, series in
             efficiency_series.items()}
    # Near-linear scalability: efficiency does not collapse with size.
    for name, series in efficiency_series.items():
        assert series[FILE_COUNTS[-1]] > 0.55, f"{name}: {series}"
        # Efficiency improves (or holds) as the tail amortizes.
        assert series[FILE_COUNTS[-1]] >= series[FILE_COUNTS[0]] * 0.9

    # Windows platforms lead; EC2 trails.
    assert final["EC2 (16xHCXL)"] == min(final.values())
    windows_best = max(final["Azure (16xLarge)"], final["DryadLINQ (HPC)"])
    assert windows_best > final["EC2 (16xHCXL)"]
    # "within 20%" band at full scale, paper's Figure 10 reading.
    assert max(final.values()) - min(final.values()) < 0.45
