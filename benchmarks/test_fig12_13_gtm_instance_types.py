"""Figures 12 and 13: GTM Interpolation cost and time across EC2 types.

Paper setup: PubChem splits on 16 compute cores per deployment.

Paper findings to reproduce:
* memory (size and bandwidth) is the bottleneck — GTM does best with
  more memory and fewer cores sharing it;
* HM4XL gives the best performance overall;
* HCXL is nevertheless the most economical choice;
* L (2 cores per memory bus) beats the 4-8 core types on per-core terms.
"""

from repro.core.application import get_application
from repro.core.experiment import instance_type_study
from repro.core.report import format_table
from repro.workloads.pubchem import gtm_task_specs

from benchmarks._shapes import ec2_16core_backends
from benchmarks.conftest import run_once


def test_fig12_13_gtm_ec2_instance_types(benchmark, emit, sweep_kwargs):
    app = get_application("gtm")
    tasks = gtm_task_specs(n_files=64)

    def study():
        return instance_type_study(
            app, ec2_16core_backends(), tasks, **sweep_kwargs
        )

    rows = run_once(benchmark, study)
    emit(
        "fig12_13_gtm_instance_types",
        format_table(
            ["deployment", "compute time (s)", "cost $ (hour units)",
             "amortized $"],
            [
                [r.label, f"{r.compute_time_s:,.0f}", f"{r.compute_cost:.2f}",
                 f"{r.amortized_cost:.2f}"]
                for r in rows
            ],
            title="Figures 12+13: GTM Interpolation on EC2 instance types "
                  "(64 PubChem splits, 16 cores)",
        ),
    )

    by_type = {r.label.split(" ")[0]: r for r in rows}
    times = {k: r.compute_time_s for k, r in by_type.items()}
    costs = {k: r.compute_cost for k, r in by_type.items()}

    # Figure 13: HM4XL best performance (highest clock AND bandwidth).
    assert times["HM4XL"] == min(times.values())
    # Memory contention: L (2 cores/bus) beats HCXL (8 cores/bus) even
    # though HCXL has the faster clock.
    assert times["L"] < times["HCXL"]
    # Figure 12: HCXL still the most economical.
    assert costs["HCXL"] == min(costs.values())
    assert costs["HM4XL"] == max(costs.values())
