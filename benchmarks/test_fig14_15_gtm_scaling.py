"""Figures 14 and 15: GTM Interpolation efficiency and per-core time.

Paper setup: 26.4M PubChem points in 264 files of 100k points; Azure
Small (single core), EC2 Large / HCXL / HM4XL, Hadoop on 24-core nodes
capped at 8 usable cores, DryadLINQ on 16-core Windows nodes.

Paper findings to reproduce:
* lower efficiencies than Cap3/BLAST across the board (memory-bound);
* Azure Small achieves the overall best efficiency (one core per
  memory bus = zero contention);
* among EC2 types, Large attains the best efficiency, HM4XL the best
  raw performance, HCXL the most economical;
* DryadLINQ's 16-core nodes suffer the most memory contention and end
  lowest.
"""

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.report import format_table
from repro.workloads.pubchem import gtm_task_specs

from benchmarks._shapes import quiet_azure, quiet_ec2
from benchmarks.conftest import run_once


def backends():
    return {
        "Azure Small (64x1)": quiet_azure(n_instances=64),
        "EC2 Large (32x2)": quiet_ec2(
            instance_type="L", n_instances=32, workers_per_instance=2
        ),
        "EC2 HCXL (8x8)": quiet_ec2(n_instances=8),
        "EC2 HM4XL (8x8)": quiet_ec2(
            instance_type="HM4XL", n_instances=8, workers_per_instance=8
        ),
        "Hadoop (8 of 24 cores)": make_backend(
            "hadoop", cluster=get_cluster("gtm-hadoop").subset(8)
        ),
        "DryadLINQ (16-core nodes)": make_backend(
            "dryadlinq", cluster=get_cluster("gtm-dryad").subset(4)
        ),
    }


def test_fig14_15_gtm_scaling(benchmark, emit):
    app = get_application("gtm")
    tasks = gtm_task_specs(n_files=264)

    def study():
        out = {}
        for name, backend in backends().items():
            result = backend.run(app, tasks)
            t1 = backend.estimate_sequential_time(app, tasks)
            out[name] = (
                backend.total_cores,
                result.makespan_seconds,
                parallel_efficiency(
                    t1, result.makespan_seconds, backend.total_cores
                ),
                average_time_per_file_per_core(
                    result.makespan_seconds, backend.total_cores, len(tasks)
                ),
            )
        return out

    results = run_once(benchmark, study)
    emit(
        "fig14_15_gtm_scaling",
        format_table(
            ["platform", "cores", "makespan (s)", "efficiency",
             "s/file/core"],
            [
                [name, cores, f"{makespan:,.0f}", f"{eff:.3f}",
                 f"{per_core:.1f}"]
                for name, (cores, makespan, eff, per_core) in results.items()
            ],
            title="Figures 14+15: GTM Interpolation across platforms "
                  "(264 x 100k points)",
        ),
    )

    eff = {name: values[2] for name, values in results.items()}
    # Azure Small: overall best efficiency.
    assert eff["Azure Small (64x1)"] == max(eff.values())
    # EC2 ranking: Large best efficiency, HCXL well below.
    assert eff["EC2 Large (32x2)"] > eff["EC2 HCXL (8x8)"]
    # DryadLINQ's 16-core nodes: the most contention, lowest efficiency.
    assert eff["DryadLINQ (16-core nodes)"] == min(eff.values())
    # Memory-bound: every multi-core-per-bus platform sits below the
    # Cap3-style 0.95 numbers.
    assert eff["EC2 HCXL (8x8)"] < 0.8
