"""Figures 3 and 4: Cap3 cost and compute time across EC2 instance types.

Paper setup: 200 FASTA files of 200 reads on 16 compute cores, deployed
as L-8x2, XL-4x4, HCXL-2x8 and HM4XL-2x8.

Paper findings to reproduce (shape, not absolute seconds):
* memory is not a bottleneck for Cap3 — performance tracks clock rate;
* HM4XL (3.25 GHz) is the fastest (Figure 4);
* HCXL is the most cost-effective (Figure 3);
* L and XL (same 2 GHz cores) take roughly the same time, and their
  16-core deployments cost the same $2.72 in hour units.
"""

from repro.core.application import get_application
from repro.core.experiment import instance_type_study
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks._shapes import ec2_16core_backends
from benchmarks.conftest import run_once


def test_fig3_4_cap3_ec2_instance_types(benchmark, emit, sweep_kwargs):
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=200, reads_per_file=200)

    def study():
        return instance_type_study(
            app, ec2_16core_backends(), tasks, **sweep_kwargs
        )

    rows = run_once(benchmark, study)
    emit(
        "fig3_4_cap3_instance_types",
        format_table(
            ["deployment", "compute time (s)", "cost $ (hour units)",
             "amortized $"],
            [
                [r.label, f"{r.compute_time_s:,.0f}", f"{r.compute_cost:.2f}",
                 f"{r.amortized_cost:.2f}"]
                for r in rows
            ],
            title="Figures 3+4: Cap3 on EC2 instance types "
                  "(200 files x 200 reads, 16 cores)",
        ),
    )

    by_type = {r.label.split(" ")[0]: r for r in rows}
    times = {k: r.compute_time_s for k, r in by_type.items()}
    costs = {k: r.compute_cost for k, r in by_type.items()}

    # Figure 4: HM4XL fastest; L and XL comparable (same clock).
    assert times["HM4XL"] == min(times.values())
    assert abs(times["L"] - times["XL"]) / times["XL"] < 0.15
    assert times["HCXL"] < times["L"]  # 2.5 GHz vs 2 GHz

    # Figure 3: HCXL most cost-effective; HM4XL most expensive.
    assert costs["HCXL"] == min(costs.values())
    assert costs["HM4XL"] == max(costs.values())
    # Hour-unit costs land on the paper's exact price points for a <1h run.
    import pytest

    assert costs["HCXL"] == pytest.approx(2 * 0.68)
    assert costs["L"] == pytest.approx(8 * 0.34)
    assert costs["XL"] == pytest.approx(4 * 0.68)
    assert costs["HM4XL"] == pytest.approx(2 * 2.00)
