"""Figures 5 and 6: Cap3 parallel efficiency and per-file time, four ways.

Paper setup: replicated 458-read FASTA files; 16 HCXL instances on EC2,
128 Small instances on Azure, and a 32-node x 8-core 2.5 GHz bare-metal
cluster for Hadoop and DryadLINQ.  Weak scaling: the workload grows with
the fleet.

Paper findings to reproduce:
* all four implementations sit within ~20% parallel efficiency of each
  other, with low parallelization overheads (Figure 5);
* per-file-per-core times are flat-ish in scale (Figure 6);
* Cap3 runs ~12.5% faster on Windows, visible in DryadLINQ's (and
  Azure's) per-file times.
"""

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.experiment import scalability_study
from repro.core.backends import make_backend
from repro.core.report import format_series
from repro.workloads.genome import cap3_task_specs

from benchmarks._shapes import quiet_azure, quiet_ec2
from benchmarks.conftest import run_once

CORE_COUNTS = [32, 64, 128]


def tasks_for(cores):
    # Weak scaling: 4 replicated files per core, as the paper replicates
    # its data set with fleet size.
    return cap3_task_specs(n_files=cores * 4, reads_per_file=458)


def backend_factories():
    return {
        "EC2": lambda cores: quiet_ec2(n_instances=cores // 8),
        "Azure": lambda cores: quiet_azure(n_instances=cores),
        "Hadoop": lambda cores: make_backend(
            "hadoop", cluster=get_cluster("cap3-baremetal").subset(cores // 8)
        ),
        "DryadLINQ": lambda cores: make_backend(
            "dryadlinq",
            cluster=get_cluster("cap3-baremetal-windows").subset(cores // 8),
        ),
    }


def test_fig5_6_cap3_scaling(benchmark, emit, sweep_kwargs):
    app = get_application("cap3")

    def study():
        out = {}
        for name, factory in backend_factories().items():
            out[name] = scalability_study(
                app, factory, CORE_COUNTS, tasks_for, **sweep_kwargs
            )
        return out

    results = run_once(benchmark, study)

    efficiency_series = {
        name: {p.cores: p.efficiency for p in points}
        for name, points in results.items()
    }
    per_file_series = {
        name: {p.cores: p.per_file_per_core_s for p in points}
        for name, points in results.items()
    }
    emit(
        "fig5_cap3_parallel_efficiency",
        format_series("cores", efficiency_series,
                      title="Figure 5: Cap3 parallel efficiency"),
    )
    emit(
        "fig6_cap3_time_per_file_per_core",
        format_series("cores", per_file_series, value_format="{:.1f}",
                      title="Figure 6: Cap3 per-file per-core time (s)"),
    )

    # Figure 5: comparable efficiency (within 20%) and low overheads.
    for cores in CORE_COUNTS:
        effs = [efficiency_series[n][cores] for n in efficiency_series]
        assert min(effs) > 0.75, f"low efficiency at {cores} cores: {effs}"
        assert max(effs) / min(effs) < 1.25  # 'within 20%'

    # Figure 6: per-file time roughly flat across scale for each platform.
    for name, series in per_file_series.items():
        values = list(series.values())
        assert max(values) / min(values) < 1.3, f"{name} not flat: {values}"

    # Windows runs Cap3 ~12.5% faster: DryadLINQ's per-file time beats
    # Hadoop's on identical hardware.
    assert (
        per_file_series["DryadLINQ"][128] < per_file_series["Hadoop"][128]
    )
