"""Figures 7 and 8: BLAST cost and time across EC2 instance types.

Paper setup: 64 query files of 100 sequences each against the 8.7 GB NR
database, on 16 compute cores per deployment.

Paper findings to reproduce:
* no dramatic memory effect — HCXL (<1 GB/core) performs comparably to
  L and XL (3.75 GB/core), because the database is page-cache shared;
* a *slight* memory correlation: XL (2.0 GHz, plenty of memory) keeps up
  with HCXL (2.5 GHz, tight memory);
* HM4XL (3.25 GHz) fastest, but at a much higher cost;
* HCXL again the most cost-effective.
"""

from repro.core.application import get_application
from repro.core.experiment import instance_type_study
from repro.core.report import format_table
from repro.workloads.protein import blast_task_specs

from benchmarks._shapes import ec2_16core_backends
from benchmarks.conftest import run_once


def test_fig7_8_blast_ec2_instance_types(benchmark, emit, sweep_kwargs):
    app = get_application("blast")
    tasks = blast_task_specs(64, inhomogeneous_base=False, seed=3)

    def study():
        return instance_type_study(
            app, ec2_16core_backends(), tasks, **sweep_kwargs
        )

    rows = run_once(benchmark, study)
    emit(
        "fig7_8_blast_instance_types",
        format_table(
            ["deployment", "compute time (s)", "cost $ (hour units)",
             "amortized $"],
            [
                [r.label, f"{r.compute_time_s:,.0f}", f"{r.compute_cost:.2f}",
                 f"{r.amortized_cost:.2f}"]
                for r in rows
            ],
            title="Figures 7+8: BLAST on EC2 instance types "
                  "(64 query files x 100 seqs, 16 cores)",
        ),
    )

    by_type = {r.label.split(" ")[0]: r for r in rows}
    times = {k: r.compute_time_s for k, r in by_type.items()}
    costs = {k: r.compute_cost for k, r in by_type.items()}

    # Figure 8: HM4XL fastest.
    assert times["HM4XL"] == min(times.values())
    # HCXL comparable to L and XL despite <1 GB per core (within ~25%).
    assert times["HCXL"] < times["L"] * 1.25
    assert times["HCXL"] < times["XL"] * 1.25
    # The slight memory correlation: XL's extra memory keeps it within
    # ~15% of the faster-clocked HCXL.
    assert times["XL"] < times["HCXL"] * 1.30

    # Figure 7: HCXL most cost-effective, HM4XL priciest.
    assert costs["HCXL"] == min(costs.values())
    assert costs["HM4XL"] == max(costs.values())
