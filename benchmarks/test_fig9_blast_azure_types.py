"""Figure 9: BLAST across Azure instance types, workers x threads.

Paper setup: 8 query files of 100 sequences, on 8 Small / 4 Medium /
2 Large / 1 ExtraLarge instances (constant 8 cores), each tried with
multiple workers (processes) and with BLAST threads.

Paper findings to reproduce:
* although Azure instance features scale linearly, BLAST performs better
  with more total memory — the ~8 GB database gets resident;
* Large and ExtraLarge deliver the best performance;
* pure BLAST threads inside one worker are slightly slower than the same
  core count as separate worker processes;
* cost is directly proportional to run time (linear Azure pricing).
"""

import pytest

from repro.core.application import get_application
from repro.core.report import format_table
from repro.workloads.protein import blast_task_specs

from benchmarks._shapes import quiet_azure
from benchmarks.conftest import run_once

# (instance type, count, workers/instance, threads/worker) — all 8 cores.
SHAPES = [
    ("Small", 8, 1, 1),
    ("Medium", 4, 2, 1),
    ("Medium", 4, 1, 2),
    ("Large", 2, 4, 1),
    ("Large", 2, 1, 4),
    ("ExtraLarge", 1, 8, 1),
    ("ExtraLarge", 1, 1, 8),
]


def test_fig9_blast_azure_instance_types(benchmark, emit):
    app = get_application("blast")
    tasks = blast_task_specs(8, inhomogeneous_base=False, seed=4)

    def study():
        out = []
        for itype, n, workers, threads in SHAPES:
            backend = quiet_azure(
                instance_type=itype,
                n_instances=n,
                workers_per_instance=workers,
                threads_per_worker=threads,
            )
            result = backend.run(app.with_threads(threads), tasks)
            out.append(
                (f"{itype} {workers}x{threads}", itype, workers, threads,
                 result.makespan_seconds, result.billing.amortized_compute_cost)
            )
        return out

    results = run_once(benchmark, study)
    emit(
        "fig9_blast_azure_types",
        format_table(
            ["shape (workers x threads)", "time (s)", "amortized $"],
            [[label, f"{t:,.0f}", f"{cost:.2f}"]
             for label, _, _, _, t, cost in results],
            title="Figure 9: BLAST on Azure instance types (8 query files)",
        ),
    )

    best_time = {}
    for label, itype, workers, threads, t, cost in results:
        best_time[itype] = min(best_time.get(itype, float("inf")), t)

    # More total memory = faster; Large/XL are the best performers.
    assert best_time["Small"] > best_time["Medium"] > best_time["Large"]
    assert best_time["ExtraLarge"] <= best_time["Large"] * 1.05

    # Threads slightly slower than the same cores as processes.
    by_shape = {
        (itype, workers, threads): t
        for _, itype, workers, threads, t, _ in results
    }
    assert by_shape[("Large", 1, 4)] > by_shape[("Large", 4, 1)] * 0.99
    assert by_shape[("ExtraLarge", 1, 8)] > by_shape[("ExtraLarge", 8, 1)]

    # Cost proportional to time (linear pricing): same $/s across shapes.
    rates = [cost / t for _, _, _, _, t, cost in results]
    assert max(rates) == pytest.approx(min(rates), rel=0.05)
