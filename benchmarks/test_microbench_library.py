"""Microbenchmarks of the library's hot paths.

Unlike the figure benches (one-shot simulations), these run repeated
timing rounds over the core computational kernels: the DES event loop,
queue operations, the assembler, BLAST search and GTM interpolation.
Useful for spotting performance regressions when optimizing.
"""

import numpy as np

from repro.apps.blast import BlastDatabase, blast_search
from repro.apps.cap3 import assemble
from repro.apps.fasta import FastaRecord
from repro.apps.gtm import gtm_interpolate, train_gtm
from repro.sim import Environment
from repro.workloads.genome import generate_read_records
from repro.workloads.protein import generate_protein_database, generate_query_records


def test_des_event_throughput(benchmark):
    """Ping-pong processes: measures raw kernel event dispatch."""

    def run_sim():
        env = Environment()

        def ticker(env, period):
            while env.now < 100.0:
                yield env.timeout(period)

        for i in range(10):
            env.process(ticker(env, 0.1 + 0.01 * i))
        env.run()
        return env.now

    result = benchmark(run_sim)
    assert result >= 100.0


def test_queue_operation_throughput(benchmark):
    def churn():
        env = Environment()
        queue_rng = np.random.default_rng(0)
        from repro.cloud.queue import MessageQueue

        queue = MessageQueue(
            env, "bench", queue_rng, latency_sigma=0.0, miss_probability=0.0
        )

        def driver(env):
            for i in range(200):
                yield env.process(queue.send(i))
            for _ in range(200):
                message = yield env.process(queue.receive())
                yield env.process(queue.delete(message))

        env.run(until=env.process(driver(env)))
        return queue.stats.deleted

    assert benchmark(churn) == 200


def test_assembler_throughput(benchmark):
    reads = generate_read_records(
        60, read_length=200, rng=np.random.default_rng(5)
    )

    def run_assembly():
        return assemble(reads)

    result = benchmark(run_assembly)
    assert result.stats["reads_in"] == 60


def test_blast_search_throughput(benchmark):
    db = generate_protein_database(30, seed=1)
    queries = generate_query_records(db, 10, seed=2)

    def search():
        return blast_search(queries, db)

    results = benchmark(search)
    assert len(results) == 10


def test_gtm_interpolation_throughput(benchmark):
    rng = np.random.default_rng(3)
    model = train_gtm(
        rng.normal(size=(200, 32)), latent_per_dim=8, rbf_per_dim=3,
        iterations=5,
    )
    points = rng.normal(size=(20_000, 32))

    def interpolate():
        return gtm_interpolate(model, points, batch_size=5000)

    latent = benchmark(interpolate)
    assert latent.shape == (20_000, 2)


def test_classiccloud_simulation_throughput(benchmark):
    """End-to-end simulator speed: tasks simulated per wall second."""
    from repro.cloud.failures import FaultPlan
    from repro.core.application import get_application
    from repro.core.backends import make_backend
    from repro.workloads.genome import cap3_task_specs

    app = get_application("cap3")
    tasks = cap3_task_specs(128, reads_per_file=200)

    def run_sim():
        backend = make_backend(
            "ec2", n_instances=2, fault_plan=FaultPlan.none(), seed=1
        )
        return backend.run(app, tasks)

    result = benchmark(run_sim)
    assert len(result.completed_task_ids) == 128
