"""Two scaling claims stated in the paper's prose, verified.

1. Introduction: "100 hours of 10 cloud compute nodes cost the same as
   10 hours in 100 cloud compute nodes" — horizontal scaling raises
   throughput without raising (amortized) cost.
2. Section 3: "We do not present results for Azure Cap3 and GTM
   Interpolation applications, as the performance of the Azure instance
   types for those applications scaled linearly with the price" — the
   justification for Figure 9 being BLAST-only.
"""

import pytest

from repro.core.application import get_application
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks._shapes import quiet_azure, quiet_ec2
from benchmarks.conftest import run_once


def test_horizontal_scaling_cost_invariance(benchmark, emit):
    """Same workload, 4x the fleet: ~1/4 the time, same amortized cost."""
    app = get_application("cap3")
    tasks = cap3_task_specs(256, reads_per_file=458)

    def study():
        out = []
        for n_instances in (2, 4, 8):
            backend = quiet_ec2(n_instances=n_instances, perf_jitter=0.0)
            result = backend.run(app, tasks)
            out.append(
                (
                    n_instances,
                    result.makespan_seconds,
                    result.billing.amortized_compute_cost,
                )
            )
        return out

    rows = run_once(benchmark, study)
    emit(
        "scaling_cost_invariance",
        format_table(
            ["HCXL instances", "makespan (s)", "amortized compute $"],
            [[n, f"{m:,.0f}", f"{c:.3f}"] for n, m, c in rows],
            title="Intro claim: horizontal scaling is throughput-free "
                  "(256 Cap3 files)",
        ),
    )

    times = {n: m for n, m, _ in rows}
    costs = {n: c for n, _, c in rows}
    # 4x instances -> ~4x faster.
    assert times[2] / times[8] == pytest.approx(4.0, rel=0.15)
    # ...at essentially unchanged amortized cost.
    assert costs[8] == pytest.approx(costs[2], rel=0.10)


def test_azure_cap3_scales_linearly_with_price(benchmark, emit):
    """Section 3's reason for omitting Azure Cap3 from the instance-type
    study: equal total cores of any Azure type give equal time and equal
    cost (features and price both scale linearly)."""
    cap3 = get_application("cap3")
    gtm = get_application("gtm")
    from repro.workloads.pubchem import gtm_task_specs

    shapes = [("Small", 16, 1), ("Medium", 8, 2), ("Large", 4, 4),
              ("ExtraLarge", 2, 8)]

    def study():
        out = {}
        for app, tasks in (
            ("cap3", cap3_task_specs(64, reads_per_file=200)),
            ("gtm", gtm_task_specs(64)),
        ):
            application = cap3 if app == "cap3" else gtm
            rows = []
            for itype, n, workers in shapes:
                backend = quiet_azure(
                    instance_type=itype,
                    n_instances=n,
                    workers_per_instance=workers,
                    perf_jitter=0.0,
                )
                result = backend.run(application, tasks)
                rows.append(
                    (itype, result.makespan_seconds,
                     result.billing.amortized_compute_cost)
                )
            out[app] = rows
        return out

    results = run_once(benchmark, study)
    text = []
    for app, rows in results.items():
        text.append(
            format_table(
                ["Azure type (16 cores total)", "time (s)", "amortized $"],
                [[t, f"{m:,.0f}", f"{c:.3f}"] for t, m, c in rows],
                title=f"Section 3 claim: Azure {app} scales linearly",
            )
        )
    emit("azure_linear_scaling", "\n\n".join(text))

    # Cap3 (CPU-bound): every shape within a few percent of every other.
    cap3_times = [m for _, m, _ in results["cap3"]]
    assert max(cap3_times) / min(cap3_times) < 1.10
    cap3_costs = [c for _, _, c in results["cap3"]]
    assert max(cap3_costs) / min(cap3_costs) < 1.12
    # GTM: Azure's bandwidth scales with cores (linear features), so the
    # memory-bound app also stays uniform — unlike on EC2 (Fig 12/13).
    gtm_times = [m for _, m, _ in results["gtm"]]
    assert max(gtm_times) / min(gtm_times) < 1.15
