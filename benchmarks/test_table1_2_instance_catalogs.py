"""Tables 1 and 2: the EC2 and Azure instance-type catalogs."""

from repro.cloud import AZURE_INSTANCE_TYPES, EC2_INSTANCE_TYPES
from repro.core.report import format_table

from benchmarks.conftest import run_once


def test_table1_ec2_catalog(benchmark, emit):
    def build():
        rows = []
        for name in ("L", "XL", "HCXL", "HM4XL"):
            itype = EC2_INSTANCE_TYPES[name]
            machine = itype.machine
            rows.append(
                [
                    itype.name,
                    f"{machine.memory_gb} GB",
                    itype.ec2_compute_units,
                    f"{machine.cores} X (~{machine.clock_ghz}GHz)",
                    f"{itype.cost_per_hour}$",
                ]
            )
        return rows

    rows = run_once(benchmark, build)
    emit(
        "table1_ec2_instance_types",
        format_table(
            ["Instance Type", "Memory", "EC2 compute units", "Actual CPU cores",
             "Cost per hour"],
            rows,
            title="Table 1: Selected EC2 instance types",
        ),
    )
    # Paper values, verbatim.
    assert rows[0] == ["L", "7.5 GB", 4, "2 X (~2.0GHz)", "0.34$"]
    assert rows[2][4] == "0.68$" and rows[1][4] == "0.68$"
    assert rows[3] == ["HM4XL", "68.4 GB", 26, "8 X (~3.25GHz)", "2.0$"]


def test_table2_azure_catalog(benchmark, emit):
    def build():
        return [
            [
                itype.name,
                itype.machine.cores,
                f"{itype.machine.memory_gb} GB",
                f"{itype.cost_per_hour}$",
            ]
            for itype in AZURE_INSTANCE_TYPES.values()
        ]

    rows = run_once(benchmark, build)
    emit(
        "table2_azure_instance_types",
        format_table(
            ["Instance Type", "CPU Cores", "Memory", "Cost per hour"],
            rows,
            title="Table 2: Microsoft Windows Azure instance types",
        ),
    )
    assert rows == [
        ["Small", 1, "1.7 GB", "0.12$"],
        ["Medium", 2, "3.5 GB", "0.24$"],
        ["Large", 4, "7.0 GB", "0.48$"],
        ["ExtraLarge", 8, "15.0 GB", "0.96$"],
    ]
