"""Table 3: summary of cloud technology features."""

from repro.core.report import feature_matrix_rows, format_table

from benchmarks.conftest import run_once


def test_table3_feature_matrix(benchmark, emit):
    rows = run_once(benchmark, feature_matrix_rows)
    emit(
        "table3_feature_matrix",
        format_table(
            ["", "AWS/Azure", "Hadoop", "DryadLINQ"],
            rows,
            title="Table 3: Summary of cloud technology features",
        ),
    )
    features = {r[0]: r for r in rows}
    assert len(rows) == 5
    # The claims the rest of the repository implements:
    assert "global queue" in features["Scheduling and load balancing"][1]
    assert "static task" in features["Scheduling and load balancing"][3].lower()
    assert "HTTP" in features["Data storage and communication"][1]
    assert "HDFS" in features["Data storage and communication"][2]
    assert "Local files" in features["Data storage and communication"][3]
    assert "time out" in features["Fault tolerance"][1]
