"""Table 4 + Section 4.3: the 4096-file cost comparison.

Paper reference numbers:

* AWS:   $10.88 compute + $0.01 queue + $0.14 storage + $0.10 transfer
         = $11.13 total (16 HCXL for one hour);
* Azure: $15.36 compute, $15.77 total (128 Small for one hour);
* owned cluster (500k$/3y + 150k$/y): $8.25 / $9.43 / $11.01 at
  80/70/60% utilization.
"""

import pytest

from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.cost import cloud_vs_cluster
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks._shapes import quiet_azure, quiet_ec2
from benchmarks.conftest import run_once


def test_table4_cost_comparison(benchmark, emit):
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=4096, reads_per_file=458)

    def study():
        ec2 = quiet_ec2(n_instances=16, perf_jitter=0.0).run(app, tasks)
        azure = quiet_azure(n_instances=128, perf_jitter=0.0).run(app, tasks)
        hadoop = make_backend(
            "hadoop", cluster=get_cluster("internal-tco")
        ).run(app, tasks)
        return cloud_vs_cluster(
            aws_report=ec2.billing,
            azure_report=azure.billing,
            cluster_wall_hours=hadoop.makespan_seconds / 3600.0,
        )

    comparison = run_once(benchmark, study)

    table = format_table(
        ["", "Amazon Web Services", "Azure"],
        comparison.table4_rows(),
        title="Table 4: Cost comparison (assembling 4096 FASTA files)",
    )
    cluster = format_table(
        ["internal cluster", "cost"],
        comparison.cluster_rows(),
        title="Section 4.3: owned-cluster cost by utilization",
    )
    emit("table4_cost_comparison", table + "\n\n" + cluster)

    # AWS column: exactly the paper's compute figure, total within cents.
    assert comparison.aws.compute_cost == pytest.approx(10.88)
    assert comparison.aws.total_cost == pytest.approx(11.13, abs=0.25)
    # Azure column.
    assert comparison.azure.compute_cost == pytest.approx(15.36)
    assert comparison.azure.total_cost == pytest.approx(15.77, abs=0.30)
    # Queue messages: cents.  (The paper charges ~10k messages = $0.01;
    # we meter every request — send, receive, delete, monitor — so the
    # figure runs a few cents higher.)
    assert comparison.aws.queue_cost < 0.06
    # Cluster costs ordered by utilization and in the paper's range.
    costs = dict(comparison.cluster_costs)
    assert costs[0.8] < costs[0.7] < costs[0.6]
    assert costs[0.8] == pytest.approx(8.25, rel=0.2)
    assert costs[0.6] == pytest.approx(11.01, rel=0.2)
    # The paper's conclusion: cloud cost is comparable to an owned
    # cluster at moderate utilization.
    assert comparison.aws.total_cost == pytest.approx(costs[0.6], rel=0.2)
