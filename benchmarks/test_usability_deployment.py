"""Section 2.4's usability comparison, quantified.

The paper's qualitative finding: "The deployment process was easier with
Azure as opposed to EC2, in which we had to manually create instances,
install software and start the worker instances", plus §4.3's note that
environment-preparation instance time is an additional (normally
unreported) cost.  This bench renders both as numbers.
"""

from repro.cloud.deployment import (
    AZURE_DEPLOYMENT,
    EC2_DEPLOYMENT,
    preparation_cost,
)
from repro.cloud.instance_types import AZURE_INSTANCE_TYPES, EC2_INSTANCE_TYPES
from repro.core.report import format_table

from benchmarks.conftest import run_once

FLEETS = [1, 4, 16, 64]


def test_usability_deployment_comparison(benchmark, emit):
    def study():
        rows = []
        for n in FLEETS:
            ec2_manual = EC2_DEPLOYMENT.manual_seconds(n) / 60.0
            azure_manual = AZURE_DEPLOYMENT.manual_seconds(n) / 60.0
            ec2_prep = preparation_cost(
                EC2_DEPLOYMENT, EC2_INSTANCE_TYPES["HCXL"], n
            )
            azure_prep = preparation_cost(
                AZURE_DEPLOYMENT, AZURE_INSTANCE_TYPES["Small"], n
            )
            rows.append((n, ec2_manual, azure_manual, ec2_prep, azure_prep))
        return rows

    rows = run_once(benchmark, study)
    emit(
        "usability_deployment",
        format_table(
            ["instances", "EC2 operator (min)", "Azure operator (min)",
             "EC2 prep cost", "Azure prep cost"],
            [
                [n, f"{e:.0f}", f"{a:.0f}", f"${ec:.2f}", f"${ac:.2f}"]
                for n, e, a, ec, ac in rows
            ],
            title="Section 2.4 usability: deployment effort and "
                  "environment-preparation cost",
        ),
    )

    # Azure's operator effort is flat; EC2's grows with fleet size.
    ec2_minutes = [e for _, e, _, _, _ in rows]
    azure_minutes = [a for _, _, a, _, _ in rows]
    assert len(set(azure_minutes)) == 1
    assert ec2_minutes == sorted(ec2_minutes)
    assert ec2_minutes[-1] > ec2_minutes[0]
    # At fleet scale, Azure wins on usability — the paper's conclusion.
    assert azure_minutes[-1] < ec2_minutes[-1]
