"""Section 3's sustained-performance variability study.

Gunarathne et al. [12] measured the run-to-run variation of these cloud
platforms over a week: standard deviations of 1.56% (AWS) and 2.25%
(Azure) with no day/time correlation — the basis for the paper's claim
that its results don't depend on when they were measured.

This bench repeats one Cap3 workload across many independently seeded
runs per provider and checks that the observed makespan variation stays
in that low-single-digit-percent regime, with AWS tighter than Azure.
"""

import numpy as np

from repro.core.application import get_application
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs

from benchmarks._shapes import quiet_azure, quiet_ec2
from benchmarks.conftest import run_once

N_RUNS = 12


def test_sustained_performance_variability(benchmark, emit):
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=64, reads_per_file=458)

    def study():
        # Identical fleet shapes (4 instances x 8 cores) so the
        # per-provider jitter parameter — not max-order statistics over
        # different fleet sizes — drives the comparison.
        out = {}
        for provider, factory in (
            ("AWS", lambda seed: quiet_ec2(n_instances=4, seed=seed)),
            (
                "Azure",
                lambda seed: quiet_azure(
                    instance_type="ExtraLarge",
                    n_instances=4,
                    workers_per_instance=8,
                    seed=seed,
                ),
            ),
        ):
            makespans = []
            for seed in range(N_RUNS):
                result = factory(1000 + seed).run(app, tasks)
                makespans.append(result.makespan_seconds)
            makespans = np.array(makespans)
            out[provider] = (
                float(makespans.mean()),
                float(makespans.std(ddof=1) / makespans.mean()),
            )
        return out

    results = run_once(benchmark, study)
    emit(
        "variability_study",
        format_table(
            ["provider", "mean makespan (s)", "relative std-dev"],
            [
                [name, f"{mean:,.0f}", f"{rel_std * 100:.2f}%"]
                for name, (mean, rel_std) in results.items()
            ],
            title=f"Sustained-performance variability ({N_RUNS} runs each; "
                  "paper: 1.56% AWS / 2.25% Azure)",
        ),
    )

    aws_std = results["AWS"][1]
    azure_std = results["Azure"][1]
    # Low-single-digit-percent variation, the paper's regime.
    assert aws_std < 0.05
    assert azure_std < 0.06
    # Azure's jitter model is wider than AWS's.
    assert azure_std > aws_std * 0.8
