#!/usr/bin/env python3
"""Distributed protein similarity search (BLAST), Section 5 style.

* runs a real mini-BLAST search locally — planted homologs recovered
  from a synthetic NR-like database, with a threads-vs-processes check;
* plays the paper's Azure instance-type study (Figure 9): the same 8
  query files on 8 Small / 4 Medium / 2 Large / 1 ExtraLarge instances,
  showing the memory-residency effect on the 8.7 GB database;
* reports the EC2-vs-Azure scalability comparison (Figures 10/11).

Run:  python examples/blast_search_service.py
"""

from repro import get_application, make_backend
from repro.apps.blast import blast_search
from repro.cloud.failures import FaultPlan
from repro.core.metrics import parallel_efficiency
from repro.core.report import format_table
from repro.workloads.protein import (
    blast_task_specs,
    generate_protein_database,
    generate_query_records,
)


def real_search() -> None:
    print("=== Real mini-BLAST: planted homologs in a synthetic NR ===")
    db = generate_protein_database(n_sequences=40, seed=1)
    queries = generate_query_records(
        db, n_queries=20, homolog_fraction=0.6, identity=0.8, seed=2
    )
    results = blast_search(queries, db, num_threads=2)
    planted = sum(
        1 for q in queries if q.description.startswith("homolog_of=")
    )
    recovered = 0
    for query in queries:
        if not query.description.startswith("homolog_of="):
            continue
        truth = query.description.split("=", 1)[1]
        hits = results[query.id]
        if hits and hits[0].subject_id == truth:
            recovered += 1
    print(f"{recovered}/{planted} planted homologs recovered as top hit")
    print()


def azure_instance_types() -> None:
    print("=== Figure 9 shape: BLAST on Azure instance types ===")
    app = get_application("blast")
    tasks = blast_task_specs(8, inhomogeneous_base=False, seed=5)
    shapes = [
        ("Small", 8, 1, 1),       # 8 instances x 1 worker x 1 thread
        ("Medium", 4, 2, 1),
        ("Large", 2, 4, 1),
        ("Large", 2, 1, 4),       # 1 worker x N threads variant
        ("ExtraLarge", 1, 8, 1),
        ("ExtraLarge", 1, 1, 8),
    ]
    rows = []
    for itype, n, workers, threads in shapes:
        backend = make_backend(
            "azure",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=workers,
            threads_per_worker=threads,
            fault_plan=FaultPlan.none(),
        )
        result = backend.run(app.with_threads(threads), tasks)
        rows.append(
            [f"{itype} ({workers}x{threads})", n,
             f"{result.makespan_seconds:,.0f}"]
        )
    print(format_table(["instance (workers x threads)", "count", "time (s)"],
                       rows))
    print("-> more memory per instance = database stays resident = faster;")
    print("   threads slightly behind the same core count as processes.")
    print()


def scalability() -> None:
    print("=== Figures 10/11 shape: BLAST weak scaling ===")
    app = get_application("blast")
    rows = []
    for n_files in (128, 256, 384):
        tasks = blast_task_specs(n_files, seed=9)
        ec2 = make_backend("ec2", n_instances=16, fault_plan=FaultPlan.none())
        azure = make_backend(
            "azure",
            instance_type="Large",
            n_instances=16,
            workers_per_instance=4,
            fault_plan=FaultPlan.none(),
        )
        for name, backend in (("EC2 16xHCXL", ec2), ("Azure 16xLarge", azure)):
            result = backend.run(app, tasks)
            t1 = backend.estimate_sequential_time(app, tasks)
            eff = parallel_efficiency(
                t1, result.makespan_seconds, backend.total_cores
            )
            rows.append([name, n_files, f"{eff:.3f}"])
    print(format_table(["platform", "query files", "efficiency"], rows))


if __name__ == "__main__":
    real_search()
    azure_instance_types()
    scalability()
