#!/usr/bin/env python3
"""Chemical-structure dimension reduction with GTM Interpolation, Section 6.

* trains a real GTM on a PubChem-like sample set and interpolates
  out-of-sample descriptor vectors down to 2-D — the visualization the
  paper's PubChem analysis produces;
* demonstrates the memory story: interpolation streams points in
  batches, and the simulated instance-type study shows memory bandwidth
  (not clock) deciding performance (Figures 12/13);
* prints the cross-platform efficiency comparison (Figures 14/15).

Run:  python examples/chemical_structure_visualization.py
"""

import numpy as np

from repro import get_application, make_backend
from repro.apps.gtm import gtm_interpolate, train_gtm
from repro.cloud.failures import FaultPlan
from repro.core.metrics import parallel_efficiency
from repro.core.report import format_table
from repro.workloads.pubchem import generate_pubchem_points, gtm_task_specs


def real_interpolation() -> None:
    print("=== Real GTM: train on samples, interpolate out-of-samples ===")
    sample = generate_pubchem_points(800, dimensions=64, n_clusters=5, seed=3)
    model = train_gtm(sample, latent_per_dim=10, rbf_per_dim=4, iterations=15)
    out_of_sample = generate_pubchem_points(
        5000, dimensions=64, n_clusters=5, seed=3
    )
    latent = gtm_interpolate(model, out_of_sample, batch_size=1000)
    print(f"trained on {sample.shape[0]} samples "
          f"({len(model.log_likelihoods)} EM iterations, "
          f"final LL {model.log_likelihoods[-1]:.1f})")
    print(f"interpolated {latent.shape[0]} points -> 2-D; "
          f"latent occupancy: x in [{latent[:, 0].min():.2f}, "
          f"{latent[:, 0].max():.2f}], y in [{latent[:, 1].min():.2f}, "
          f"{latent[:, 1].max():.2f}]")
    # Clusters should stay separated after reduction.
    spread = np.linalg.norm(latent - latent.mean(axis=0), axis=1).mean()
    print(f"mean distance from latent centroid: {spread:.3f} "
          "(well spread = structure preserved)")
    print()


def instance_type_study() -> None:
    print("=== Figures 12/13 shape: GTM on EC2 instance types, 16 cores ===")
    app = get_application("gtm")
    tasks = gtm_task_specs(n_files=64)
    shapes = [
        ("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8),
    ]
    rows = []
    for itype, n, workers in shapes:
        backend = make_backend(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=workers,
            fault_plan=FaultPlan.none(),
        )
        result = backend.run(app, tasks)
        rows.append(
            [f"{itype} - {n} x {workers}",
             f"{result.makespan_seconds:,.0f}",
             f"{result.billing.compute_cost:.2f}",
             f"{result.billing.total_amortized_cost:.2f}"]
        )
    print(format_table(
        ["deployment", "time (s)", "cost $ (hours)", "amortized $"], rows
    ))
    print("-> HM4XL fastest (bandwidth), HCXL still the economical pick.")
    print()


def platform_efficiency() -> None:
    print("=== Figures 14/15 shape: GTM efficiency across platforms ===")
    from repro.cluster import get_cluster

    app = get_application("gtm")
    tasks = gtm_task_specs(n_files=264)
    backends = {
        "EC2 Large": make_backend(
            "ec2", instance_type="L", n_instances=32,
            workers_per_instance=2, fault_plan=FaultPlan.none(),
        ),
        "EC2 HCXL": make_backend(
            "ec2", n_instances=8, fault_plan=FaultPlan.none()
        ),
        "Azure Small": make_backend(
            "azure", n_instances=64, fault_plan=FaultPlan.none()
        ),
        "Hadoop (8 of 24 cores)": make_backend(
            "hadoop", cluster=get_cluster("gtm-hadoop").subset(8)
        ),
        "DryadLINQ (16-core nodes)": make_backend(
            "dryadlinq", cluster=get_cluster("gtm-dryad").subset(4)
        ),
    }
    rows = []
    for name, backend in backends.items():
        result = backend.run(app, tasks)
        t1 = backend.estimate_sequential_time(app, tasks)
        eff = parallel_efficiency(t1, result.makespan_seconds, backend.total_cores)
        rows.append([name, backend.total_cores, f"{eff:.3f}"])
    print(format_table(["platform", "cores", "efficiency"], rows))
    print("-> Azure Small best (one core per memory bus); EC2 Large beats")
    print("   HCXL; 16-core DryadLINQ nodes pay the most memory contention.")


if __name__ == "__main__":
    real_interpolation()
    instance_type_study()
    platform_efficiency()
