#!/usr/bin/env python3
"""Buy vs lease: what does your workload cost where?  (Table 4 / §4.3)

Runs the paper's 4096-file Cap3 assembly on simulated EC2 (16 HCXL) and
Azure (128 Small), runs the same job on the simulated internal cluster
via Hadoop, and prints the full cost comparison including the owned
cluster at 80/70/60 % utilization — the paper's Table 4 plus its
Section 4.3 TCO analysis.

Run:  python examples/cost_planner.py
"""

from repro import get_application, make_backend
from repro.cloud.failures import FaultPlan
from repro.cluster import get_cluster
from repro.core.cost import cloud_vs_cluster
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs


def main() -> None:
    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=4096, reads_per_file=458)

    print("running EC2 (16 x HCXL) ...")
    ec2 = make_backend("ec2", n_instances=16, fault_plan=FaultPlan.none())
    ec2_result = ec2.run(app, tasks)

    print("running Azure (128 x Small) ...")
    # perf_jitter=0: cost accounting at nominal instance speed, as the
    # paper's Table 4 assumes (the jittered run straddles the hour mark).
    azure = make_backend(
        "azure", n_instances=128, fault_plan=FaultPlan.none(), perf_jitter=0.0
    )
    azure_result = azure.run(app, tasks)

    print("running Hadoop on the internal 32x24-core cluster ...\n")
    hadoop = make_backend("hadoop", cluster=get_cluster("internal-tco"))
    hadoop_result = hadoop.run(app, tasks)
    cluster_hours = hadoop_result.makespan_seconds / 3600.0

    comparison = cloud_vs_cluster(
        aws_report=ec2_result.billing,
        azure_report=azure_result.billing,
        cluster_wall_hours=cluster_hours,
    )

    print(format_table(
        ["", "Amazon Web Services", "Azure"],
        comparison.table4_rows(),
        title="Table 4-style cost comparison (4096 FASTA files)",
    ))
    print()
    print(format_table(
        ["internal cluster", "cost"],
        comparison.cluster_rows(),
        title=f"Owned cluster ({cluster_hours * 60:.0f} min wall time), "
              "500k$ purchase / 3y + 150k$/y maintenance:",
    ))
    print()
    ec2_makespan_h = ec2_result.makespan_seconds / 3600.0
    print(f"EC2 makespan: {ec2_makespan_h:.2f} h; "
          f"Azure: {azure_result.makespan_seconds / 3600.0:.2f} h; "
          f"cluster: {cluster_hours:.2f} h")
    print("-> clouds are cost-competitive with a well-utilized owned "
          "cluster, without the upfront investment.")


if __name__ == "__main__":
    main()
