#!/usr/bin/env python3
"""Fault tolerance end to end: crashes, duplicates, poison, recovery.

The Classic Cloud framework's whole reliability story is the visibility
timeout: workers delete a task's message only after completing it, so a
crash anywhere mid-task redelivers the work automatically.  This demo
exercises every failure mode on the simulated EC2 deployment:

1. worker crashes mid-task (message reappears, another worker finishes);
2. a visibility timeout that's too short (duplicate executions, visible
   as ``x`` rows in the Gantt chart — wasted but harmless);
3. a *poison* task that crashes every worker that touches it, bounded by
   the dead-letter redrive policy.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.classiccloud import ClassicCloudConfig, ClassicCloudFramework
from repro.cloud.failures import FaultPlan, WorkerCrash
from repro.core.analysis import gantt_text, load_balance_index
from repro.core.application import get_application
from repro.workloads.genome import cap3_task_specs


def base_config(**kwargs):
    defaults = dict(
        provider="aws",
        instance_type="HCXL",
        n_instances=1,
        workers_per_instance=8,
        consistency_window_s=0.0,
        seed=3,
    )
    defaults.update(kwargs)
    return ClassicCloudConfig(**defaults)


def crash_recovery() -> None:
    print("=== 1. Worker crashes: visibility-timeout recovery ===")
    app = get_application("cap3")
    tasks = cap3_task_specs(24, reads_per_file=200)
    plan = FaultPlan(
        worker_crashes=[
            WorkerCrash(worker_index=0, at_time=30.0),
            WorkerCrash(worker_index=3, at_time=55.0, restart_after=40.0),
        ],
        queue_miss_probability=0.0,
    )
    result = ClassicCloudFramework(
        base_config(fault_plan=plan, visibility_timeout_s=90.0)
    ).run(app, tasks)
    print(f"completed {len(result.completed_task_ids)}/24 despite 2 crashes; "
          f"reappearances: {result.extras['reappearances']:.0f}")
    print()


def duplicate_execution() -> None:
    print("=== 2. Too-short visibility timeout: duplicates ('x' rows) ===")
    app = get_application("cap3")
    tasks = cap3_task_specs(16, reads_per_file=200)
    result = ClassicCloudFramework(
        base_config(
            fault_plan=FaultPlan.none(), visibility_timeout_s=20.0
        )  # tasks take ~50s
    ).run(app, tasks)
    print(f"all {len(result.completed_task_ids)} tasks completed; "
          f"{result.duplicate_executions} duplicate executions "
          f"(idempotent, so results are unaffected)")
    print(gantt_text(result, width=64))
    print(f"load balance (max/mean busy): {load_balance_index(result):.2f}")
    print()


def poison_quarantine() -> None:
    print("=== 3. Poison task: dead-letter redrive ===")
    app = get_application("cap3")
    tasks = cap3_task_specs(24, reads_per_file=200)
    poison = {tasks[7].task_id}
    plan = FaultPlan(
        queue_miss_probability=0.0,
        poison_task_ids=frozenset(poison),
        poison_restart_s=15.0,
    )
    result = ClassicCloudFramework(
        base_config(
            fault_plan=plan, visibility_timeout_s=120.0, max_task_attempts=3
        )
    ).run(app, tasks)
    print(f"healthy tasks completed: {len(result.completed_task_ids)}/23")
    print(f"quarantined in the dead-letter queue: {sorted(result.failed)}")
    print("without the redrive policy, this input would crash workers "
          "and redeliver forever.")


if __name__ == "__main__":
    crash_recovery()
    duplicate_execution()
    poison_quarantine()
