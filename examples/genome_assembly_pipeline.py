#!/usr/bin/env python3
"""Genome assembly (Cap3) across all four cloud paradigms.

Recreates the Section 4 story end to end:

* assembles a real shotgun read set locally and reports contig stats;
* runs the paper-scale replicated workload on simulated EC2, Azure,
  Hadoop and DryadLINQ deployments of equal core count and prints the
  cross-framework comparison the paper's Figures 5/6 make;
* shows what an inhomogeneous workload does to DryadLINQ's static
  partitioning versus Hadoop's dynamic queue.

Run:  python examples/genome_assembly_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import get_application, make_backend
from repro.apps.cap3 import assemble
from repro.cloud.failures import FaultPlan
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.report import format_table
from repro.workloads.genome import cap3_task_specs, generate_read_records


def real_assembly() -> None:
    print("=== Real mini-Cap3 assembly ===")
    reads = generate_read_records(n_reads=120, read_length=300, coverage=10.0)
    result = assemble(reads)
    print(f"reads in: {int(result.stats['reads_in'])}, "
          f"contigs: {len(result.contigs)}, "
          f"singletons: {len(result.singletons)}, "
          f"N50: {result.n50} bp")
    print()


def four_framework_comparison() -> None:
    print("=== Four frameworks, 64 cores each, replicated 458-read files ===")
    from repro.cluster import get_cluster

    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=512, reads_per_file=458)
    backends = {
        "EC2 (8x HCXL)": make_backend(
            "ec2", n_instances=8, fault_plan=FaultPlan.none()
        ),
        "Azure (64x Small)": make_backend(
            "azure", n_instances=64, fault_plan=FaultPlan.none()
        ),
        # Bare-metal clusters restricted to 8 nodes = 64 cores.
        "Hadoop (8 nodes x 8)": make_backend(
            "hadoop", cluster=get_cluster("cap3-baremetal").subset(8)
        ),
        "DryadLINQ (8 nodes x 8)": make_backend(
            "dryadlinq", cluster=get_cluster("cap3-baremetal-windows").subset(8)
        ),
    }

    rows = []
    for name, backend in backends.items():
        result = backend.run(app, tasks)
        t1 = backend.estimate_sequential_time(app, tasks)
        eff = parallel_efficiency(t1, result.makespan_seconds, backend.total_cores)
        per_core = average_time_per_file_per_core(
            result.makespan_seconds, backend.total_cores, len(tasks)
        )
        rows.append(
            [name, f"{result.makespan_seconds:,.0f}", f"{eff:.3f}",
             f"{per_core:.1f}"]
        )
    print(format_table(
        ["framework", "makespan (s)", "efficiency", "s/file/core"], rows
    ))
    print()


def load_balance_story() -> None:
    print("=== Inhomogeneous data: dynamic vs static scheduling ===")
    from repro.cluster import get_cluster

    app = get_application("cap3")
    tasks = cap3_task_specs(
        n_files=256, reads_per_file=458, inhomogeneous=True, seed=13
    )
    hadoop = make_backend("hadoop", cluster=get_cluster("cap3-baremetal").subset(8))
    dryad = make_backend(
        "dryadlinq", cluster=get_cluster("cap3-baremetal-windows").subset(8)
    )
    h = hadoop.run(app, tasks)
    d = dryad.run(app, tasks)
    print(f"Hadoop   (dynamic queue):     {h.makespan_seconds:,.0f} s")
    print(f"DryadLINQ (static partitions): {d.makespan_seconds:,.0f} s "
          f"(imbalance {d.extras['partition_imbalance']:.2f}x, and Windows "
          f"runs Cap3 ~12.5% faster — correct for that when comparing)")


if __name__ == "__main__":
    real_assembly()
    four_framework_comparison()
    load_balance_story()
