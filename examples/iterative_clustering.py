#!/usr/bin/env python3
"""Iterative MapReduce (TwisterAzure) — the paper's future work, built.

The paper closes by announcing "a fully-fledged MapReduce framework with
iterative-MapReduce support for the Windows Azure Cloud infrastructure".
This example exercises that extension:

* clusters PubChem-like descriptor vectors with K-means expressed as
  iterative MapReduce (map = assign + partial sums over cached
  partitions, reduce = totals, merge = new centroids);
* shows why iterative support matters on cloud primitives: the simulated
  cost of re-dispatching a Classic Cloud job per iteration versus
  caching static data on long-lived workers.

Run:  python examples/iterative_clustering.py
"""

import numpy as np

from repro.core.report import format_table
from repro.twister import (
    TwisterAzureSimulator,
    TwisterSimConfig,
    kmeans_mapreduce,
)
from repro.workloads.pubchem import generate_pubchem_points


def real_kmeans() -> None:
    print("=== Real K-means via iterative MapReduce ===")
    points = generate_pubchem_points(
        4000, dimensions=32, n_clusters=6, cluster_scale=8.0, seed=11
    )
    centroids, result = kmeans_mapreduce(
        points, n_clusters=6, n_partitions=8, n_workers=4, seed=2
    )
    print(f"converged: {result.converged} after {result.iterations} "
          f"iterations; centroid matrix {centroids.shape}")
    # Cluster quality: mean distance to the nearest centroid.
    sq = (
        (points * points).sum(axis=1)[:, None]
        - 2.0 * points @ centroids.T
        + (centroids * centroids).sum(axis=1)[None, :]
    )
    rmse = float(np.sqrt(sq.min(axis=1).mean()))
    print(f"RMS point-to-centroid distance: {rmse:.2f} "
          f"(noise scale was 1.0, so ~sqrt(32) = 5.7 is ideal)")
    print()


def cost_of_iteration() -> None:
    print("=== Why TwisterAzure: per-iteration dispatch vs caching ===")
    rows = []
    for n_iterations in (1, 5, 10, 20):
        results = TwisterAzureSimulator(
            TwisterSimConfig(n_iterations=n_iterations)
        ).compare()
        naive = results["naive"].total_seconds
        twister = results["twister"].total_seconds
        rows.append(
            [n_iterations, f"{naive:,.0f}", f"{twister:,.0f}",
             f"{naive / twister:.2f}x"]
        )
    print(format_table(
        ["iterations", "naive (s)", "twister (s)", "speedup"], rows
    ))
    print("-> caching static data on long-lived workers pays more the "
          "longer the iteration runs.")


if __name__ == "__main__":
    real_kmeans()
    cost_of_iteration()
