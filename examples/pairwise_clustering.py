#!/usr/bin/env python3
"""All-pairs sequence distance: extending the framework with a new app.

The paper's companion work ([13]) computes all-pairs Smith-Waterman-Gotoh
distances for sequence clustering.  The distance matrix decomposes into
independent blocks — pleasingly parallel tasks — so the same framework
runs it.  This example:

1. computes a real block-decomposed distance matrix over synthetic
   sequence families and checks the blocks reassemble correctly;
2. registers SWG as a *user application* (just a TaskPerfModel) and runs
   a 1024-sequence all-pairs job on the simulated EC2 Classic Cloud.

Run:  python examples/pairwise_clustering.py
"""

import numpy as np

from repro.apps.swg import (
    SWG_PERF_MODEL,
    pairwise_distance,
    swg_block_task_specs,
    swg_distance_block,
)
from repro.cloud.failures import FaultPlan
from repro.core.application import Application
from repro.core.backends import make_backend
from repro.core.metrics import parallel_efficiency


def sequence_families(n_families=3, per_family=6, length=120, seed=0):
    """Families of related sequences (mutated copies of an ancestor)."""
    rng = np.random.default_rng(seed)
    sequences, labels = [], []
    for family in range(n_families):
        ancestor = "".join(
            "ACGT"[i] for i in rng.integers(0, 4, size=length)
        )
        for _ in range(per_family):
            member = list(ancestor)
            for i in range(length):
                if rng.random() < 0.05:
                    member[i] = "ACGT"[rng.integers(0, 4)]
            sequences.append("".join(member))
            labels.append(family)
    return sequences, labels


def real_distance_matrix() -> None:
    print("=== Real block-decomposed SWG distance matrix ===")
    sequences, labels = sequence_families()
    n = len(sequences)
    block_size = 6
    matrix = np.zeros((n, n))
    n_blocks = (n + block_size - 1) // block_size
    for bi in range(n_blocks):
        rows = slice(bi * block_size, min((bi + 1) * block_size, n))
        for bj in range(bi, n_blocks):
            cols = slice(bj * block_size, min((bj + 1) * block_size, n))
            block = swg_distance_block(
                sequences[rows], sequences[cols], symmetric=(bi == bj)
            )
            matrix[rows, cols] = block
            if bi != bj:
                matrix[cols, rows] = block.T
    # Family structure: within-family distances far below between-family.
    labels = np.array(labels)
    same = matrix[np.equal.outer(labels, labels) & (matrix > 0)]
    diff = matrix[~np.equal.outer(labels, labels)]
    print(f"{n} sequences, {n_blocks * (n_blocks + 1) // 2} blocks")
    print(f"mean within-family distance:  {same.mean():.3f}")
    print(f"mean between-family distance: {diff.mean():.3f}")
    spot = pairwise_distance(sequences[0], sequences[7])
    assert matrix[0, 7] == spot  # blocks agree with direct computation
    print()


def simulated_all_pairs() -> None:
    print("=== 1024-sequence all-pairs job on simulated EC2 ===")
    app = Application(name="swg", perf_model=SWG_PERF_MODEL)
    tasks = swg_block_task_specs(1024, block_size=64)
    backend = make_backend(
        "ec2", n_instances=4, fault_plan=FaultPlan.none(), seed=6
    )
    result = backend.run(app, tasks)
    t1 = backend.estimate_sequential_time(app, tasks)
    eff = parallel_efficiency(t1, result.makespan_seconds, backend.total_cores)
    pairs = sum(t.work_units for t in tasks)
    print(f"{len(tasks)} blocks covering {pairs:,.0f} pairs")
    print(f"makespan on 32 HCXL cores: {result.makespan_seconds:,.0f} s "
          f"(efficiency {eff:.3f})")
    print(f"cost: ${result.billing.compute_cost:.2f} hour units / "
          f"${result.billing.total_amortized_cost:.2f} amortized")


if __name__ == "__main__":
    real_distance_matrix()
    simulated_all_pairs()
