#!/usr/bin/env python3
"""Quickstart: one workload, two ways.

1. Run a real miniature Cap3 assembly on local threads through the
   Classic Cloud framework (visibility-timeout queue and all).
2. Play the same workload shape at paper scale on the simulated EC2
   Classic Cloud and print time, cost and parallel efficiency.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import evaluate, get_application, run
from repro.apps.executables import Cap3Executable
from repro.apps.fasta import read_fasta
from repro.classiccloud import LocalClassicCloud
from repro.cloud.failures import FaultPlan
from repro.workloads.genome import cap3_task_specs, write_cap3_workload


def real_local_run() -> None:
    print("=== 1. Real execution: mini-Cap3 on local threads ===")
    with tempfile.TemporaryDirectory() as tmp:
        tasks = write_cap3_workload(
            Path(tmp), n_files=8, reads_per_file=24, replicated=False
        )
        result = LocalClassicCloud(n_workers=4).run(Cap3Executable(), tasks)
        print(f"assembled {result.n_tasks} FASTA files in "
              f"{result.makespan_seconds:.2f}s on 4 workers")
        example = read_fasta(tasks[0].output_key)
        contigs = [r for r in example if r.id.startswith("Contig")]
        print(f"first file produced {len(contigs)} contig(s); "
              f"longest = {max((len(c) for c in contigs), default=0)} bp")
    print()


def simulated_paper_scale() -> None:
    print("=== 2. Simulated EC2: the paper's Cap3 setup ===")
    app = get_application("cap3")
    # 200 files x 200 reads on 16 cores (2 HCXL instances), as in Fig 3/4.
    tasks = cap3_task_specs(n_files=200, reads_per_file=200)
    result = run(
        app,
        tasks,
        backend="ec2",
        n_instances=2,
        workers_per_instance=8,
        fault_plan=FaultPlan.none(),
    )
    print(f"makespan: {result.makespan_seconds:,.0f} s")
    print(f"compute cost (hour units): ${result.billing.compute_cost:.2f}")
    print(f"amortized cost:            "
          f"${result.billing.total_amortized_cost:.2f}")

    metrics = evaluate(
        app,
        tasks,
        backend="ec2",
        n_instances=2,
        workers_per_instance=8,
        fault_plan=FaultPlan.none(),
    )
    print(f"parallel efficiency (Eq.1): {metrics['parallel_efficiency']:.3f}")
    print(f"avg time/file/core (Eq.2): "
          f"{metrics['avg_time_per_file_per_core']:.1f} s")

    # Worker occupancy at a glance.
    from repro.core.analysis import gantt_text

    print()
    print("worker Gantt (first 8 of 16 workers):")
    print("\n".join(gantt_text(result, width=64).split("\n")[:9]))


if __name__ == "__main__":
    real_local_run()
    simulated_paper_scale()
