"""repro — reproduction of "Cloud Computing Paradigms for Pleasingly
Parallel Biomedical Applications" (Gunarathne, Wu, Choi, Bae, Qiu; 2010).

Quickstart::

    from repro import get_application, run
    from repro.workloads.genome import cap3_task_specs

    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=200, reads_per_file=200)
    result = run(app, tasks, backend="ec2", n_instances=2)
    print(f"{result.makespan_seconds:.0f}s, "
          f"${result.billing.total_cost:.2f}")

Packages:

* :mod:`repro.core` — the unified pleasingly-parallel API, metrics, cost.
* :mod:`repro.classiccloud` — the Classic Cloud framework (sim + local).
* :mod:`repro.hadoop`, :mod:`repro.dryad` — the MapReduce/DAG substrates.
* :mod:`repro.cloud`, :mod:`repro.cluster` — IaaS and bare-metal models.
* :mod:`repro.apps` — real Cap3 / BLAST / GTM implementations.
* :mod:`repro.workloads` — synthetic data generators.
* :mod:`repro.sim` — the discrete-event simulation kernel.
"""

from repro.core.api import evaluate, run
from repro.core.application import Application, get_application
from repro.core.backends import make_backend
from repro.core.metrics import (
    average_time_per_file_per_core,
    parallel_efficiency,
    speedup,
)
from repro.core.task import RunResult, TaskSpec

__version__ = "1.0.0"

__all__ = [
    "Application",
    "RunResult",
    "TaskSpec",
    "__version__",
    "average_time_per_file_per_core",
    "evaluate",
    "get_application",
    "make_backend",
    "parallel_efficiency",
    "run",
    "speedup",
]
