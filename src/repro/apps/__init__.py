"""The three biomedical applications, implemented for real.

Each application exists in two forms:

* a real algorithm operating on real (synthetic) data — used by the local
  execution backend, the examples and the correctness tests:

  - :mod:`repro.apps.cap3` — a miniature overlap-layout-consensus DNA
    assembler in the spirit of CAP3 (Huang & Madan 1999);
  - :mod:`repro.apps.blast` — a miniature protein BLAST (k-mer seeding,
    two-hit diagonal filtering, gapped extension, BLOSUM62,
    Karlin–Altschul e-values);
  - :mod:`repro.apps.gtm` — full Generative Topographic Mapping training
    plus the paper's GTM Interpolation out-of-sample extension;

* a calibrated analytic performance model (:mod:`repro.apps.perfmodels`)
  used by the discrete-event simulator to play the paper's large-scale
  experiments without the authors' hardware.

:mod:`repro.apps.executables` wraps each algorithm behind the paper's
"existing sequential executable" contract — a file in, a file out — which
is the interface every framework in this repository schedules.
"""

from repro.apps.blast import (
    BlastDatabase,
    BlastHit,
    LowComplexityFilter,
    blast_search,
    mask_low_complexity,
)
from repro.apps.cap3 import AssemblyResult, Cap3Params, assemble
from repro.apps.executables import (
    BlastExecutable,
    Cap3Executable,
    Executable,
    GtmInterpolationExecutable,
)
from repro.apps.fasta import FastaRecord, read_fasta, write_fasta
from repro.apps.gtm import GtmModel, gtm_interpolate, train_gtm
from repro.apps.fastq import FastqRecord, quality_trim, read_fastq, write_fastq
from repro.apps.perfmodels import (
    APP_PERF_MODELS,
    TaskPerfModel,
    task_runtime_seconds,
)
from repro.apps.swg import (
    SWG_PERF_MODEL,
    SwgParams,
    pairwise_distance,
    swg_align,
    swg_block_task_specs,
    swg_distance_block,
)

__all__ = [
    "APP_PERF_MODELS",
    "AssemblyResult",
    "BlastDatabase",
    "BlastExecutable",
    "BlastHit",
    "Cap3Executable",
    "Cap3Params",
    "Executable",
    "FastaRecord",
    "FastqRecord",
    "GtmInterpolationExecutable",
    "GtmModel",
    "LowComplexityFilter",
    "SWG_PERF_MODEL",
    "SwgParams",
    "TaskPerfModel",
    "assemble",
    "blast_search",
    "gtm_interpolate",
    "mask_low_complexity",
    "pairwise_distance",
    "quality_trim",
    "read_fasta",
    "read_fastq",
    "swg_align",
    "swg_block_task_specs",
    "swg_distance_block",
    "task_runtime_seconds",
    "train_gtm",
    "write_fasta",
    "write_fastq",
]
