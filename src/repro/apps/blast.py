"""A miniature protein BLAST (seed–extend similarity search).

Real algorithmic pipeline in the style of NCBI BLAST+ (Camacho et al.
2009), scaled down but faithful in structure:

1. **word index** — the database is indexed by k=3 amino-acid words
   (optionally with a scored neighbourhood, as in true BLASTP);
2. **two-hit trigger** — two word hits on the same diagonal within a
   window trigger extension (cuts spurious extensions, as in BLAST 2.0);
3. **ungapped X-drop extension** — seeds extend along the diagonal until
   the score drops X below the running maximum;
4. **gapped banded Smith–Waterman** — promising ungapped hits are
   re-aligned with gaps inside a diagonal band;
5. **Karlin–Altschul statistics** — raw scores convert to bit scores and
   e-values with the standard gapped BLOSUM62 parameters.

The database object holds all sequences and the word index resident in
memory — the property behind the paper's Figure 9 memory study (BLAST can
"load and reuse the whole database in memory" only when the instance has
enough of it).

Queries are independent; :func:`blast_search` optionally fans a query
batch across threads, mirroring ``blastp -num_threads``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.apps.fasta import FastaRecord

__all__ = [
    "AMINO_ACIDS",
    "BlastDatabase",
    "BlastHit",
    "BlastParams",
    "LowComplexityFilter",
    "blast_search",
    "blosum62",
    "mask_low_complexity",
]

AMINO_ACIDS = "ARNDCQEGHILKMFPSTWYV"
_AA_INDEX = {aa: i for i, aa in enumerate(AMINO_ACIDS)}

# Standard BLOSUM62 substitution matrix, row/column order as AMINO_ACIDS.
_BLOSUM62_ROWS = [
    # A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
    [4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0],
    [-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3],
    [-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3],
    [-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3],
    [0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1],
    [-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2],
    [-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2],
    [0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3],
    [-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3],
    [-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3],
    [-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1],
    [-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2],
    [-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1],
    [-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1],
    [-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2],
    [1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2],
    [0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0],
    [-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3],
    [-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -2],
    [0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -2, 4],
]
_BLOSUM62 = np.array(_BLOSUM62_ROWS, dtype=np.int32)
# Plain nested lists for the scalar alignment kernel: per-cell ndarray
# indexing is ~10x slower than list indexing at this matrix size.
_BLOSUM62_LISTS = [list(row) for row in _BLOSUM62_ROWS]


def blosum62(a: str, b: str) -> int:
    """BLOSUM62 score for one residue pair."""
    return int(_BLOSUM62[_AA_INDEX[a], _AA_INDEX[b]])


# Gapped Karlin-Altschul parameters for BLOSUM62 / gap open 11 extend 1.
_KA_LAMBDA = 0.267
_KA_K = 0.041
_LN2 = float(np.log(2.0))


@dataclass(frozen=True)
class BlastParams:
    """Search thresholds (defaults modelled on blastp's)."""

    word_size: int = 3
    two_hit_window: int = 40
    xdrop_ungapped: float = 7.0
    xdrop_gapped: float = 15.0
    gap_penalty: float = 11.0  # linear gap cost inside the banded DP
    band_width: int = 16
    min_ungapped_score: int = 22  # promotion threshold to gapped stage
    max_evalue: float = 10.0
    neighborhood_threshold: int | None = None  # e.g. 11 for true-BLAST words
    # SEG-style low-complexity filtering: query windows whose Shannon
    # entropy falls below the threshold are excluded from seeding
    # (blastp's default behaviour).  None disables filtering.
    low_complexity_filter: "LowComplexityFilter | None" = None

    def __post_init__(self) -> None:
        if self.word_size < 2:
            raise ValueError("word_size must be >= 2")
        if self.band_width < 1:
            raise ValueError("band_width must be >= 1")


@dataclass(frozen=True)
class LowComplexityFilter:
    """Entropy-based query masking parameters (SEG-flavoured)."""

    window: int = 12
    entropy_threshold_bits: float = 2.2  # uniform 20 letters = log2(20)=4.32

    def __post_init__(self) -> None:
        if self.window < 4:
            raise ValueError("window must be >= 4")
        if self.entropy_threshold_bits <= 0:
            raise ValueError("entropy threshold must be positive")


def mask_low_complexity(
    enc: np.ndarray, filter_params: LowComplexityFilter
) -> np.ndarray:
    """Boolean mask: True where the query is low complexity.

    Sliding-window Shannon entropy over residue frequencies; a window
    below the threshold masks all its positions — the shape of the SEG
    algorithm (Wootton & Federhen) without its two-stage refinement.
    """
    n = len(enc)
    window = filter_params.window
    masked = np.zeros(n, dtype=bool)
    if n < window:
        return masked
    for start in range(0, n - window + 1):
        counts = np.bincount(enc[start : start + window], minlength=20)
        freqs = counts[counts > 0] / window
        entropy = float(-(freqs * np.log2(freqs)).sum())
        if entropy < filter_params.entropy_threshold_bits:
            masked[start : start + window] = True
    return masked


@dataclass(frozen=True)
class BlastHit:
    """One reported alignment (tabular-output shape)."""

    query_id: str
    subject_id: str
    raw_score: float
    bit_score: float
    evalue: float
    identity: float
    align_length: int
    query_start: int
    query_end: int
    subject_start: int
    subject_end: int


def _encode(seq: str) -> np.ndarray:
    """Protein string to residue-index array; raises on unknown residues."""
    try:
        return np.array([_AA_INDEX[c] for c in seq], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(f"unknown amino acid {exc.args[0]!r}") from None


class BlastDatabase:
    """An in-memory protein database with a k-word index.

    ``memory_bytes`` reports the resident footprint (sequences + index),
    the quantity that has to fit in instance RAM for the paper's
    memory-sensitivity results.
    """

    def __init__(self, records: list[FastaRecord], word_size: int = 3):
        if not records:
            raise ValueError("database needs at least one sequence")
        self.word_size = word_size
        self.ids = [r.id for r in records]
        self.seqs = [r.seq for r in records]
        self.encoded = [_encode(r.seq) for r in records]
        self.total_residues = sum(len(s) for s in self.seqs)
        self.index: dict[bytes, list[tuple[int, int]]] = {}
        for seq_idx, enc in enumerate(self.encoded):
            as_bytes = enc.astype(np.uint8).tobytes()
            for pos in range(0, len(as_bytes) - word_size + 1):
                word = as_bytes[pos : pos + word_size]
                self.index.setdefault(word, []).append((seq_idx, pos))

    def __len__(self) -> int:
        return len(self.seqs)

    @property
    def memory_bytes(self) -> int:
        """Approximate resident footprint of sequences plus index."""
        seq_bytes = self.total_residues
        # Each posting is a (seq_idx, pos) tuple: dominated by list/tuple
        # overhead; 64 bytes is a fair CPython estimate.
        postings = sum(len(v) for v in self.index.values())
        return seq_bytes + 64 * postings


def _query_words(
    enc: np.ndarray, params: BlastParams
) -> list[tuple[int, bytes]]:
    """(position, word) probes for a query, optionally with neighbourhood.

    Positions inside low-complexity regions are skipped when filtering
    is enabled — they would otherwise seed floods of spurious hits.

    Scoring is vectorized: every candidate single-substitution variant
    of every window is scored in one broadcast against BLOSUM62, and
    probes are emitted in the same (position, word position,
    replacement) order the scalar loops used, so downstream diagonal
    bucketing sees an identical stream.
    """
    k = params.word_size
    n = len(enc)
    if n < k:
        return []
    base = enc.astype(np.uint8).tobytes()
    windows = np.lib.stride_tricks.sliding_window_view(enc, k)
    if params.low_complexity_filter is not None:
        masked = mask_low_complexity(enc, params.low_complexity_filter)
        allowed = ~np.lib.stride_tricks.sliding_window_view(masked, k).any(
            axis=1
        )
        positions = np.nonzero(allowed)[0]
    else:
        positions = np.arange(len(windows))
    if params.neighborhood_threshold is None:
        return [(pos, base[pos : pos + k]) for pos in positions.tolist()]

    # Neighbourhood: single-substitution variants scoring >= T against
    # the query word (true BLASTP admits any word >= T; one substitution
    # captures the overwhelming majority for k=3).  score[q, i, r] is
    # the exact self-score of window q with position i replaced by r.
    kept = windows[positions]  # (Q, k)
    diag = np.ascontiguousarray(np.diagonal(_BLOSUM62))
    self_scores = diag[kept]  # (Q, k)
    exact = self_scores.sum(axis=1)  # (Q,)
    scores = (
        exact[:, None, None] - self_scores[:, :, None] + _BLOSUM62[kept]
    )
    admit = scores >= params.neighborhood_threshold
    admit &= kept[:, :, None] != np.arange(len(AMINO_ACIDS))[None, None, :]
    # C-order nonzero == the scalar loop's (q, i, replacement) order.
    q_idx, i_idx, r_idx = np.nonzero(admit)
    variants = kept[q_idx].astype(np.uint8)
    variants[np.arange(len(q_idx)), i_idx] = r_idx
    variant_bytes = variants.tobytes()
    bounds = np.searchsorted(q_idx, np.arange(len(kept) + 1))
    probes: list[tuple[int, bytes]] = []
    for q, pos in enumerate(positions.tolist()):
        probes.append((pos, base[pos : pos + k]))
        for v in range(bounds[q], bounds[q + 1]):
            probes.append((pos, variant_bytes[v * k : (v + 1) * k]))
    return probes


def _ungapped_extend(
    query: np.ndarray,
    subject: np.ndarray,
    q_pos: int,
    s_pos: int,
    word_size: int,
    xdrop: float,
) -> tuple[int, int, int, int, float]:
    """X-drop extension along the diagonal.

    Returns (q_start, q_end, s_start, s_end, score) with end exclusive.
    """
    seed_score = float(
        _BLOSUM62[
            query[q_pos : q_pos + word_size], subject[s_pos : s_pos + word_size]
        ].sum()
    )
    # Both directions run as one batched scan each: gather the whole
    # diagonal's substitution scores, cumulative-sum them, and cut at
    # the first X-drop.  Every partial sum is a small integer, exactly
    # representable in float64, so this matches the scalar per-step
    # arithmetic bit for bit.
    # Extend right.
    best, best_right = _scan_extend(
        seed_score,
        seed_score,
        query[q_pos + word_size :],
        subject[s_pos + word_size :],
        xdrop,
    )
    # Extend left.
    best, best_left = _scan_extend(
        best,
        best,
        query[q_pos - 1 :: -1] if q_pos > 0 else query[:0],
        subject[s_pos - 1 :: -1] if s_pos > 0 else subject[:0],
        xdrop,
    )
    q_start = q_pos - best_left
    s_start = s_pos - best_left
    q_end = q_pos + word_size + best_right
    s_end = s_pos + word_size + best_right
    return q_start, q_end, s_start, s_end, best


def _scan_extend(
    start_score: float,
    best: float,
    query_tail: np.ndarray,
    subject_tail: np.ndarray,
    xdrop: float,
) -> tuple[float, int]:
    """One X-drop scan: walk paired residues accumulating from
    ``start_score``; returns (best score, steps to the best prefix).

    The stop rule reproduces the scalar loop exactly: the scan ends at
    the first step whose running score falls more than ``xdrop`` below
    the best seen so far (that step is still examined), and the
    reported best is the *first* maximum of the prefix walked.
    """
    steps = min(len(query_tail), len(subject_tail))
    if steps == 0:
        return best, 0
    running = start_score + np.cumsum(
        _BLOSUM62[query_tail[:steps], subject_tail[:steps]]
    )
    high_water = np.maximum.accumulate(running)
    np.maximum(high_water, start_score, out=high_water)
    drops = (high_water - running) > xdrop
    stop = int(np.argmax(drops)) if drops.any() else steps - 1
    walked = running[: stop + 1]
    peak = int(np.argmax(walked))
    if walked[peak] > best:
        return float(walked[peak]), peak + 1
    return best, 0


def _banded_sw(
    query: np.ndarray,
    subject: np.ndarray,
    diagonal: int,
    params: BlastParams,
) -> tuple[float, int, int, int, int, int, int]:
    """Banded Smith-Waterman around ``diagonal`` (= q_pos - s_pos).

    Returns (score, q_start, q_end, s_start, s_end, matches, align_len).
    Coordinates are 0-based, ends exclusive.

    Scalar DP over plain Python lists: at band width ~33 the per-row
    NumPy dispatch overhead beats any vectorization win (measured), so
    the kernel instead avoids per-cell ndarray indexing by pre-listing
    the sequences and the substitution rows.
    """
    band = params.band_width
    m, n = len(query), len(subject)
    lo_d = diagonal - band
    width = 2 * band + 1
    neg = -1e18
    gap = params.gap_penalty

    query_list = query.tolist()
    subject_list = subject.tolist()

    zeros_f = [0.0] * width
    zeros_i = [0] * width
    prev_score = list(zeros_f)
    prev_start_q = list(zeros_i)
    prev_start_s = list(zeros_i)
    prev_match = list(zeros_i)
    prev_len = list(zeros_i)

    best = 0.0
    best_cell = (0, 0)
    best_info = (0, 0, 0, 0)  # q_start, s_start, matches, length

    for j in range(n):
        s_res = subject_list[j]
        blosum_row = _BLOSUM62_LISTS[s_res]
        score = [neg] * width
        start_q = list(zeros_i)
        start_s = list(zeros_i)
        match = list(zeros_i)
        length = list(zeros_i)
        base = j + lo_d
        w_lo = max(0, -base)
        w_hi = min(width, m - base)
        for w in range(w_lo, w_hi):
            i = base + w
            q_res = query_list[i]
            sub = blosum_row[q_res]
            is_match = 1 if q_res == s_res else 0
            # Diagonal move (same w, previous j); restart if source dead.
            p_score = prev_score[w]
            if p_score <= 0.0 or prev_len[w] == 0:
                c_score = float(sub)
                c_q, c_s = i, j
                c_match = is_match
                c_len = 1
            else:
                c_score = p_score + sub
                c_q = prev_start_q[w]
                c_s = prev_start_s[w]
                c_match = prev_match[w] + is_match
                c_len = prev_len[w] + 1
            # Gap in subject (w-1, same row).
            if w > w_lo:
                up = score[w - 1] - gap
                if up > c_score:
                    c_score = up
                    c_q = start_q[w - 1]
                    c_s = start_s[w - 1]
                    c_match = match[w - 1]
                    c_len = length[w - 1] + 1
            # Gap in query (w+1, previous row).
            if w + 1 < width:
                left = prev_score[w + 1] - gap
                if left > c_score and prev_len[w + 1] > 0:
                    c_score = left
                    c_q = prev_start_q[w + 1]
                    c_s = prev_start_s[w + 1]
                    c_match = prev_match[w + 1]
                    c_len = prev_len[w + 1] + 1
            if c_score < 0:
                continue  # local restart; cell stays dead (neg)
            score[w] = c_score
            start_q[w] = c_q
            start_s[w] = c_s
            match[w] = c_match
            length[w] = c_len
            if c_score > best:
                best = c_score
                best_cell = (i + 1, j + 1)
                best_info = (c_q, c_s, c_match, c_len)
        prev_score = score
        prev_start_q = start_q
        prev_start_s = start_s
        prev_match = match
        prev_len = length

    q_start, s_start, matches, align_len = best_info
    q_end, s_end = best_cell
    return best, q_start, q_end, s_start, s_end, matches, align_len


def _evalue(raw_score: float, query_len: int, db_residues: int) -> tuple[float, float]:
    """Karlin-Altschul bit score and e-value."""
    bit = (_KA_LAMBDA * raw_score - float(np.log(_KA_K))) / _LN2
    evalue = _KA_K * query_len * db_residues * float(
        np.exp(-_KA_LAMBDA * raw_score)
    )
    return bit, evalue


def _search_one(
    query: FastaRecord, db: BlastDatabase, params: BlastParams
) -> list[BlastHit]:
    """Full pipeline for a single query."""
    enc = _encode(query.seq)
    k = params.word_size
    if len(enc) < k:
        return []
    # Stage 1+2: word hits grouped per (subject, diagonal); two-hit check.
    probes = _query_words(enc, params)
    by_diag: dict[tuple[int, int], list[tuple[int, int]]] = {}
    for q_pos, word in probes:
        for s_idx, s_pos in db.index.get(word, ()):
            by_diag.setdefault((s_idx, q_pos - s_pos), []).append((q_pos, s_pos))

    # Stage 3: ungapped X-drop extension of triggered diagonals; keep,
    # per subject, the best-scoring ungapped HSP.  Stage 4 (gapped,
    # expensive) then runs once per subject around that HSP's diagonal —
    # the classic BLAST strategy of gapping only the best seed.
    best_ungapped: dict[int, tuple[float, int]] = {}  # s_idx -> (score, diag)
    for (s_idx, diagonal), seeds in by_diag.items():
        seeds.sort()
        trigger = None
        if len(seeds) == 1:
            # Single-hit fallback for very short queries only.
            if len(enc) <= 2 * params.two_hit_window:
                trigger = seeds[0]
        else:
            for (q1, s1), (q2, s2) in zip(seeds, seeds[1:]):
                if 0 < q2 - q1 <= params.two_hit_window:
                    trigger = (q1, s1)
                    break
        if trigger is None:
            continue
        subject = db.encoded[s_idx]
        q_pos, s_pos = trigger
        ung = _ungapped_extend(
            enc, subject, q_pos, s_pos, k, params.xdrop_ungapped
        )
        if ung[4] < params.min_ungapped_score:
            continue
        current = best_ungapped.get(s_idx)
        if current is None or ung[4] > current[0]:
            best_ungapped[s_idx] = (ung[4], diagonal)

    hits: list[BlastHit] = []
    for s_idx, (_, diagonal) in best_ungapped.items():
        subject = db.encoded[s_idx]
        score, q_start, q_end, s_start, s_end, matches, align_len = _banded_sw(
            enc, subject, diagonal, params
        )
        if align_len == 0:
            continue
        bit, evalue = _evalue(score, len(enc), db.total_residues)
        if evalue > params.max_evalue:
            continue
        hits.append(
            BlastHit(
                query_id=query.id,
                subject_id=db.ids[s_idx],
                raw_score=score,
                bit_score=bit,
                evalue=evalue,
                identity=matches / align_len,
                align_length=align_len,
                query_start=q_start,
                query_end=q_end,
                subject_start=s_start,
                subject_end=s_end,
            )
        )
    return sorted(hits, key=lambda h: (-h.raw_score, h.subject_id))


def blast_search(
    queries: list[FastaRecord],
    db: BlastDatabase,
    params: BlastParams | None = None,
    num_threads: int = 1,
) -> dict[str, list[BlastHit]]:
    """Search every query against ``db``.

    Returns ``{query id: hits}`` preserving per-query hit order.  With
    ``num_threads > 1`` queries are distributed over a thread pool —
    the in-process analogue of ``blastp -num_threads``.
    """
    params = params or BlastParams()
    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    if num_threads == 1 or len(queries) <= 1:
        return {q.id: _search_one(q, db, params) for q in queries}
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        results = list(pool.map(lambda q: _search_one(q, db, params), queries))
    return {q.id: r for q, r in zip(queries, results)}
