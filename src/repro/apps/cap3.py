"""A miniature CAP3-style DNA sequence assembler.

Implements the pipeline the paper describes for CAP3 (Huang & Madan 1999)
at reduced scale but with every stage real:

1. **poor-region trimming** — clip low-quality ends (``N`` runs and
   lowercase bases, the conventional soft-mask for poor quality);
2. **overlap computation** — k-mer seeded suffix/prefix overlap detection
   between all read pairs, verified by vectorized identity scoring;
3. **false-overlap removal** — overlaps below the identity/score
   thresholds are rejected;
4. **layout** — greedy merging of the highest-scoring overlaps into
   read chains (contigs), avoiding branches and cycles; contained reads
   attach inside their container;
5. **consensus** — per-column majority vote over the layout produces the
   contig sequence.

The run time is genuinely content-dependent (overlap-dense files take
longer), which is exactly the inhomogeneity property the paper's
load-balancing experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.fasta import FastaRecord

__all__ = [
    "AssemblyResult",
    "Cap3Params",
    "Contig",
    "Overlap",
    "assemble",
    "reverse_complement",
    "trim_read",
]

_BASES = "ACGTN"
_BASE_INDEX = {base: i for i, base in enumerate(_BASES)}
_COMPLEMENT = str.maketrans("ACGTN", "TGCAN")
# Byte-level complement table for encoded arrays.
_COMPLEMENT_BYTES = np.arange(256, dtype=np.uint8)
for _src, _dst in zip(b"ACGTN", b"TGCAN"):
    _COMPLEMENT_BYTES[_src] = _dst


def reverse_complement(seq: str) -> str:
    """The reverse complement of a DNA sequence (N maps to N)."""
    return seq.translate(_COMPLEMENT)[::-1]


def _rc_array(arr: np.ndarray) -> np.ndarray:
    """Reverse complement of an encoded read."""
    return _COMPLEMENT_BYTES[arr][::-1]


@dataclass(frozen=True)
class Cap3Params:
    """Assembly thresholds (defaults loosely follow CAP3's)."""

    min_overlap: int = 30
    min_identity: float = 0.9
    kmer_size: int = 12
    seed_stride: int = 8  # spacing of seed probes along a read prefix
    max_seed_span: int = 64  # how deep into the prefix we look for seeds
    min_read_length: int = 40
    mismatch_penalty: float = 2.0
    handle_reverse_complements: bool = True

    def __post_init__(self) -> None:
        if self.min_overlap < self.kmer_size:
            raise ValueError("min_overlap must be >= kmer_size")
        if not 0.5 <= self.min_identity <= 1.0:
            raise ValueError("min_identity must be in [0.5, 1.0]")
        if self.kmer_size < 4:
            raise ValueError("kmer_size must be >= 4")
        if self.seed_stride < 1:
            raise ValueError("seed_stride must be >= 1")


@dataclass(frozen=True)
class Overlap:
    """A validated alignment of read ``b`` against read ``a``.

    ``a_start`` is the position in ``a`` where ``b`` begins.  When
    ``contained`` is True the whole of ``b`` lies within ``a``;
    otherwise this is a proper suffix(a)/prefix(b) overlap of
    ``length`` bases.
    """

    a: int
    b: int
    a_start: int
    length: int
    identity: float
    score: float
    contained: bool = False


@dataclass
class Contig:
    """An assembled contig: consensus plus its read layout.

    ``strands`` records each read's orientation in the layout: ``'+'``
    (as given) or ``'-'`` (reverse-complemented before placement).
    ``coverage`` is the per-consensus-position read depth.
    """

    id: str
    seq: str
    reads: list[tuple[str, int]] = field(default_factory=list)  # (read id, offset)
    strands: dict[str, str] = field(default_factory=dict)
    coverage: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int32))

    def __len__(self) -> int:
        return len(self.seq)

    def mean_coverage(self) -> float:
        """Average read depth over the consensus (0.0 if empty)."""
        return float(self.coverage.mean()) if len(self.coverage) else 0.0

    def min_coverage(self) -> int:
        """Weakest-link depth — 1 flags unconfirmed single-read spans."""
        return int(self.coverage.min()) if len(self.coverage) else 0


@dataclass
class AssemblyResult:
    """Output of :func:`assemble`."""

    contigs: list[Contig]
    singletons: list[FastaRecord]
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def n50(self) -> int:
        """Contig N50 (0 when there are no contigs)."""
        lengths = sorted((len(c) for c in self.contigs), reverse=True)
        if not lengths:
            return 0
        half = sum(lengths) / 2.0
        acc = 0
        for length in lengths:
            acc += length
            if acc >= half:
                return length
        return lengths[-1]


def trim_read(record: FastaRecord, min_length: int) -> FastaRecord | None:
    """Clip poor-quality ends; return None if too little survives.

    Poor quality is marked as ``N`` bases or lowercase (soft-masked)
    bases at either end of the read.  Interior soft-masked bases are
    uppercased and kept, matching CAP3's treatment of marginal calls;
    interior non-ACGT characters become ``N``.
    """
    seq = record.seq
    start, end = 0, len(seq)
    while start < end and (seq[start] in "Nn" or seq[start].islower()):
        start += 1
    while end > start and (seq[end - 1] in "Nn" or seq[end - 1].islower()):
        end -= 1
    trimmed = seq[start:end].upper()
    if len(trimmed) < min_length:
        return None
    if any(base not in _BASE_INDEX for base in trimmed):
        trimmed = "".join(
            base if base in _BASE_INDEX else "N" for base in trimmed
        )
    return FastaRecord(id=record.id, seq=trimmed, description=record.description)


def _encode(seq: str) -> np.ndarray:
    """Sequence as a byte array for vectorized comparisons."""
    return np.frombuffer(seq.encode("ascii"), dtype=np.uint8)


# Base-5 digit per ACGTN byte, for packed k-mer codes.
_KMER_DIGIT = np.zeros(256, dtype=np.int64)
for _i, _b in enumerate(b"ACGTN"):
    _KMER_DIGIT[_b] = _i


def _seed_keys(arr: np.ndarray, k: int) -> list:
    """Hashable key for every k-mer window of an encoded read.

    Windows are packed into base-5 integers in one vectorized matmul —
    injective for the post-trim ACGTN alphabet, so the codes stand in
    for the byte substrings the scalar version sliced out one by one.
    Falls back to byte slicing for k too large to pack into an int64.
    """
    if len(arr) < k:
        return []
    if k <= 27:  # 5**27 still fits in int64
        powers = 5 ** np.arange(k - 1, -1, -1, dtype=np.int64)
        windows = np.lib.stride_tricks.sliding_window_view(
            _KMER_DIGIT[arr], k
        )
        return (windows @ powers).tolist()
    seq_bytes = arr.tobytes()
    return [
        seq_bytes[pos : pos + k] for pos in range(len(seq_bytes) - k + 1)
    ]


def _seed_index(
    arrays: list[np.ndarray], k: int
) -> dict:
    """k-mer -> [(read index, position)] postings over every read."""
    index: dict = {}
    for read_idx, arr in enumerate(arrays):
        for pos, key in enumerate(_seed_keys(arr, k)):
            index.setdefault(key, []).append((read_idx, pos))
    return index


def _verify_overlap(
    a_idx: int,
    b_idx: int,
    a_arr: np.ndarray,
    b_arr: np.ndarray,
    a_start: int,
    params: Cap3Params,
) -> Overlap | None:
    """Score the alignment of ``b`` against ``a`` starting at ``a_start``."""
    length = min(len(a_arr) - a_start, len(b_arr))
    if length < params.min_overlap:
        return None
    a_slice = a_arr[a_start : a_start + length]
    b_slice = b_arr[:length]
    matches = int((a_slice == b_slice).sum())
    identity = matches / length
    if identity < params.min_identity:
        return None
    mismatches = length - matches
    score = matches - params.mismatch_penalty * mismatches
    contained = (a_start + len(b_arr)) <= len(a_arr)
    return Overlap(
        a=a_idx,
        b=b_idx,
        a_start=a_start,
        length=length,
        identity=identity,
        score=score,
        contained=contained,
    )


def _find_overlaps(
    arrays: list[np.ndarray], params: Cap3Params
) -> tuple[list[Overlap], int]:
    """All accepted pairwise overlaps via k-mer seeding.

    Returns the best overlap per ordered read pair and the number of
    candidate placements examined (a work measure the performance-model
    calibration uses).
    """
    k = params.kmer_size
    index = _seed_index(arrays, k)

    candidates = 0
    best: dict[tuple[int, int], Overlap] = {}
    for b_idx, b_arr in enumerate(arrays):
        b_keys = _seed_keys(b_arr, k)
        span = max(0, min(params.max_seed_span, len(b_keys)))
        probed: set[tuple[int, int]] = set()
        for s in range(0, span, params.seed_stride):
            seed = b_keys[s]
            for a_idx, a_pos in index.get(seed, ()):
                if a_idx == b_idx:
                    continue
                # A seed at b[s] matching a[a_pos] implies b begins at
                # a-coordinate a_pos - s.
                a_start = a_pos - s
                if a_start < 0:
                    continue
                key = (a_idx, a_start)
                if key in probed:
                    continue
                probed.add(key)
                candidates += 1
                overlap = _verify_overlap(
                    a_idx, b_idx, arrays[a_idx], b_arr, a_start, params
                )
                if overlap is None:
                    continue
                pair = (a_idx, b_idx)
                existing = best.get(pair)
                if existing is None or overlap.score > existing.score:
                    best[pair] = overlap
    return list(best.values()), candidates


def _orientation_edges(
    arrays: list[np.ndarray], params: Cap3Params
) -> list[tuple[int, int, bool]]:
    """Pairwise orientation constraints from both-strand seeding.

    Probes each read's prefix in forward *and* reverse-complement
    orientation against the forward index; an accepted placement yields
    an edge ``(a, b, same_orientation)``.
    """
    k = params.kmer_size
    index = _seed_index(arrays, k)

    edges: list[tuple[int, int, bool]] = []
    for b_idx, b_fwd in enumerate(arrays):
        for same, b_arr in ((True, b_fwd), (False, _rc_array(b_fwd))):
            b_keys = _seed_keys(b_arr, k)
            span = max(0, min(params.max_seed_span, len(b_keys)))
            probed: set[tuple[int, int]] = set()
            for s in range(0, span, params.seed_stride):
                seed = b_keys[s]
                for a_idx, a_pos in index.get(seed, ()):
                    if a_idx == b_idx:
                        continue
                    a_start = a_pos - s
                    key = (a_idx, a_start)
                    if key in probed:
                        continue
                    probed.add(key)
                    if a_start >= 0:
                        overlap = _verify_overlap(
                            a_idx, b_idx, arrays[a_idx], b_arr, a_start, params
                        )
                    else:
                        # b (in this orientation) starts before a: verify
                        # with the roles swapped — suffix(b) vs prefix(a).
                        overlap = _verify_overlap(
                            b_idx, a_idx, b_arr, arrays[a_idx], -a_start, params
                        )
                    if overlap is not None:
                        edges.append((a_idx, b_idx, same))
    return edges


def _resolve_orientations(
    n_reads: int, edges: list[tuple[int, int, bool]]
) -> tuple[list[bool], int]:
    """2-colour the parity graph: flip[i] says read i should be
    reverse-complemented.  Conflicting edges (odd cycles from chimeric
    overlaps) are counted and ignored."""
    adjacency: dict[int, list[tuple[int, bool]]] = {}
    for a, b, same in edges:
        adjacency.setdefault(a, []).append((b, same))
        adjacency.setdefault(b, []).append((a, same))
    flip = [False] * n_reads
    visited = [False] * n_reads
    conflicts = 0
    for start in range(n_reads):
        if visited[start]:
            continue
        visited[start] = True
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour, same in adjacency.get(node, ()):  # noqa: B023
                wanted = flip[node] if same else not flip[node]
                if not visited[neighbour]:
                    visited[neighbour] = True
                    flip[neighbour] = wanted
                    frontier.append(neighbour)
                elif flip[neighbour] != wanted:
                    conflicts += 1
    return flip, conflicts


def _greedy_layout(
    read_lengths: list[int], overlaps: list[Overlap]
) -> tuple[list[list[tuple[int, int]]], set[int]]:
    """Chain reads through their best overlaps.

    Returns ``(chains, used)``: each chain is a list of ``(read index,
    offset)`` in layout coordinates, and ``used`` is the set of placed
    read indices (including contained reads attached in a second pass).
    """
    n_reads = len(read_lengths)
    ranked = sorted(overlaps, key=lambda o: (-o.score, o.a, o.b))

    right_of: dict[int, tuple[int, int]] = {}  # a -> (b, a_start of b)
    left_taken: set[int] = set()
    parent = list(range(n_reads))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for ov in ranked:
        if ov.contained:
            continue
        if ov.a in right_of or ov.b in left_taken:
            continue
        if find(ov.a) == find(ov.b):
            continue  # would close a cycle
        right_of[ov.a] = (ov.b, ov.a_start)
        left_taken.add(ov.b)
        parent[find(ov.a)] = find(ov.b)

    chains: list[list[tuple[int, int]]] = []
    used: set[int] = set()
    offsets: dict[int, int] = {}
    chain_of: dict[int, int] = {}
    for head in range(n_reads):
        if head in left_taken or head not in right_of:
            continue
        chain: list[tuple[int, int]] = []
        offset = 0
        current: int | None = head
        while current is not None:
            chain.append((current, offset))
            used.add(current)
            offsets[current] = offset
            chain_of[current] = len(chains)
            nxt = right_of.get(current)
            if nxt is None:
                break
            successor, a_start = nxt
            offset += a_start
            current = successor
        chains.append(chain)

    # Second pass: attach contained reads inside their container.  A
    # container that joined no chain (e.g. identical duplicate reads,
    # pure-containment clusters) starts a fresh single-read chain first.
    for ov in ranked:
        if not ov.contained or ov.b in used:
            continue
        if ov.a not in used:
            if ov.a in left_taken or ov.a in right_of:
                continue  # shouldn't happen, but never split a chain
            chains.append([(ov.a, 0)])
            used.add(ov.a)
            offsets[ov.a] = 0
            chain_of[ov.a] = len(chains) - 1
        b_offset = offsets[ov.a] + ov.a_start
        chains[chain_of[ov.a]].append((ov.b, b_offset))
        used.add(ov.b)
        offsets[ov.b] = b_offset
        chain_of[ov.b] = chain_of[ov.a]
    return chains, used


def _consensus(
    chain: list[tuple[int, int]], arrays: list[np.ndarray]
) -> tuple[str, np.ndarray]:
    """Majority vote per column; returns (consensus, coverage depth)."""
    total_len = max(offset + len(arrays[idx]) for idx, offset in chain)
    counts = np.zeros((total_len, len(_BASES)), dtype=np.int32)
    base_lookup = np.full(256, _BASE_INDEX["N"], dtype=np.int64)
    for base, i in _BASE_INDEX.items():
        base_lookup[ord(base)] = i
    coverage = np.zeros(total_len, dtype=np.int32)
    for idx, offset in chain:
        arr = arrays[idx]
        codes = base_lookup[arr]
        np.add.at(counts, (np.arange(offset, offset + len(arr)), codes), 1)
        coverage[offset : offset + len(arr)] += 1
    # Real bases out-vote N wherever any read has coverage.
    counts[:, _BASE_INDEX["N"]] -= 1
    winners = counts.argmax(axis=1)
    consensus = (
        np.frombuffer(_BASES.encode("ascii"), dtype=np.uint8)[winners]
        .tobytes()
        .decode("ascii")
    )
    return consensus, coverage


def assemble(
    records: list[FastaRecord], params: Cap3Params | None = None
) -> AssemblyResult:
    """Assemble ``records`` into contigs.

    The full CAP3-style pipeline: trim, overlap, filter, layout,
    consensus.  Reads that join no contig are returned as singletons.
    """
    params = params or Cap3Params()
    stats: dict[str, float] = {"reads_in": len(records)}

    trimmed: list[FastaRecord] = []
    dropped = 0
    for record in records:
        kept = trim_read(record, params.min_read_length)
        if kept is None:
            dropped += 1
        else:
            trimmed.append(kept)
    stats["reads_dropped_in_trim"] = dropped
    stats["reads_after_trim"] = len(trimmed)

    arrays = [_encode(r.seq) for r in trimmed]

    # Orientation resolution: shotgun reads arrive on both strands.  A
    # 2-colouring of the overlap parity graph flips reads into one
    # consistent orientation before the forward-only pipeline runs.
    flips = [False] * len(arrays)
    if params.handle_reverse_complements and arrays:
        edges = _orientation_edges(arrays, params)
        flips, conflicts = _resolve_orientations(len(arrays), edges)
        stats["orientation_conflicts"] = conflicts
        stats["reads_flipped"] = sum(flips)
        arrays = [
            _rc_array(arr) if flipped else arr
            for arr, flipped in zip(arrays, flips)
        ]

    overlaps, candidates = _find_overlaps(arrays, params)
    stats["overlap_candidates"] = candidates
    stats["overlaps_accepted"] = len(overlaps)

    chains, used = _greedy_layout([len(a) for a in arrays], overlaps)

    contigs: list[Contig] = []
    for n, chain in enumerate(chains, start=1):
        seq, coverage = _consensus(chain, arrays)
        contigs.append(
            Contig(
                id=f"Contig{n}",
                seq=seq,
                reads=[(trimmed[idx].id, offset) for idx, offset in chain],
                strands={
                    trimmed[idx].id: "-" if flips[idx] else "+"
                    for idx, _ in chain
                },
                coverage=coverage,
            )
        )
    singletons = [trimmed[i] for i in range(len(trimmed)) if i not in used]
    stats["contigs"] = len(contigs)
    stats["singletons"] = len(singletons)
    stats["contig_bases"] = sum(len(c) for c in contigs)
    return AssemblyResult(contigs=contigs, singletons=singletons, stats=stats)
