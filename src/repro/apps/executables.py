"""File-in / file-out executable wrappers for the three applications.

The paper's framework contract: a task is one input file processed by an
existing sequential executable into one output file.  These classes wrap
the real algorithm implementations behind exactly that contract, so the
local execution backend schedules them the same way the EC2/Azure workers
schedule ``cap3``, ``blastp`` and the GTM interpolation binary.
"""

from __future__ import annotations

import abc
from pathlib import Path

import numpy as np

from repro.apps.blast import BlastDatabase, BlastParams, blast_search
from repro.apps.cap3 import Cap3Params, assemble
from repro.apps.fasta import FastaRecord, read_fasta, write_fasta
from repro.apps.gtm import GtmModel, gtm_interpolate

__all__ = [
    "BlastExecutable",
    "Cap3Executable",
    "Executable",
    "GtmInterpolationExecutable",
]


class Executable(abc.ABC):
    """The sequential-executable contract every framework schedules."""

    #: short program name (shows up in task logs and reports)
    name: str = "executable"

    @abc.abstractmethod
    def run(self, input_path: str | Path, output_path: str | Path) -> None:
        """Process one input file into one output file.

        Must be deterministic and idempotent: re-running a task (as the
        Classic Cloud framework does after a visibility timeout) must
        produce an identical output file.
        """


class Cap3Executable(Executable):
    """Assemble a file of reads into contigs (mini CAP3).

    Accepts FASTA input, or FASTQ (``.fq``/``.fastq``) in which case
    reads are quality-trimmed first — real CAP3 likewise consumes base
    qualities when available.  Output: a FASTA file containing the
    consensus contigs followed by the unassembled singleton reads,
    mirroring CAP3's ``.contigs`` + ``.singlets`` outputs merged into
    the single file the framework expects.
    """

    name = "cap3"

    def __init__(
        self,
        params: Cap3Params | None = None,
        quality_threshold: int = 20,
    ):
        self.params = params or Cap3Params()
        self.quality_threshold = quality_threshold

    def run(self, input_path: str | Path, output_path: str | Path) -> None:
        input_path = Path(input_path)
        if input_path.suffix.lower() in (".fq", ".fastq"):
            from repro.apps.fastq import quality_trim, read_fastq

            records = [
                trimmed
                for record in read_fastq(input_path)
                if (
                    trimmed := quality_trim(
                        record,
                        threshold=self.quality_threshold,
                        min_length=self.params.min_read_length,
                    )
                )
                is not None
            ]
        else:
            records = read_fasta(input_path)
        result = assemble(records, self.params)
        # Contigs first, then singletons, like cap3's two outputs.
        text_records = [
            FastaRecord(
                id=contig.id,
                seq=contig.seq,
                description=f"reads={len(contig.reads)}",
            )
            for contig in result.contigs
        ]
        text_records.extend(result.singletons)
        write_fasta(text_records, output_path)


class BlastExecutable(Executable):
    """Search a FASTA file of protein queries against a resident database.

    The database is loaded once at construction (the paper's workers
    download and extract the NR database at startup, before any tasks).
    Output: BLAST tabular format (``-outfmt 6``): query id, subject id,
    % identity, alignment length, e-value, bit score.
    """

    name = "blastp"

    def __init__(
        self,
        db: BlastDatabase,
        params: BlastParams | None = None,
        num_threads: int = 1,
    ):
        self.db = db
        self.params = params or BlastParams()
        self.num_threads = num_threads

    def run(self, input_path: str | Path, output_path: str | Path) -> None:
        queries = read_fasta(input_path)
        results = blast_search(
            queries, self.db, self.params, num_threads=self.num_threads
        )
        lines = []
        for query in queries:
            for hit in results[query.id]:
                lines.append(
                    "\t".join(
                        (
                            hit.query_id,
                            hit.subject_id,
                            f"{100.0 * hit.identity:.2f}",
                            str(hit.align_length),
                            f"{hit.evalue:.3g}",
                            f"{hit.bit_score:.1f}",
                        )
                    )
                )
        Path(output_path).write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="ascii"
        )


class GtmInterpolationExecutable(Executable):
    """Project a file of out-of-sample points through a trained GTM.

    Input: an ``.npz`` archive with a ``points`` array (the paper ships
    compressed data splits that are unzipped before processing — ``.npz``
    *is* the zip container here).  Output: a ``.npy`` of latent
    coordinates, orders of magnitude smaller than the input, matching the
    paper's observation about GTM output sizes.
    """

    name = "gtm-interpolate"

    def __init__(self, model: GtmModel, batch_size: int = 10_000):
        self.model = model
        self.batch_size = batch_size

    def run(self, input_path: str | Path, output_path: str | Path) -> None:
        with np.load(input_path) as archive:
            points = archive["points"]
        latent = gtm_interpolate(self.model, points, batch_size=self.batch_size)
        # Write through a handle: np.save(path) appends '.npy' to bare
        # paths, which would break atomic temp-file renames upstream.
        with open(output_path, "wb") as handle:
            np.save(handle, latent)
