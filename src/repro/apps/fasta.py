"""FASTA file reading and writing.

Both Cap3 and BLAST consume FASTA-formatted inputs (the paper's tasks are
"a single input file, a single output file").  This module implements the
format: ``>`` header lines carrying an identifier and optional free-text
description, followed by wrapped sequence lines.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

__all__ = ["FastaRecord", "parse_fasta", "read_fasta", "write_fasta"]

_LINE_WIDTH = 70


@dataclass(frozen=True)
class FastaRecord:
    """One sequence record."""

    id: str
    seq: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("FASTA record needs a non-empty id")
        if any(c.isspace() for c in self.seq):
            raise ValueError(f"sequence for {self.id!r} contains whitespace")

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def header(self) -> str:
        """The ``>`` line content (without the marker)."""
        return f"{self.id} {self.description}".strip()


def parse_fasta(stream: TextIO) -> Iterator[FastaRecord]:
    """Yield records from an open FASTA text stream.

    Raises ``ValueError`` on malformed input (sequence data before the
    first header, or an empty header line).
    """
    header: str | None = None
    chunks: list[str] = []
    for lineno, raw in enumerate(stream, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith(">"):
            if header is not None:
                yield _make_record(header, chunks)
            header = line[1:].strip()
            if not header:
                raise ValueError(f"empty FASTA header at line {lineno}")
            chunks = []
        else:
            if header is None:
                raise ValueError(
                    f"sequence data before any header at line {lineno}"
                )
            chunks.append(line)
    if header is not None:
        yield _make_record(header, chunks)


def _make_record(header: str, chunks: list[str]) -> FastaRecord:
    parts = header.split(None, 1)
    record_id = parts[0]
    description = parts[1] if len(parts) > 1 else ""
    return FastaRecord(id=record_id, seq="".join(chunks), description=description)


def read_fasta(path: str | Path) -> list[FastaRecord]:
    """Read every record from a FASTA file."""
    with open(path, "r", encoding="ascii") as handle:
        return list(parse_fasta(handle))


def write_fasta(
    records: Iterable[FastaRecord], path: str | Path | None = None
) -> str:
    """Write records in FASTA format.

    Returns the formatted text; also writes it to ``path`` if given.
    """
    buffer = io.StringIO()
    for record in records:
        buffer.write(f">{record.header}\n")
        seq = record.seq
        for start in range(0, max(len(seq), 1), _LINE_WIDTH):
            buffer.write(seq[start : start + _LINE_WIDTH])
            buffer.write("\n")
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="ascii")
    return text
