"""FASTQ reading/writing and quality-aware trimming.

Real CAP3 consumes base-quality files alongside FASTA; modern pipelines
ship FASTQ.  This module supports both: FASTQ parsing/writing (Sanger
Phred+33 encoding) and the standard sliding-window quality trim, which
converts a quality-scored read into the plain record the assembler's
pipeline consumes.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, TextIO

import numpy as np

from repro.apps.fasta import FastaRecord

__all__ = [
    "FastqRecord",
    "parse_fastq",
    "quality_trim",
    "read_fastq",
    "write_fastq",
]

_PHRED_OFFSET = 33


@dataclass(frozen=True)
class FastqRecord:
    """One sequenced read with per-base Phred qualities."""

    id: str
    seq: str
    qualities: tuple[int, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("FASTQ record needs a non-empty id")
        if len(self.qualities) != len(self.seq):
            raise ValueError(
                f"{self.id!r}: {len(self.qualities)} qualities for "
                f"{len(self.seq)} bases"
            )
        if any(q < 0 or q > 93 for q in self.qualities):
            raise ValueError("Phred qualities must be in 0..93")

    def __len__(self) -> int:
        return len(self.seq)

    @property
    def quality_string(self) -> str:
        """Phred+33 encoded quality line."""
        return "".join(chr(q + _PHRED_OFFSET) for q in self.qualities)

    def mean_quality(self) -> float:
        """Average Phred score (0.0 for empty reads)."""
        return float(np.mean(self.qualities)) if self.qualities else 0.0

    def to_fasta(self) -> FastaRecord:
        """Drop qualities."""
        return FastaRecord(id=self.id, seq=self.seq, description=self.description)


def parse_fastq(stream: TextIO) -> Iterator[FastqRecord]:
    """Yield records from an open FASTQ text stream.

    Strict four-line records: ``@header``, sequence, ``+``, qualities.
    """
    while True:
        header = stream.readline()
        if not header:
            return
        header = header.strip()
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"expected '@' header, got {header[:20]!r}")
        seq = stream.readline().strip()
        plus = stream.readline().strip()
        quals = stream.readline().strip()
        if not plus.startswith("+"):
            raise ValueError(f"expected '+' separator for {header!r}")
        if len(quals) != len(seq):
            raise ValueError(
                f"quality length {len(quals)} != sequence length "
                f"{len(seq)} for {header!r}"
            )
        parts = header[1:].split(None, 1)
        yield FastqRecord(
            id=parts[0],
            seq=seq,
            qualities=tuple(ord(c) - _PHRED_OFFSET for c in quals),
            description=parts[1] if len(parts) > 1 else "",
        )


def read_fastq(path: str | Path) -> list[FastqRecord]:
    """Read every record from a FASTQ file."""
    with open(path, "r", encoding="ascii") as handle:
        return list(parse_fastq(handle))


def write_fastq(
    records: Iterable[FastqRecord], path: str | Path | None = None
) -> str:
    """Write records in FASTQ format; returns (and optionally saves) text."""
    buffer = io.StringIO()
    for record in records:
        header = f"{record.id} {record.description}".strip()
        buffer.write(f"@{header}\n{record.seq}\n+\n{record.quality_string}\n")
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="ascii")
    return text


def quality_trim(
    record: FastqRecord,
    threshold: int = 20,
    window: int = 5,
    min_length: int = 40,
) -> FastaRecord | None:
    """Sliding-window quality trim; None if too little survives.

    From each end, drop bases while the mean quality of the ``window``
    at that end is below ``threshold`` — the standard read-cleaning
    procedure (e.g. Trimmomatic's SLIDINGWINDOW applied from both ends).
    The survivor is returned as a plain :class:`FastaRecord` for the
    assembler.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if not 0 <= threshold <= 93:
        raise ValueError("threshold must be a Phred score in 0..93")
    quals = np.asarray(record.qualities, dtype=np.float64)
    start, end = 0, len(quals)
    while start < end:
        segment = quals[start : min(start + window, end)]
        if segment.mean() >= threshold:
            break
        start += 1
    while end > start:
        segment = quals[max(end - window, start) : end]
        if segment.mean() >= threshold:
            break
        end -= 1
    # The window mean can stop with a couple of bad boundary bases left;
    # clean them up per base.
    while start < end and quals[start] < threshold:
        start += 1
    while end > start and quals[end - 1] < threshold:
        end -= 1
    if end - start < min_length:
        return None
    return FastaRecord(
        id=record.id,
        seq=record.seq[start:end].upper(),
        description=record.description,
    )
