"""Generative Topographic Mapping (GTM) and GTM Interpolation.

GTM (Bishop, Svensén & Williams 1998) models high-dimensional data ``T``
(N x D) as a noisy image of a low-dimensional latent grid: latent points
``x_k`` map through an RBF network ``y_k = Phi(x_k) W`` into data space,
with isotropic Gaussian noise of precision ``beta``.  Training is EM.

**GTM Interpolation** (Bae et al., HPDC 2010 — the paper's reference
[17]) is the out-of-sample extension this repository's target paper
benchmarks: train on a small *sample* set (here 100k of 26M PubChem
points), then project the remaining *out-of-sample* points by computing
their responsibilities against the fixed trained model and taking the
responsibility-weighted mean latent position.  Interpolation touches
every (point, latent-cell) pair once — a streaming, memory-bandwidth
bound computation, exactly the behaviour the paper's Section 6 analyses.

Everything is vectorized NumPy; interpolation processes points in batches
so the working set stays bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GtmModel", "gtm_interpolate", "gtm_responsibilities", "train_gtm"]


@dataclass
class GtmModel:
    """A trained GTM: everything interpolation needs."""

    latent_points: np.ndarray  # (K, L) latent grid
    rbf_centers: np.ndarray  # (M, L)
    rbf_width: float
    weights: np.ndarray  # (M + 1, D) mapping, last row is bias
    beta: float  # noise precision
    log_likelihoods: list[float]

    @property
    def n_latent(self) -> int:
        return self.latent_points.shape[0]

    @property
    def latent_dim(self) -> int:
        return self.latent_points.shape[1]

    @property
    def data_dim(self) -> int:
        return self.weights.shape[1]

    def basis(self, latent: np.ndarray) -> np.ndarray:
        """RBF design matrix with bias column for latent positions."""
        sq = _sqdist(latent, self.rbf_centers)
        phi = np.exp(-sq / (2.0 * self.rbf_width**2))
        return np.hstack([phi, np.ones((latent.shape[0], 1))])

    def projections(self) -> np.ndarray:
        """Data-space images of the latent grid: (K, D)."""
        return self.basis(self.latent_points) @ self.weights


def _sqdist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, (len(a), len(b))."""
    aa = np.sum(a * a, axis=1)[:, None]
    bb = np.sum(b * b, axis=1)[None, :]
    sq = aa + bb - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return sq


def _grid(points_per_dim: int, dim: int) -> np.ndarray:
    """A regular grid over [-1, 1]^dim, (points_per_dim**dim, dim)."""
    axes = [np.linspace(-1.0, 1.0, points_per_dim)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def train_gtm(
    data: np.ndarray,
    latent_dim: int = 2,
    latent_per_dim: int = 10,
    rbf_per_dim: int = 4,
    rbf_width_factor: float = 2.0,
    iterations: int = 30,
    regularization: float = 1e-3,
    seed: int = 0,
    tol: float = 1e-5,
) -> GtmModel:
    """Fit a GTM to ``data`` (N x D) with EM.

    Initialization follows Bishop et al.: the mapping starts from the
    PCA plane of the data, and ``beta`` from the residual variance.
    Training stops after ``iterations`` EM steps or when the mean
    log-likelihood improves by less than ``tol``.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape}")
    n_points, data_dim = data.shape
    if latent_dim < 1 or latent_dim > data_dim:
        raise ValueError(f"latent_dim {latent_dim} outside 1..{data_dim}")
    if n_points < 2:
        raise ValueError("need at least two data points")

    latent = _grid(latent_per_dim, latent_dim)
    centers = _grid(rbf_per_dim, latent_dim)
    # Width proportional to center spacing.
    spacing = 2.0 / max(rbf_per_dim - 1, 1)
    width = rbf_width_factor * spacing

    sq = _sqdist(latent, centers)
    phi = np.exp(-sq / (2.0 * width**2))
    phi = np.hstack([phi, np.ones((latent.shape[0], 1))])  # (K, M+1)
    n_basis = phi.shape[1]

    # PCA initialization of W: map latent axes onto principal axes.
    mean = data.mean(axis=0)
    centered = data - mean
    # Economy SVD: we only need the first latent_dim+1 components.
    _, svals, vt = np.linalg.svd(centered, full_matrices=False)
    scales = svals[:latent_dim] / np.sqrt(max(n_points - 1, 1))
    target = latent @ (vt[:latent_dim] * scales[:, None])  # (K, D)
    target = target + mean
    reg = regularization * np.eye(n_basis)
    weights = np.linalg.solve(phi.T @ phi + reg, phi.T @ target)

    projections = phi @ weights
    # Initial beta: inverse of the larger of the (latent_dim+1)-th PCA
    # eigenvalue and half the mean nearest-neighbour projection spacing.
    if latent_dim < len(svals):
        resid_var = float(svals[latent_dim] ** 2) / max(n_points - 1, 1)
    else:
        resid_var = float(centered.var())
    inter = _sqdist(projections, projections)
    np.fill_diagonal(inter, np.inf)
    nn = float(np.median(inter.min(axis=1))) / 2.0
    beta = 1.0 / max(resid_var, nn, 1e-12)

    del seed  # deterministic init; kept in the signature for API stability
    log_likelihoods: list[float] = []

    for _ in range(iterations):
        responsibilities, log_like = _e_step(data, projections, beta)
        log_likelihoods.append(log_like)
        # M step.
        g = responsibilities.sum(axis=1)  # (K,)
        lhs = (phi * g[:, None]).T @ phi + (regularization / beta) * np.eye(
            n_basis
        )
        rhs = phi.T @ (responsibilities @ data)
        weights = np.linalg.solve(lhs, rhs)
        projections = phi @ weights
        sq_dists = _sqdist(projections, data)
        beta = float(
            n_points * data_dim / max((responsibilities * sq_dists).sum(), 1e-300)
        )
        if (
            len(log_likelihoods) >= 2
            and abs(log_likelihoods[-1] - log_likelihoods[-2])
            < tol * abs(log_likelihoods[-2])
        ):
            break

    return GtmModel(
        latent_points=latent,
        rbf_centers=centers,
        rbf_width=width,
        weights=weights,
        beta=beta,
        log_likelihoods=log_likelihoods,
    )


def _e_step(
    data: np.ndarray, projections: np.ndarray, beta: float
) -> tuple[np.ndarray, float]:
    """Responsibilities (K x N) and mean log-likelihood."""
    n_points, data_dim = data.shape
    n_latent = projections.shape[0]
    sq = _sqdist(projections, data)  # (K, N)
    log_p = -0.5 * beta * sq
    log_p -= log_p.max(axis=0, keepdims=True)
    p = np.exp(log_p)
    denom = p.sum(axis=0, keepdims=True)
    responsibilities = p / denom
    # Mean log-likelihood (up to the constant shift we subtracted back in).
    log_norm = (
        0.5 * data_dim * np.log(beta / (2.0 * np.pi)) - np.log(n_latent)
    )
    shift = (-0.5 * beta * sq).max(axis=0)
    log_like = float(np.mean(np.log(denom.ravel()) + shift + log_norm))
    return responsibilities, log_like


def gtm_responsibilities(
    model: GtmModel, points: np.ndarray
) -> np.ndarray:
    """Posterior responsibilities (N x K) of latent cells for ``points``."""
    points = np.asarray(points, dtype=np.float64)
    projections = model.projections()
    sq = _sqdist(points, projections)  # (N, K)
    log_p = -0.5 * model.beta * sq
    log_p -= log_p.max(axis=1, keepdims=True)
    p = np.exp(log_p)
    p /= p.sum(axis=1, keepdims=True)
    return p


def gtm_interpolate(
    model: GtmModel,
    points: np.ndarray,
    batch_size: int = 10_000,
    projection: str = "mean",
) -> np.ndarray:
    """Project out-of-sample ``points`` (N x D) to latent space (N x L).

    ``projection='mean'`` (default) gives each point the responsibility-
    weighted mean of the latent grid — the posterior mean of Bae et al.
    ``projection='mode'`` gives the single most responsible latent grid
    point (Bishop's posterior mode), which preserves hard cluster
    boundaries at the cost of grid quantization.

    Points stream through in ``batch_size`` chunks so memory stays
    proportional to ``batch_size * K`` regardless of N.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    if points.shape[1] != model.data_dim:
        raise ValueError(
            f"points have dimension {points.shape[1]}, model expects "
            f"{model.data_dim}"
        )
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if projection not in ("mean", "mode"):
        raise ValueError(f"unknown projection {projection!r}")
    out = np.empty((points.shape[0], model.latent_dim))
    projections = model.projections()
    for start in range(0, points.shape[0], batch_size):
        chunk = points[start : start + batch_size]
        sq = _sqdist(chunk, projections)
        if projection == "mode":
            winners = sq.argmin(axis=1)  # max responsibility = min dist
            out[start : start + chunk.shape[0]] = model.latent_points[winners]
            continue
        log_p = -0.5 * model.beta * sq
        log_p -= log_p.max(axis=1, keepdims=True)
        p = np.exp(log_p)
        p /= p.sum(axis=1, keepdims=True)
        out[start : start + chunk.shape[0]] = p @ model.latent_points
    return out
