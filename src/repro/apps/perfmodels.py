"""Calibrated analytic performance models for the simulator.

The discrete-event simulator cannot run the real executables at the
paper's scale (thousands of core-hours), so each application carries a
:class:`TaskPerfModel` describing how one task's runtime decomposes on a
given machine:

``runtime = (cpu_work / clock / thread_speedup / os_speedup
            + mem_traffic / per-worker bandwidth share) * paging_penalty``

* **cpu work** scales inversely with clock rate — the paper's Cap3 story
  (compute-bound; HM4XL's 3.25 GHz cores fastest).
* **memory traffic** is served by the instance's memory bandwidth shared
  among concurrently running workers — the paper's GTM story ("platforms
  with less memory contention — fewer CPU cores sharing a single memory —
  performed better").
* **paging penalty** kicks in when the shared working set (e.g. BLAST's
  ~8.7 GB NR database) plus per-worker private sets exceed instance
  memory — the paper's BLAST story (Azure Large/XL beat Small/Medium;
  HCXL's 7 GB across 8 workers depressed EC2 efficiency).
* **os speedup** carries the paper's observation that Cap3 runs ~12.5 %
  faster on Windows.
* **thread speedup** models ``blastp -num_threads``: slightly less
  efficient than an equal number of worker processes (Figure 9).

Calibration constants were chosen so the single-core task times land in
the same range as the paper's Figures 4, 8 and 13; all comparisons in
EXPERIMENTS.md are about *shape*, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.instance_types import MachineModel

__all__ = ["APP_PERF_MODELS", "TaskPerfModel", "task_runtime_seconds"]


@dataclass(frozen=True)
class TaskPerfModel:
    """How one application's tasks consume a machine."""

    app_name: str
    unit: str  # what a work unit is ("read", "query", "kpoint")
    cpu_ghz_seconds_per_unit: float
    mem_bytes_per_unit: float
    shared_working_set_gb: float = 0.0  # e.g. a page-cache-shared database
    private_working_set_gb: float = 0.0  # per concurrently running worker
    supports_threads: bool = False
    thread_efficiency: float = 0.85  # marginal speedup per extra thread
    os_speedup: dict[str, float] = field(default_factory=dict)
    paging_slope: float = 0.6
    paging_threshold: float = 0.9  # memory pressure where thrash begins

    def __post_init__(self) -> None:
        if self.cpu_ghz_seconds_per_unit < 0 or self.mem_bytes_per_unit < 0:
            raise ValueError("work coefficients must be non-negative")
        if not 0.0 < self.thread_efficiency <= 1.0:
            raise ValueError("thread_efficiency must be in (0, 1]")

    def thread_speedup(self, threads: int) -> float:
        """Speedup from intra-task threads (1 thread -> 1.0)."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads == 1:
            return 1.0
        if not self.supports_threads:
            return 1.0
        return 1.0 + (threads - 1) * self.thread_efficiency

    def memory_pressure(self, machine: MachineModel, workers: int) -> float:
        """Working set as a fraction of instance memory."""
        total = (
            self.shared_working_set_gb
            + self.private_working_set_gb * max(workers, 1)
        )
        return total / machine.memory_gb

    def paging_penalty(self, machine: MachineModel, workers: int) -> float:
        """Runtime multiplier from exceeding instance memory (>= 1)."""
        pressure = self.memory_pressure(machine, workers)
        if pressure <= self.paging_threshold:
            return 1.0
        return 1.0 + self.paging_slope * (pressure - self.paging_threshold)


def task_runtime_seconds(
    model: TaskPerfModel,
    work_units: float,
    machine: MachineModel,
    concurrent_workers: int = 1,
    threads: int = 1,
    clock_ghz: float | None = None,
) -> float:
    """Seconds to run one task of ``work_units`` on ``machine``.

    ``concurrent_workers`` is how many workers share the instance while
    this task runs (determines the memory-bandwidth share and paging
    pressure).  ``clock_ghz`` overrides the catalog clock, e.g. to apply
    per-instance performance jitter.
    """
    if work_units < 0:
        raise ValueError("work_units must be non-negative")
    if concurrent_workers < 1:
        raise ValueError("concurrent_workers must be >= 1")
    clock = machine.clock_ghz if clock_ghz is None else clock_ghz
    os_factor = model.os_speedup.get(machine.os, 1.0)
    cpu_time = (
        work_units
        * model.cpu_ghz_seconds_per_unit
        / clock
        / model.thread_speedup(threads)
        / os_factor
    )
    bandwidth_share = machine.mem_bandwidth_gbps * 1e9 / concurrent_workers
    mem_time = work_units * model.mem_bytes_per_unit / bandwidth_share
    return (cpu_time + mem_time) * model.paging_penalty(
        machine, concurrent_workers
    )


# ---------------------------------------------------------------------------
# Calibrations.
#
# Cap3: compute-bound (the paper infers "memory is not a bottleneck...
# performance depends primarily on computational power").  One work unit
# is one read; a 200-read task takes ~48 s on a 2.5 GHz HCXL core, so the
# Figure 3/4 study (200 files, 16 cores) lands near the paper's scale.
# Windows executes Cap3 ~12.5 % faster (Section 4.2).
#
# BLAST: compute-heavy per query with a large *shared* working set — the
# ~8.7 GB NR database, mmap-shared across workers through the page cache —
# plus ~0.5 GB of private per-worker state.  One work unit is one query.
#
# GTM Interpolation: "highly memory intensive"; memory bandwidth is the
# bottleneck (Section 6).  One work unit is one thousand data points
# (a 100k-point task = 100 units).
# ---------------------------------------------------------------------------
APP_PERF_MODELS: dict[str, TaskPerfModel] = {
    "cap3": TaskPerfModel(
        app_name="cap3",
        unit="read",
        cpu_ghz_seconds_per_unit=0.60,
        mem_bytes_per_unit=1.0e6,
        private_working_set_gb=0.05,
        os_speedup={"windows": 1.125},
    ),
    "blast": TaskPerfModel(
        app_name="blast",
        unit="query",
        cpu_ghz_seconds_per_unit=11.0,
        mem_bytes_per_unit=1.5e8,
        shared_working_set_gb=8.7,
        private_working_set_gb=0.3,
        supports_threads=True,
        thread_efficiency=0.85,
        os_speedup={"windows": 1.05},
    ),
    "gtm": TaskPerfModel(
        app_name="gtm",
        unit="kpoint",
        cpu_ghz_seconds_per_unit=0.50,
        mem_bytes_per_unit=2.0e8,
        private_working_set_gb=0.3,
    ),
}
