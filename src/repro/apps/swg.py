"""Smith-Waterman-Gotoh pairwise distance (the paper's companion app).

Section 7: "we have also developed distributed pairwise sequence
alignment applications using MapReduce programming models" (Ekanayake,
Gunarathne, Qiu & Fox [13] — all-pairs Alu sequence clustering).  The
computation decomposes into pleasingly parallel *blocks* of the distance
matrix, each an independent file-in/file-out task — exactly the contract
every framework here schedules, so SWG doubles as the worked example of
registering a user application.

The alignment is a reference-grade Gotoh local alignment with affine
gaps over DNA; the pairwise distance is ``1 - identity`` over the local
alignment (the percent-identity distance of the companion paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.perfmodels import TaskPerfModel
from repro.core.task import TaskSpec

__all__ = [
    "SWG_PERF_MODEL",
    "SwgParams",
    "pairwise_distance",
    "swg_align",
    "swg_block_task_specs",
    "swg_distance_block",
]


@dataclass(frozen=True)
class SwgParams:
    """Alignment scoring (EMBOSS water-style defaults for DNA)."""

    match: float = 5.0
    mismatch: float = -4.0
    gap_open: float = 10.0
    gap_extend: float = 0.5

    def __post_init__(self) -> None:
        if self.match <= 0:
            raise ValueError("match score must be positive")
        if self.gap_open < 0 or self.gap_extend < 0:
            raise ValueError("gap penalties must be non-negative")


def swg_align(
    a: str, b: str, params: SwgParams | None = None
) -> tuple[float, int, int]:
    """Local alignment of two DNA strings (Gotoh, affine gaps).

    Returns ``(score, matches, alignment_length)`` of the optimal local
    alignment.  O(len(a) * len(b)) time, O(len(b)) memory.
    """
    params = params or SwgParams()
    if not a or not b:
        return 0.0, 0, 0
    m, n = len(a), len(b)
    neg = -1e18
    # Rolling rows; per cell we track (score, matches, length) so the
    # identity of the best local path falls out without a traceback.
    h_prev = np.zeros(n + 1)
    h_match_prev = np.zeros(n + 1, dtype=np.int64)
    h_len_prev = np.zeros(n + 1, dtype=np.int64)
    e_prev = np.full(n + 1, neg)
    e_match_prev = np.zeros(n + 1, dtype=np.int64)
    e_len_prev = np.zeros(n + 1, dtype=np.int64)

    best = 0.0
    best_matches = 0
    best_length = 0

    for i in range(1, m + 1):
        h_row = np.zeros(n + 1)
        h_match = np.zeros(n + 1, dtype=np.int64)
        h_len = np.zeros(n + 1, dtype=np.int64)
        e_row = np.full(n + 1, neg)
        e_match = np.zeros(n + 1, dtype=np.int64)
        e_len = np.zeros(n + 1, dtype=np.int64)
        f_score = neg
        f_matches = 0
        f_length = 0
        ai = a[i - 1]
        for j in range(1, n + 1):
            # E: gap in b (vertical).
            open_e = h_prev[j] - params.gap_open
            extend_e = e_prev[j] - params.gap_extend
            if open_e >= extend_e:
                e_row[j] = open_e
                e_match[j] = h_match_prev[j]
                e_len[j] = h_len_prev[j] + 1
            else:
                e_row[j] = extend_e
                e_match[j] = e_match_prev[j]
                e_len[j] = e_len_prev[j] + 1
            # F: gap in a (horizontal).
            open_f = h_row[j - 1] - params.gap_open
            extend_f = f_score - params.gap_extend
            if open_f >= extend_f:
                f_score = open_f
                f_matches = h_match[j - 1]
                f_length = h_len[j - 1] + 1
            else:
                f_score -= params.gap_extend
                f_length += 1
            # H: best of restart / diagonal / E / F.
            is_match = ai == b[j - 1]
            sub = params.match if is_match else params.mismatch
            diag = h_prev[j - 1] + sub
            score = 0.0
            matches = 0
            length = 0
            if diag >= score:
                score = diag
                matches = h_match_prev[j - 1] + (1 if is_match else 0)
                length = h_len_prev[j - 1] + 1
            if e_row[j] > score:
                score = e_row[j]
                matches = e_match[j]
                length = e_len[j]
            if f_score > score:
                score = f_score
                matches = f_matches
                length = f_length
            if score <= 0.0:
                score, matches, length = 0.0, 0, 0
            h_row[j] = score
            h_match[j] = matches
            h_len[j] = length
            if score > best:
                best = score
                best_matches = matches
                best_length = length
        h_prev, h_match_prev, h_len_prev = h_row, h_match, h_len
        e_prev, e_match_prev, e_len_prev = e_row, e_match, e_len
    return best, best_matches, best_length


def pairwise_distance(
    a: str, b: str, params: SwgParams | None = None
) -> float:
    """``1 - identity`` over the optimal local alignment (in [0, 1])."""
    _, matches, length = swg_align(a, b, params)
    if length == 0:
        return 1.0
    return 1.0 - matches / length


def swg_distance_block(
    group_a: list[str],
    group_b: list[str],
    params: SwgParams | None = None,
    symmetric: bool = False,
) -> np.ndarray:
    """A block of the all-pairs distance matrix.

    ``symmetric=True`` means both groups are the same diagonal slice:
    only the upper triangle is computed and mirrored, with a zero
    diagonal.
    """
    rows, cols = len(group_a), len(group_b)
    block = np.zeros((rows, cols))
    for i in range(rows):
        start = i + 1 if symmetric else 0
        for j in range(start, cols):
            block[i, j] = pairwise_distance(group_a[i], group_b[j], params)
    if symmetric:
        block = block + block.T
    return block


def swg_block_task_specs(
    n_sequences: int,
    block_size: int = 64,
    mean_length: int = 300,
    key_prefix: str = "swg",
) -> list[TaskSpec]:
    """Tasks for the upper-triangle blocks of an all-pairs matrix.

    Each block (i, j) with i <= j is one independent task; ``work_units``
    is its pair count (diagonal blocks hold n*(n-1)/2 pairs).
    """
    if n_sequences < 2:
        raise ValueError("need at least two sequences")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n_blocks = (n_sequences + block_size - 1) // block_size
    specs = []
    for bi in range(n_blocks):
        rows = min(block_size, n_sequences - bi * block_size)
        for bj in range(bi, n_blocks):
            cols = min(block_size, n_sequences - bj * block_size)
            if bi == bj:
                pairs = rows * (rows - 1) // 2
            else:
                pairs = rows * cols
            if pairs == 0:
                continue
            input_size = (rows + cols) * mean_length
            specs.append(
                TaskSpec(
                    task_id=f"{key_prefix}-{bi:03d}-{bj:03d}",
                    input_key=f"{key_prefix}/in/{bi:03d}_{bj:03d}.fa",
                    output_key=f"{key_prefix}/out/{bi:03d}_{bj:03d}.npy",
                    input_size=input_size,
                    output_size=rows * cols * 8,
                    work_units=float(pairs),
                )
            )
    return specs


# One work unit = one pairwise alignment of ~300 bp sequences
# (~90k DP cells).  CPU-bound, like Cap3.
SWG_PERF_MODEL = TaskPerfModel(
    app_name="swg",
    unit="pair",
    cpu_ghz_seconds_per_unit=0.02,
    mem_bytes_per_unit=2.0e5,
    private_working_set_gb=0.05,
)
