"""Elastic autoscaling for the Classic Cloud backends.

The paper's deployments are static; this package adds the elastic
worker-pool story on top of the same simulated substrate: scaling
policies (:mod:`~repro.autoscale.policies`), the per-run elasticity
contract (:class:`~repro.autoscale.plan.AutoscalePlan`), the in-sim
controller (:class:`~repro.autoscale.controller.AutoscaleController`)
and the cost-vs-makespan frontier study
(:func:`~repro.autoscale.study.autoscale_study`).

See ``docs/AUTOSCALING.md`` for the full design.
"""

from __future__ import annotations

from repro.autoscale.controller import AutoscaleController
from repro.autoscale.plan import AutoscalePlan
from repro.autoscale.policies import (
    DEFAULT_STEPS,
    ScalingStep,
    StepScalingPolicy,
    TargetTrackingPolicy,
    default_policy,
)

__all__ = [
    "AutoscaleController",
    "AutoscalePlan",
    "AutoscaleStudyRow",
    "DEFAULT_STEPS",
    "ScalingStep",
    "StepScalingPolicy",
    "TargetTrackingPolicy",
    "autoscale_study",
    "default_policy",
    "render_frontier",
    "serialize_rows",
]

_STUDY_EXPORTS = (
    "AutoscaleStudyRow",
    "autoscale_study",
    "render_frontier",
    "serialize_rows",
)


def __getattr__(name: str):
    # The study imports the Classic Cloud backends, which import this
    # package for AutoscalePlan — resolve study exports lazily to keep
    # that from becoming an import cycle.
    if name in _STUDY_EXPORTS:
        from repro.autoscale import study

        return getattr(study, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
