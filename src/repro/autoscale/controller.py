"""The :class:`AutoscaleController`: an elastic worker pool, in-sim.

The paper's deployments are static — "HCXL - 16 x 8" stays sixteen
instances from provisioning to teardown.  The controller replaces that
with the elastic shape modern clouds sell: it watches the scheduling
queue's backlog, asks an :mod:`~repro.autoscale.policies` policy for a
desired pool size once per evaluation interval, and provisions or drains
simulated instances mid-run, paying real boot latency
(:class:`~repro.cloud.compute.CloudProvider`) and honouring scale-up /
scale-down cooldowns.

When the plan's :class:`~repro.cloud.spot.BidStrategy` uses the spot
market, the controller also plays the market: a preemption watcher steps
the seeded :class:`~repro.cloud.spot.SpotPriceTrace` at its change
points and, the moment the price exceeds the bid, reclaims every spot
instance by interrupting its workers — exactly the
:class:`~repro.sim.engine.Interrupt` path fault-injected crashes use, so
a preempted worker's in-flight task message reappears after the
visibility timeout and another worker re-executes it.  Preemption
therefore never loses tasks; it only costs time.

Everything the controller does is driven by ``env.now`` and named RNG
streams, so a seed fully determines pool sizes, preemption times, and
the resulting bill.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autoscale.plan import AutoscalePlan
from repro.cloud.compute import CloudProvider, VmInstance
from repro.cloud.instance_types import InstanceType
from repro.cloud.queue import MessageQueue
from repro.cloud.spot import SpotPriceTrace
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment

__all__ = ["AutoscaleController"]


class AutoscaleController:
    """Drives one elastic pool for the lifetime of a run.

    The framework hands the controller callbacks instead of itself, so
    the controller stays ignorant of worker internals:

    * ``spawn_workers(instance)`` — start the configured workers on a
      freshly booted instance, returning their processes;
    * ``is_done()`` — True once every task is accounted for (the
      controller's background processes stop evaluating then).
    """

    def __init__(
        self,
        env: Environment,
        plan: AutoscalePlan,
        provider: CloudProvider,
        instance_type: InstanceType,
        workers_per_instance: int,
        task_queue: MessageQueue,
        spot_rng: np.random.Generator,
        spawn_workers: Callable[[VmInstance], list],
        is_done: Callable[[], bool],
    ):
        self.env = env
        self.plan = plan
        self.provider = provider
        self.instance_type = instance_type
        self.workers_per_instance = workers_per_instance
        self.task_queue = task_queue
        self.spawn_workers = spawn_workers
        self.is_done = is_done

        on_demand_price = instance_type.cost_per_hour
        self.trace: SpotPriceTrace | None = None
        self.bid_price = on_demand_price
        if plan.bid.uses_spot:
            self.trace = SpotPriceTrace(
                plan.spot_market, on_demand_price, spot_rng
            )
            self.bid_price = plan.bid.bid_price(on_demand_price)

        #: Every instance the controller ever launched, in launch order.
        self.pool: list[VmInstance] = []
        self._workers: dict[str, list] = {}  # instance_id -> processes
        self._last_scale_up = -float("inf")
        self._last_scale_down = -float("inf")

        # Outcome counters, reported through RunResult extras.
        self.preemptions = 0
        self.scale_up_events = 0
        self.scale_down_events = 0
        self.instances_added = 0
        self.instances_removed = 0
        self.spot_unavailable = 0
        self.peak_instances = 0

        obs = _current_obs()
        self._tracer = obs.tracer
        self._timeline = obs.timeline
        self._g_pool = obs.metrics.gauge("autoscale.pool_instances")
        self._g_spot = obs.metrics.gauge("autoscale.pool_spot_instances")
        self._g_backlog = obs.metrics.gauge("autoscale.backlog")
        self._c_preempt = obs.metrics.counter("autoscale.preemptions")
        self._c_added = obs.metrics.counter("autoscale.instances_added")
        self._c_removed = obs.metrics.counter("autoscale.instances_removed")
        self._c_unavailable = obs.metrics.counter("autoscale.spot_unavailable")

    # -- pool accounting -------------------------------------------------------
    def active_instances(self) -> list[VmInstance]:
        """Running, non-draining members of the pool (launch order)."""
        return [i for i in self.pool if i.is_running and not i.draining]

    def _update_gauges(self) -> None:
        active = self.active_instances()
        n_spot = sum(1 for i in active if i.market == "spot")
        if len(active) > self.peak_instances:
            self.peak_instances = len(active)
        self._g_pool.set(float(len(active)))
        self._g_spot.set(float(n_spot))
        now = self.env.now
        self._timeline.sample("autoscale.pool_instances", now, len(active))
        self._timeline.sample("autoscale.pool_spot_instances", now, n_spot)

    def track(self, instance: VmInstance, workers: list) -> None:
        """Adopt an externally provisioned instance and its workers."""
        if instance not in self.pool:
            self.pool.append(instance)
        self._workers[instance.instance_id] = list(workers)
        self._update_gauges()

    # -- provisioning ----------------------------------------------------------
    def _spot_price_now(self) -> float:
        assert self.trace is not None
        return self.trace.price_at(self.env.now)

    def _market_split(self, count: int) -> tuple[int, int]:
        """(n_spot, n_on_demand) for a request, after availability.

        Spot capacity is unavailable while the market price exceeds the
        bid; a mixed strategy falls back to on-demand for that portion,
        a pure-spot strategy simply gets fewer instances.
        """
        n_spot, n_od = self.plan.bid.split(count)
        if n_spot and self._spot_price_now() > self.bid_price:
            self.spot_unavailable += n_spot
            self._c_unavailable.inc(n_spot)
            if self.plan.bid.kind == "mixed":
                n_od += n_spot
            n_spot = 0
        return n_spot, n_od

    def _provision(self, count: int, market: str):
        """Boot ``count`` instances in one market (process)."""
        price = None
        if market == "spot":
            price = self._spot_price_now()
        batch = yield self.env.process(
            self.provider.provision(
                self.instance_type,
                count,
                market=market,
                price_per_hour=price,
                billing=self.plan.billing,
            )
        )
        return batch

    def launch_initial(self, count: int):
        """Boot the initial fleet (process); returns the instances.

        The initial fleet falls back to on-demand when the spot market
        is above bid — a run must be able to start.  Workers are spawned
        by the caller (the framework driver), which then adopts the
        instances via :meth:`track`.
        """
        count = self.plan.clamp(count)
        n_spot, n_od = self.plan.bid.split(count)
        if n_spot and self._spot_price_now() > self.bid_price:
            self.spot_unavailable += n_spot
            self._c_unavailable.inc(n_spot)
            n_od += n_spot
            n_spot = 0
        batches = []
        if n_od:
            batches.append(self.env.process(self._provision(n_od, "on-demand")))
        if n_spot:
            batches.append(self.env.process(self._provision(n_spot, "spot")))
        instances: list[VmInstance] = []
        for proc in batches:
            batch = yield proc
            instances.extend(batch)
        self.pool.extend(instances)
        return instances

    # -- background processes --------------------------------------------------
    def start(self) -> None:
        """Spawn the evaluation loop and (if bidding) the market watcher."""
        self.env.process(self._evaluate_loop(), name="autoscaler")
        if self.trace is not None:
            self.env.process(self._market_watcher(), name="spot-market")
        self._update_gauges()

    def _evaluate_loop(self):
        plan = self.plan
        while not self.is_done():
            yield self.env.timeout(plan.evaluation_interval_s)
            if self.is_done():
                return
            backlog = self.task_queue.approximate_size()
            self._g_backlog.set(float(backlog))
            self._timeline.sample("autoscale.backlog", self.env.now, backlog)
            active = self.active_instances()
            current = len(active)
            desired = plan.clamp(
                plan.policy.desired_instances(
                    backlog=backlog,
                    current_instances=current,
                    workers_per_instance=self.workers_per_instance,
                )
            )
            now = self.env.now
            if desired > current:
                if now - self._last_scale_up < plan.scale_up_cooldown_s:
                    continue
                yield from self._scale_up(desired - current)
            elif desired < current:
                if now - self._last_scale_down < plan.scale_down_cooldown_s:
                    continue
                self._scale_down(current - desired)

    def _scale_up(self, count: int):
        """Add ``count`` instances (runs inside the evaluation loop)."""
        n_spot, n_od = self._market_split(count)
        if n_spot + n_od == 0:
            return  # pure-spot above bid: retry next evaluation
        start = self.env.now
        batches = []
        if n_od:
            batches.append(self.env.process(self._provision(n_od, "on-demand")))
        if n_spot:
            batches.append(self.env.process(self._provision(n_spot, "spot")))
        fresh: list[VmInstance] = []
        for proc in batches:
            batch = yield proc
            fresh.extend(batch)
        for instance in fresh:
            self.pool.append(instance)
            self._workers[instance.instance_id] = list(
                self.spawn_workers(instance)
            )
        # The market may have moved above bid during the boot wait; the
        # provider cancels such launches immediately (watcher processes
        # only wake at price-change boundaries, so catch it here).
        if self.trace is not None and self._spot_price_now() > self.bid_price:
            for instance in fresh:
                if instance.market == "spot" and instance.is_running:
                    self._preempt(instance)
        self.scale_up_events += 1
        self.instances_added += len(fresh)
        self._c_added.inc(len(fresh))
        self._last_scale_up = self.env.now
        self._tracer.add(
            "autoscale.scale_up",
            track="autoscale",
            start=start,
            end=self.env.now,
            count=len(fresh),
            spot=n_spot,
            on_demand=n_od,
        )
        self._update_gauges()

    def _scale_down(self, count: int) -> None:
        """Drain the ``count`` newest instances (finish current tasks)."""
        victims = sorted(
            self.active_instances(),
            key=lambda i: (i.launched_at, i.instance_id),
        )[-count:]
        for instance in victims:
            instance.draining = True
            self.env.process(
                self._drainer(instance),
                name=f"drain-{instance.instance_id}",
            )
        self.scale_down_events += 1
        self.instances_removed += len(victims)
        self._c_removed.inc(len(victims))
        self._last_scale_down = self.env.now
        self._tracer.instant(
            "autoscale.scale_down",
            track="autoscale",
            count=len(victims),
        )
        self._update_gauges()

    def _drainer(self, instance: VmInstance):
        """Terminate a draining instance once its workers have exited."""
        while any(
            w.is_alive for w in self._workers.get(instance.instance_id, [])
        ):
            yield self.env.timeout(self.plan.drain_poll_s)
        if instance.is_running:
            self.provider.terminate(instance)
        self._update_gauges()

    # -- the spot market -------------------------------------------------------
    def _market_watcher(self):
        """Step the price trace; reclaim spot capacity bid below it."""
        assert self.trace is not None
        while not self.is_done():
            if self._spot_price_now() > self.bid_price:
                for instance in list(self.pool):
                    if instance.market == "spot" and instance.is_running:
                        self._preempt(instance)
                self._update_gauges()
            next_change = self.trace.next_change_after(self.env.now)
            yield self.env.timeout(next_change - self.env.now)

    def _preempt(self, instance: VmInstance) -> None:
        """Provider-initiated reclaim: kill workers mid-task, forgive
        the interrupted partial hour (hourly billing)."""
        for worker in self._workers.get(instance.instance_id, []):
            if worker.is_alive:
                worker.interrupt("spot-preempted")
        self.provider.terminate(instance, preempted=True)
        self.preemptions += 1
        self._c_preempt.inc()
        self._tracer.instant(
            "autoscale.preemption",
            track="autoscale",
            instance=instance.instance_id,
            price=self._spot_price_now(),
            bid=self.bid_price,
        )

    # -- reporting -------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Float extras for :class:`~repro.core.task.RunResult`."""
        spot_seconds = sum(
            i.uptime() for i in self.pool if i.market == "spot"
        )
        od_seconds = sum(
            i.uptime() for i in self.pool if i.market == "on-demand"
        )
        return {
            "autoscale_preemptions": float(self.preemptions),
            "autoscale_scale_up_events": float(self.scale_up_events),
            "autoscale_scale_down_events": float(self.scale_down_events),
            "autoscale_instances_added": float(self.instances_added),
            "autoscale_instances_removed": float(self.instances_removed),
            "autoscale_spot_unavailable": float(self.spot_unavailable),
            "autoscale_peak_instances": float(self.peak_instances),
            "autoscale_spot_seconds": float(spot_seconds),
            "autoscale_on_demand_seconds": float(od_seconds),
        }
