"""The :class:`AutoscalePlan`: one deployment's elasticity contract.

A plan is plain frozen data — exactly like
:class:`~repro.classiccloud.framework.ClassicCloudConfig`, which embeds
it — so autoscaled runs remain picklable sweep points and their results
remain content-addressable in the :mod:`repro.sweep` cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.autoscale.policies import StepScalingPolicy, TargetTrackingPolicy
from repro.cloud.spot import BidStrategy, SpotMarketModel

__all__ = ["AutoscalePlan"]


@dataclass(frozen=True)
class AutoscalePlan:
    """Everything the autoscale controller needs to run a pool.

    ``ClassicCloudConfig.n_instances`` becomes the *initial* pool size
    (clamped into ``[min_instances, max_instances]``); from then on the
    policy decides, the bid strategy says which market to buy from, and
    ``billing`` selects the accounting rule for every instance the
    controller manages (initial fleet included).
    """

    policy: "TargetTrackingPolicy | StepScalingPolicy" = field(
        default_factory=TargetTrackingPolicy
    )
    min_instances: int = 1
    max_instances: int = 16
    evaluation_interval_s: float = 30.0
    scale_up_cooldown_s: float = 60.0
    scale_down_cooldown_s: float = 120.0
    bid: BidStrategy = field(default_factory=BidStrategy.on_demand)
    spot_market: SpotMarketModel = field(default_factory=SpotMarketModel)
    billing: str = "hourly"  # "hourly" | "per-second"
    #: Seconds between liveness polls while draining a scaled-in
    #: instance (its workers finish their current task first).
    drain_poll_s: float = 1.0

    def __post_init__(self) -> None:
        if self.min_instances < 1:
            raise ValueError("min_instances must be >= 1")
        if self.max_instances < self.min_instances:
            raise ValueError("max_instances must be >= min_instances")
        if self.evaluation_interval_s <= 0:
            raise ValueError("evaluation_interval_s must be positive")
        if self.scale_up_cooldown_s < 0 or self.scale_down_cooldown_s < 0:
            raise ValueError("cooldowns must be non-negative")
        if self.billing not in ("hourly", "per-second"):
            raise ValueError(f"unknown billing mode {self.billing!r}")
        if self.drain_poll_s <= 0:
            raise ValueError("drain_poll_s must be positive")

    def clamp(self, n: int) -> int:
        """Force an instance count into the plan's bounds."""
        return max(self.min_instances, min(self.max_instances, n))

    @property
    def label(self) -> str:
        return f"{self.policy.label} / {self.bid.label}"
