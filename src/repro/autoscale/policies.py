"""Scaling policies: how many instances should the pool have *now*?

Both policies are plain frozen dataclasses (picklable, cache-
fingerprintable) evaluated by the
:class:`~repro.autoscale.controller.AutoscaleController` once per
evaluation interval against the scheduling-queue backlog — the natural
signal for the paper's task-farming architecture, where every pending
task is one queue message.

* :class:`TargetTrackingPolicy` — keep *backlog per worker* at a target
  (the AWS "target tracking" shape): the desired pool follows the queue
  depth directly, so it scales to zero pressure as the run drains.
* :class:`StepScalingPolicy` — threshold table over backlog per worker
  (the AWS "step scaling" shape): coarse, bounded adjustments per
  evaluation, slower to react but resistant to backlog noise.

The controller clamps every answer into the plan's
``[min_instances, max_instances]`` and applies scale-up/scale-down
cooldowns, so policies stay pure decision functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "ScalingStep",
    "StepScalingPolicy",
    "TargetTrackingPolicy",
    "default_policy",
]


@dataclass(frozen=True)
class TargetTrackingPolicy:
    """Track a target backlog (queued tasks) per worker.

    ``desired workers = ceil(backlog / target_backlog_per_worker)``,
    converted to instances by the deployment's workers-per-instance.
    """

    kind: str = field(default="target-tracking", init=False)
    target_backlog_per_worker: float = 2.0

    def __post_init__(self) -> None:
        if self.target_backlog_per_worker <= 0:
            raise ValueError("target_backlog_per_worker must be positive")

    def desired_instances(
        self,
        *,
        backlog: int,
        current_instances: int,
        workers_per_instance: int,
    ) -> int:
        """Instances wanted for ``backlog`` pending tasks."""
        if backlog <= 0:
            return 0
        workers = math.ceil(backlog / self.target_backlog_per_worker)
        return math.ceil(workers / workers_per_instance)

    @property
    def label(self) -> str:
        return f"target-tracking({self.target_backlog_per_worker:g}/worker)"


@dataclass(frozen=True)
class ScalingStep:
    """One row of a step-scaling table.

    Applies when the metric (backlog per worker) is at least
    ``lower_bound``; ``adjustment`` is added to the current instance
    count (negative rows scale in).
    """

    lower_bound: float
    adjustment: int


#: The default step table: aggressive growth under deep backlog, one
#: instance of decay when the queue is nearly drained.
DEFAULT_STEPS: tuple[ScalingStep, ...] = (
    ScalingStep(lower_bound=6.0, adjustment=4),
    ScalingStep(lower_bound=3.0, adjustment=2),
    ScalingStep(lower_bound=1.5, adjustment=1),
    ScalingStep(lower_bound=0.5, adjustment=0),
    ScalingStep(lower_bound=0.0, adjustment=-1),
)


@dataclass(frozen=True)
class StepScalingPolicy:
    """Threshold table over backlog per worker.

    Rows are evaluated highest ``lower_bound`` first; the first row
    whose bound the metric meets wins.  A metric below every bound
    leaves the pool unchanged.
    """

    kind: str = field(default="step", init=False)
    steps: tuple[ScalingStep, ...] = DEFAULT_STEPS

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("step policy needs at least one step")
        bounds = [s.lower_bound for s in self.steps]
        if any(b < 0 for b in bounds):
            raise ValueError("step lower bounds must be non-negative")
        if len(set(bounds)) != len(bounds):
            raise ValueError("step lower bounds must be distinct")

    def desired_instances(
        self,
        *,
        backlog: int,
        current_instances: int,
        workers_per_instance: int,
    ) -> int:
        """Current pool plus the matching step's adjustment."""
        workers = max(1, current_instances * workers_per_instance)
        metric = backlog / workers
        for step in sorted(
            self.steps, key=lambda s: s.lower_bound, reverse=True
        ):
            if metric >= step.lower_bound:
                return current_instances + step.adjustment
        return current_instances

    @property
    def label(self) -> str:
        return f"step({len(self.steps)} steps)"


def default_policy(name: str):
    """Build a policy from its CLI name."""
    if name == "target-tracking":
        return TargetTrackingPolicy()
    if name == "step":
        return StepScalingPolicy()
    raise KeyError(
        f"unknown autoscaling policy {name!r}; "
        "known: target-tracking, step"
    )
