"""The autoscaling cost-vs-makespan frontier study.

For each application (Cap3 / BLAST / GTM), scaling policy and spot
fraction, run one elastic deployment and record where it lands on the
cost-vs-makespan plane.  The paper's static deployments price
everything at on-demand rates; this study quantifies the trade the
spot market offers instead: spot-heavy pools are markedly cheaper but
slower and noisier, because every price spike above the bid preempts
their instances and the interrupted tasks must wait out the visibility
timeout before another worker re-executes them.

Every point routes through :mod:`repro.sweep` — the runs fan out over
worker processes and land in the content-addressed result cache — and
everything is seeded, so the same seed reproduces the same frontier
byte for byte, preemption timing included.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.autoscale.plan import AutoscalePlan
from repro.autoscale.policies import default_policy
from repro.cloud.failures import FaultPlan
from repro.cloud.spot import BidStrategy, SpotMarketModel
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.report import format_table
from repro.core.task import TaskSpec
from repro.sweep import point_for, run_points

__all__ = [
    "AutoscaleStudyRow",
    "STUDY_MARKET",
    "autoscale_study",
    "render_frontier",
    "serialize_rows",
]

#: The market the study (and its figure) plays: livelier than the
#: :class:`~repro.cloud.spot.SpotMarketModel` defaults so study-sized
#: runs reliably see price spikes — and therefore preemptions.
STUDY_MARKET = SpotMarketModel(spike_probability=0.25, interval_s=120.0)

DEFAULT_APPS = ("cap3", "blast", "gtm")
DEFAULT_POLICIES = ("target-tracking", "step")
DEFAULT_SPOT_FRACTIONS = (0.0, 0.5, 1.0)


@dataclass(frozen=True)
class AutoscaleStudyRow:
    """One elastic deployment's landing spot on the frontier."""

    app: str
    policy: str
    bid: str
    spot_fraction: float
    makespan_s: float
    total_cost: float
    amortized_cost: float
    preemptions: float
    spot_unavailable: float
    instances_added: float
    instances_removed: float
    peak_instances: float

    def to_dict(self) -> dict:
        return asdict(self)


def _tasks_for(app_name: str, n_files: int) -> list[TaskSpec]:
    if app_name == "cap3":
        from repro.workloads.genome import cap3_task_specs

        return cap3_task_specs(n_files, reads_per_file=400)
    if app_name == "blast":
        from repro.workloads.protein import blast_task_specs

        return blast_task_specs(n_files, inhomogeneous_base=False, seed=3)
    if app_name == "gtm":
        from repro.workloads.pubchem import gtm_task_specs

        return gtm_task_specs(n_files)
    raise KeyError(f"unknown study application {app_name!r}")


def autoscale_study(
    apps: Sequence[str] = DEFAULT_APPS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    spot_fractions: Iterable[float] = DEFAULT_SPOT_FRACTIONS,
    *,
    n_files: int = 128,
    n_instances: int = 2,
    max_instances: int = 8,
    seed: int = 17,
    market: SpotMarketModel = STUDY_MARKET,
    jobs: "int | None" = None,
    cache=None,
) -> list[AutoscaleStudyRow]:
    """Run the frontier sweep and return one row per deployment.

    Row order is the ``apps x policies x spot_fractions`` product
    order, never worker completion order.
    """
    grid = [
        (app_name, policy_name, float(fraction))
        for app_name in apps
        for policy_name in policies
        for fraction in spot_fractions
    ]
    points = []
    for app_name, policy_name, fraction in grid:
        plan = AutoscalePlan(
            policy=default_policy(policy_name),
            min_instances=1,
            max_instances=max_instances,
            bid=BidStrategy.mixed(fraction),
            spot_market=market,
        )
        backend = make_backend(
            "ec2",
            n_instances=n_instances,
            workers_per_instance=8,
            fault_plan=FaultPlan.none(),
            seed=seed,
            autoscale=plan,
        )
        points.append(
            point_for(
                get_application(app_name),
                backend,
                _tasks_for(app_name, n_files),
            )
        )
    results = run_points(points, jobs=jobs, cache=cache)
    rows = []
    for (app_name, policy_name, fraction), result in zip(grid, results):
        extras = result.extras
        rows.append(
            AutoscaleStudyRow(
                app=app_name,
                policy=policy_name,
                bid=BidStrategy.mixed(fraction).label,
                spot_fraction=fraction,
                makespan_s=result.makespan_s,
                total_cost=result.total_cost,
                amortized_cost=result.amortized_cost,
                preemptions=extras.get("autoscale_preemptions", 0.0),
                spot_unavailable=extras.get("autoscale_spot_unavailable", 0.0),
                instances_added=extras.get("autoscale_instances_added", 0.0),
                instances_removed=extras.get(
                    "autoscale_instances_removed", 0.0
                ),
                peak_instances=extras.get("autoscale_peak_instances", 0.0),
            )
        )
    return rows


def render_frontier(rows: Sequence[AutoscaleStudyRow]) -> str:
    """The frontier as a printable table (the figure surface)."""
    return format_table(
        ["app", "policy", "bid", "makespan (s)", "cost $", "amortized $",
         "preempt", "peak"],
        [
            [r.app, r.policy, r.bid, f"{r.makespan_s:,.0f}",
             f"{r.total_cost:.2f}", f"{r.amortized_cost:.2f}",
             f"{r.preemptions:.0f}", f"{r.peak_instances:.0f}"]
            for r in rows
        ],
        title="Autoscale study: cost vs makespan frontier",
    )


def serialize_rows(rows: Sequence[AutoscaleStudyRow]) -> str:
    """Canonical JSON for the frontier (the determinism surface)."""
    return json.dumps(
        [row.to_dict() for row in rows], sort_keys=True, indent=2
    )
