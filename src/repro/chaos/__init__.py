"""Deterministic fault injection and recovery (``repro.chaos``).

The paper's operational claim is that the classic-cloud pattern is
fault-tolerant *by construction* — visibility-timeout redelivery plus
idempotent re-execution.  This package stress-tests that claim
deterministically:

* :class:`ChaosPlan` / :class:`ChaosEvent` — a seeded schedule of
  worker crashes, spot preemption waves, queue misbehaviour windows,
  blob-store error windows and slow-node stragglers; the same seed
  compiles to a byte-identical event sequence.
* :class:`ChaosController` — plays a compiled plan against a live run
  through backend-agnostic hooks, emitting ``chaos``-track trace
  instants and timeline counters.
* :class:`RetryPolicy` / :func:`run_with_retry` — the mitigation side:
  budget-capped exponential backoff with full jitter for queue and
  storage clients.
* :class:`SpeculationPolicy` / :class:`BackupCopy` — Hadoop-style
  backup copies of slowest-percentile stragglers; first finisher wins,
  duplicates reconcile idempotently.
* :func:`chaos_study` — the campaign: sweep fault intensity against
  mitigation settings and report MTTR, redundant-work fraction,
  makespan inflation and goodput (``python -m repro chaos``).
"""

from repro.chaos.campaign import (
    CAMPAIGN_MITIGATIONS,
    ChaosStudyRow,
    chaos_study,
    mitigation_settings,
    render_resilience,
    serialize_rows,
)
from repro.chaos.injectors import ChaosController
from repro.chaos.plan import ChaosEvent, ChaosPlan
from repro.chaos.retry import RetryPolicy, run_with_retry
from repro.chaos.speculation import BackupCopy, SpeculationPolicy

__all__ = [
    "CAMPAIGN_MITIGATIONS",
    "BackupCopy",
    "ChaosController",
    "ChaosEvent",
    "ChaosPlan",
    "ChaosStudyRow",
    "RetryPolicy",
    "SpeculationPolicy",
    "chaos_study",
    "mitigation_settings",
    "render_resilience",
    "run_with_retry",
    "serialize_rows",
]
