"""The chaos campaign: fault intensity x mitigation resilience study.

For each application, fault intensity and mitigation setting, play one
Classic Cloud run under a seeded :class:`~repro.chaos.plan.ChaosPlan`
and measure what resilience cost: makespan inflation against the
fault-free baseline, mean time to recovery, the fraction of compute
spent on redundant (lost or duplicate) executions, and goodput.

Every cell routes through :mod:`repro.sweep` — points fan out over
worker processes and land in the content-addressed result cache — and
everything is seeded, so the same campaign reproduces the same report
byte for byte (``jobs=1`` and ``jobs=8`` included).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable, Sequence

from repro.chaos.plan import ChaosPlan
from repro.chaos.retry import RetryPolicy
from repro.chaos.speculation import SpeculationPolicy
from repro.core.report import format_table

__all__ = [
    "CAMPAIGN_MITIGATIONS",
    "ChaosStudyRow",
    "chaos_study",
    "mitigation_settings",
    "render_resilience",
    "serialize_rows",
]

#: The sweepable mitigation axis, least to most defended.
CAMPAIGN_MITIGATIONS = ("none", "retry", "speculation", "retry+speculation")

#: The campaign's retry stance: budget-capped exponential backoff with
#: full jitter on every queue/storage client.
CAMPAIGN_RETRY = RetryPolicy(
    attempts=6, base_delay_s=0.5, max_delay_s=15.0, jitter="full"
)

DEFAULT_APPS = ("cap3",)
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0)


def mitigation_settings(
    mitigation: str,
) -> "tuple[RetryPolicy | None, SpeculationPolicy | None]":
    """Map a mitigation label onto (retry_policy, speculation)."""
    if mitigation not in CAMPAIGN_MITIGATIONS:
        raise KeyError(
            f"unknown mitigation {mitigation!r}; "
            f"known: {CAMPAIGN_MITIGATIONS}"
        )
    retry = CAMPAIGN_RETRY if "retry" in mitigation else None
    speculation = (
        SpeculationPolicy() if "speculation" in mitigation else None
    )
    return retry, speculation


@dataclass(frozen=True)
class ChaosStudyRow:
    """One campaign cell: a deployment under one fault/mitigation mix."""

    app: str
    intensity: float
    mitigation: str
    makespan_s: float
    #: Makespan over the same app's fault-free unmitigated cell.
    makespan_inflation: float
    total_cost: float
    completed: float
    failed: float
    faults_injected: float
    mttr_s: float
    #: Fraction of total task-execution seconds spent on attempts whose
    #: result was discarded (redeliveries and losing backup copies).
    redundant_fraction: float
    speculative_launched: float
    speculative_wins: float
    #: Distinct completed tasks per simulated hour of makespan.
    goodput_tasks_per_hour: float

    def to_dict(self) -> dict:
        return asdict(self)


def _tasks_for(app_name: str, n_files: int):
    if app_name == "cap3":
        from repro.workloads.genome import cap3_task_specs

        return cap3_task_specs(n_files, reads_per_file=400)
    if app_name == "blast":
        from repro.workloads.protein import blast_task_specs

        return blast_task_specs(n_files, inhomogeneous_base=False, seed=3)
    if app_name == "gtm":
        from repro.workloads.pubchem import gtm_task_specs

        return gtm_task_specs(n_files)
    raise KeyError(f"unknown campaign application {app_name!r}")


def chaos_study(
    apps: Sequence[str] = DEFAULT_APPS,
    intensities: Iterable[float] = DEFAULT_INTENSITIES,
    mitigations: Sequence[str] = CAMPAIGN_MITIGATIONS,
    *,
    n_files: int = 48,
    n_instances: int = 2,
    workers_per_instance: int = 8,
    seed: int = 13,
    horizon_s: float = 240.0,
    jobs: "int | None" = None,
    cache=None,
) -> list[ChaosStudyRow]:
    """Run the campaign grid and return one row per cell.

    Row order is the ``apps x intensities x mitigations`` product order
    (with a fault-free unmitigated baseline cell prepended per app when
    the grid itself doesn't contain one), never worker completion
    order — a determinism requirement, like every study in this repo.
    """
    from repro.core.application import get_application
    from repro.core.backends import make_backend
    from repro.sweep import point_for, run_points

    grid = [
        (app_name, float(intensity), mitigation)
        for app_name in apps
        for intensity in intensities
        for mitigation in mitigations
    ]
    for app_name in apps:
        if (app_name, 0.0, "none") not in grid:
            grid.insert(0, (app_name, 0.0, "none"))

    points = []
    for app_name, intensity, mitigation in grid:
        retry, speculation = mitigation_settings(mitigation)
        chaos = (
            ChaosPlan.at_intensity(intensity, seed=seed, horizon_s=horizon_s)
            if intensity > 0
            else None
        )
        backend = make_backend(
            "ec2",
            n_instances=n_instances,
            workers_per_instance=workers_per_instance,
            seed=seed,
            chaos=chaos,
            retry_policy=retry,
            speculation=speculation,
        )
        points.append(
            point_for(
                get_application(app_name),
                backend,
                _tasks_for(app_name, n_files),
            )
        )
    results = run_points(points, jobs=jobs, cache=cache)

    baseline_makespan = {
        key[0]: result.makespan_s
        for key, result in zip(grid, results)
        if key[1] == 0.0 and key[2] == "none"
    }
    rows = []
    for (app_name, intensity, mitigation), result in zip(grid, results):
        extras = result.extras
        makespan = result.makespan_s
        baseline = baseline_makespan[app_name]
        completed = extras.get("tasks_completed", float(result.n_tasks))
        rows.append(
            ChaosStudyRow(
                app=app_name,
                intensity=intensity,
                mitigation=mitigation,
                makespan_s=makespan,
                makespan_inflation=(
                    makespan / baseline if baseline > 0 else 0.0
                ),
                total_cost=result.total_cost,
                completed=completed,
                failed=extras.get("tasks_failed", 0.0),
                faults_injected=extras.get("chaos_faults_injected", 0.0),
                mttr_s=extras.get("chaos_mttr_s", 0.0),
                redundant_fraction=extras.get("redundant_fraction", 0.0),
                speculative_launched=extras.get("speculative_launched", 0.0),
                speculative_wins=extras.get("speculative_wins", 0.0),
                goodput_tasks_per_hour=(
                    completed / (makespan / 3600.0) if makespan > 0 else 0.0
                ),
            )
        )
    return rows


def render_resilience(rows: Sequence[ChaosStudyRow]) -> str:
    """The resilience report as a printable table (the figure surface)."""
    return format_table(
        ["app", "intensity", "mitigation", "makespan (s)", "inflation",
         "faults", "MTTR (s)", "redundant", "spec win/launch",
         "goodput/h"],
        [
            [r.app, f"{r.intensity:.2f}", r.mitigation,
             f"{r.makespan_s:,.0f}", f"{r.makespan_inflation:.2f}x",
             f"{r.faults_injected:.0f}", f"{r.mttr_s:.1f}",
             f"{r.redundant_fraction:.1%}",
             f"{r.speculative_wins:.0f}/{r.speculative_launched:.0f}",
             f"{r.goodput_tasks_per_hour:,.0f}"]
            for r in rows
        ],
        title="Chaos campaign: fault intensity vs mitigation",
    )


def serialize_rows(rows: Sequence[ChaosStudyRow]) -> str:
    """Canonical JSON for the campaign (the determinism surface)."""
    return json.dumps(
        [row.to_dict() for row in rows], sort_keys=True, indent=2
    )
