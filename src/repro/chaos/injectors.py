"""The chaos controller: plays a compiled plan against one live run.

The controller owns no simulation objects — it is handed the queue and
storage clients plus callables that enumerate (and kill) the run's
workers and instances, so the same injector code layers over any
backend that exposes those hooks.  Victim selection is deterministic:
candidates are sorted by a stable key and indexed with the event's
compiled ``target``, so a seeded run replays the same casualties.

Every injection emits a sim-domain tracer instant on the ``chaos``
track and advances the ``chaos.faults`` timeline counter, which flow
through the existing Chrome-trace / report machinery unchanged.
"""

from __future__ import annotations

import math

from repro.chaos.plan import ChaosEvent, ChaosPlan
from repro.obs.context import current as _current_obs

__all__ = ["ChaosController"]


class ChaosController:
    """Schedules and applies a :class:`~repro.chaos.plan.ChaosPlan`."""

    def __init__(
        self,
        env,
        plan: ChaosPlan,
        *,
        queue=None,
        storage=None,
        instances=None,
        workers=None,
        crash_worker=None,
        restart_worker=None,
        preempt_instance=None,
        start_at: float = 0.0,
    ):
        """Wire the controller to one run.

        ``instances``/``workers`` are zero-argument callables returning
        the *current* candidates (live topology — autoscaled runs change
        theirs mid-flight).  ``crash_worker(process)`` interrupts one
        worker; ``restart_worker(process)`` starts its replacement;
        ``preempt_instance(instance)`` reclaims one instance including
        its workers.  Hooks left ``None`` turn the matching event kinds
        into no-ops (counted as skipped, never silently dropped).
        """
        self.env = env
        self.plan = plan
        self.queue = queue
        self.storage = storage
        self._instances = instances or (lambda: [])
        self._workers = workers or (lambda: [])
        self._crash_worker = crash_worker
        self._restart_worker = restart_worker
        self._preempt_instance = preempt_instance
        self.start_at = start_at
        obs = _current_obs()
        self._tracer = obs.tracer
        self._timeline = obs.timeline
        self._c_faults = obs.metrics.counter("chaos.faults")
        # Baselines for window restore, captured before any chaos runs.
        self._queue_baseline = (
            dict(
                miss_probability=queue.miss_probability,
                duplicate_probability=queue.duplicate_probability,
                delete_loss_probability=queue.delete_loss_probability,
                propagation_delay_s=queue.propagation_delay_s,
            )
            if queue is not None
            else {}
        )
        self._storage_baseline_error_rate = (
            storage.error_rate if storage is not None else 0.0
        )
        self.faults_injected = 0
        self.crashes = 0
        self.preemptions = 0
        self.queue_windows = 0
        self.storage_windows = 0
        self.slow_nodes = 0
        self.skipped = 0  # events with no live victim / missing hook

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Spawn the scheduler process (call once, at measure start)."""
        self.env.process(self._scheduler(), name="chaos-scheduler")

    def _scheduler(self):
        for event in self.plan.compile():
            fire_at = self.start_at + event.at_s
            if fire_at > self.env.now:
                yield self.env.timeout(fire_at - self.env.now)
            # Windowed faults run concurrently so an overlapping
            # schedule never delays the next event.
            if event.kind in ("queue_chaos", "storage_chaos", "slow_node"):
                self.env.process(
                    self._window(event), name=f"chaos-{event.kind}"
                )
            elif event.kind == "worker_crash":
                self.env.process(
                    self._crash(event), name="chaos-worker-crash"
                )
            elif event.kind == "preemption_wave":
                self._preemption_wave(event)
            else:
                raise ValueError(f"unknown chaos event kind {event.kind!r}")

    # -- bookkeeping -------------------------------------------------------
    def _record(self, event: ChaosEvent, **args) -> None:
        self.faults_injected += 1
        self._c_faults.inc()
        self._timeline.sample(
            "chaos.faults", self.env.now, self.faults_injected
        )
        self._tracer.instant(
            f"chaos.{event.kind}",
            track="chaos",
            ts=self.env.now,
            magnitude=event.magnitude,
            duration_s=event.duration_s,
            **args,
        )

    def _skip(self) -> None:
        self.skipped += 1

    # -- injectors ---------------------------------------------------------
    def _crash(self, event: ChaosEvent):
        if self._crash_worker is None:
            self._skip()
            return
        victims = sorted(self._workers(), key=lambda p: p.name)
        if not victims:
            self._skip()
            return
        victim = victims[event.target % len(victims)]
        self.crashes += 1
        self._record(event, worker=victim.name)
        self._crash_worker(victim)
        if self.plan.crash_restart_s is not None:
            yield self.env.timeout(self.plan.crash_restart_s)
            if self._restart_worker is not None:
                self._restart_worker(victim)

    def _preemption_wave(self, event: ChaosEvent) -> None:
        if self._preempt_instance is None:
            self._skip()
            return
        pool = sorted(self._instances(), key=lambda i: i.instance_id)
        if not pool:
            self._skip()
            return
        count = max(1, math.ceil(event.magnitude * len(pool)))
        start = event.target % len(pool)
        victims = [pool[(start + k) % len(pool)] for k in range(count)]
        self.preemptions += len(victims)
        self._record(
            event,
            count=len(victims),
            instances=",".join(str(i.instance_id) for i in victims),
        )
        for instance in victims:
            self._preempt_instance(instance)

    def _window(self, event: ChaosEvent):
        if event.kind == "queue_chaos":
            if self.queue is None:
                self._skip()
                return
            self.queue_windows += 1
            self._record(event)
            plan, queue = self.plan, self.queue
            queue.miss_probability = plan.queue_miss_probability
            queue.duplicate_probability = plan.queue_duplicate_probability
            queue.delete_loss_probability = (
                plan.queue_delete_loss_probability
            )
            queue.propagation_delay_s = (
                self._queue_baseline["propagation_delay_s"]
                + plan.queue_extra_delay_s
            )
            yield self.env.timeout(event.duration_s)
            for name, value in self._queue_baseline.items():
                setattr(queue, name, value)
        elif event.kind == "storage_chaos":
            if self.storage is None:
                self._skip()
                return
            self.storage_windows += 1
            self._record(event)
            self.storage.error_rate = event.magnitude
            yield self.env.timeout(event.duration_s)
            self.storage.error_rate = self._storage_baseline_error_rate
        elif event.kind == "slow_node":
            pool = sorted(self._instances(), key=lambda i: i.instance_id)
            if not pool:
                self._skip()
                return
            victim = pool[event.target % len(pool)]
            self.slow_nodes += 1
            self._record(event, instance=victim.instance_id)
            healthy = victim.speed_factor
            victim.speed_factor = healthy * event.magnitude
            yield self.env.timeout(event.duration_s)
            victim.speed_factor = healthy

    # -- reporting ---------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Float extras for :class:`~repro.core.task.RunResult`."""
        return {
            "chaos_faults_injected": float(self.faults_injected),
            "chaos_crashes": float(self.crashes),
            "chaos_preemptions": float(self.preemptions),
            "chaos_queue_windows": float(self.queue_windows),
            "chaos_storage_windows": float(self.storage_windows),
            "chaos_slow_nodes": float(self.slow_nodes),
            "chaos_skipped": float(self.skipped),
        }
