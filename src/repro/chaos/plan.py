"""Seeded chaos plans: a deterministic schedule of injected faults.

A :class:`ChaosPlan` describes *how much* of each fault family a run
should suffer; :meth:`ChaosPlan.compile` turns it into the concrete,
time-sorted tuple of :class:`ChaosEvent` the injector plays back.
Compilation is a pure function of the plan's fields (its own ``seed``
included), so the same plan always yields a byte-identical event
sequence — :meth:`ChaosPlan.events_json` is the canonical serialization
tests pin.

Fault families (one event ``kind`` each):

* ``worker_crash`` — kill one worker process mid-whatever, optionally
  restarting a replacement on the same instance after
  ``crash_restart_s``;
* ``preemption_wave`` — reclaim a fraction of the running instances at
  once (a spot-market price spike), interrupting every worker on them;
* ``queue_chaos`` — a window of queue misbehaviour: elevated empty
  receives (loss), duplicate deliveries, lost deletes (the delete
  request drops, so the message reappears) and extra propagation delay;
* ``storage_chaos`` — a window of elevated retryable 5xx errors on the
  blob store;
* ``slow_node`` — one instance degrades to ``slow_factor`` of its
  clock for a window (the classic gray-failure straggler).

Magnitudes are scaled by :meth:`ChaosPlan.at_intensity`, the campaign's
single-knob sweep axis.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace

import numpy as np

__all__ = ["ChaosEvent", "ChaosPlan"]


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault, in simulated seconds from the measured start.

    ``target`` is an abstract selector the injector maps onto a live
    victim (``target % len(candidates)`` over a deterministically
    ordered candidate list), so compilation needs no knowledge of the
    deployment shape.  ``magnitude`` is kind-specific: preempted
    fraction, error/loss probability, slowdown factor or extra delay.
    """

    at_s: float
    kind: str
    target: int = 0
    duration_s: float = 0.0
    magnitude: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ChaosPlan:
    """Everything the chaos controller will do to one run."""

    seed: int = 0
    #: Faults are scheduled uniformly inside ``[0, horizon_s)`` of the
    #: measured window; events landing after the run ends simply never
    #: fire (the run outlived the chaos).
    horizon_s: float = 3600.0

    worker_crashes: int = 0
    crash_restart_s: float | None = 30.0

    preemption_waves: int = 0
    preemption_fraction: float = 0.25

    queue_chaos_windows: int = 0
    queue_window_s: float = 120.0
    queue_miss_probability: float = 0.10
    queue_duplicate_probability: float = 0.05
    queue_delete_loss_probability: float = 0.05
    queue_extra_delay_s: float = 0.5

    storage_chaos_windows: int = 0
    storage_window_s: float = 120.0
    storage_error_rate: float = 0.25

    slow_nodes: int = 0
    slow_window_s: float = 600.0
    slow_factor: float = 0.25  # multiplier on the victim's clock

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        for name in (
            "worker_crashes",
            "preemption_waves",
            "queue_chaos_windows",
            "storage_chaos_windows",
            "slow_nodes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0.0 < self.preemption_fraction <= 1.0:
            raise ValueError("preemption_fraction must be in (0, 1]")
        if not 0.0 < self.slow_factor <= 1.0:
            raise ValueError("slow_factor must be in (0, 1]")

    @property
    def total_events(self) -> int:
        return (
            self.worker_crashes
            + self.preemption_waves
            + self.queue_chaos_windows
            + self.storage_chaos_windows
            + self.slow_nodes
        )

    @staticmethod
    def at_intensity(
        intensity: float, seed: int = 0, horizon_s: float = 3600.0
    ) -> "ChaosPlan":
        """The campaign's one-knob preset.

        ``intensity`` 0 is a fault-free plan; 1.0 is the nightly-CI
        default (crashes, a preemption wave, queue/storage windows and
        a straggler); values above 1 scale event counts and window
        magnitudes further.
        """
        if intensity < 0:
            raise ValueError("intensity must be non-negative")
        scale = float(intensity)
        return ChaosPlan(
            seed=seed,
            horizon_s=horizon_s,
            worker_crashes=round(3 * scale),
            preemption_waves=round(1 * scale),
            queue_chaos_windows=round(1 * scale),
            queue_miss_probability=min(0.5, 0.10 * scale),
            queue_duplicate_probability=min(0.5, 0.05 * scale),
            queue_delete_loss_probability=min(0.5, 0.05 * scale),
            storage_chaos_windows=round(1 * scale),
            storage_error_rate=min(0.8, 0.25 * scale),
            slow_nodes=round(1 * scale),
        )

    def scaled(self, factor: float) -> "ChaosPlan":
        """A copy with every event count multiplied by ``factor``."""
        return replace(
            self,
            worker_crashes=round(self.worker_crashes * factor),
            preemption_waves=round(self.preemption_waves * factor),
            queue_chaos_windows=round(self.queue_chaos_windows * factor),
            storage_chaos_windows=round(self.storage_chaos_windows * factor),
            slow_nodes=round(self.slow_nodes * factor),
        )

    def compile(self) -> tuple[ChaosEvent, ...]:
        """The concrete event schedule, sorted by fire time.

        Pure: depends only on the plan's fields.  Events of each family
        are drawn in a fixed family order from one ``PCG64`` stream
        seeded by ``self.seed``, then globally sorted by ``(at_s, kind,
        target)`` — a total order, so ties cannot reorder between runs.
        """
        rng = np.random.default_rng(self.seed)
        events: list[ChaosEvent] = []

        def times(n: int) -> list[float]:
            return sorted(
                float(t) for t in rng.uniform(0.0, self.horizon_s, size=n)
            )

        for at_s in times(self.worker_crashes):
            events.append(
                ChaosEvent(
                    at_s=at_s,
                    kind="worker_crash",
                    target=int(rng.integers(1 << 30)),
                )
            )
        for at_s in times(self.preemption_waves):
            events.append(
                ChaosEvent(
                    at_s=at_s,
                    kind="preemption_wave",
                    target=int(rng.integers(1 << 30)),
                    magnitude=self.preemption_fraction,
                )
            )
        for at_s in times(self.queue_chaos_windows):
            events.append(
                ChaosEvent(
                    at_s=at_s,
                    kind="queue_chaos",
                    duration_s=self.queue_window_s,
                    magnitude=self.queue_miss_probability,
                )
            )
        for at_s in times(self.storage_chaos_windows):
            events.append(
                ChaosEvent(
                    at_s=at_s,
                    kind="storage_chaos",
                    duration_s=self.storage_window_s,
                    magnitude=self.storage_error_rate,
                )
            )
        for at_s in times(self.slow_nodes):
            events.append(
                ChaosEvent(
                    at_s=at_s,
                    kind="slow_node",
                    target=int(rng.integers(1 << 30)),
                    duration_s=self.slow_window_s,
                    magnitude=self.slow_factor,
                )
            )
        events.sort(key=lambda e: (e.at_s, e.kind, e.target))
        return tuple(events)

    def events_json(self) -> str:
        """Canonical JSON of the compiled schedule (the determinism
        surface: same plan, same bytes)."""
        return json.dumps(
            [event.to_dict() for event in self.compile()],
            sort_keys=True,
            indent=2,
        )
