"""Budget-capped retry with exponential backoff and full jitter.

The mitigation half of :mod:`repro.chaos`: cloud clients that retry
forever hide faults from the operator (and from the makespan) at the
cost of unbounded tail latency, while clients that retry in lockstep
synchronize into retry storms.  A :class:`RetryPolicy` bounds both — a
hard attempt budget, exponential spacing, and *full jitter* (each delay
drawn uniformly from ``[0, cap)``, the AWS architecture-blog
recommendation) so retries from different workers decorrelate.

Policies are frozen dataclasses: picklable, fingerprintable by
:mod:`repro.sweep`, and safe to share between workers.  All randomness
comes from the caller-supplied ``numpy`` generator, so a seeded run
replays the same delays byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator

__all__ = ["RetryPolicy", "run_with_retry"]


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries a failing request.

    ``attempts`` is the total budget *including* the first try; when it
    is exhausted the **original error propagates** — a policy never
    swallows or rewraps the failure it could not outwait.  ``jitter``
    selects the delay shape: ``"full"`` draws each delay uniformly from
    ``[0, cap)`` where ``cap = min(max_delay_s, base_delay_s *
    multiplier**(attempt-1))``; ``"none"`` uses the cap itself
    (deterministic, used where legacy fixed-interval timing must be
    preserved exactly).
    """

    attempts: int = 5
    base_delay_s: float = 0.5
    max_delay_s: float = 30.0
    multiplier: float = 2.0
    jitter: str = "full"  # "full" | "none"

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.jitter not in ("full", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")

    def cap_s(self, attempt: int) -> float:
        """The backoff ceiling before the ``attempt``-th retry (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        return min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (attempt - 1),
        )

    def backoff_s(self, attempt: int, rng=None) -> float:
        """Delay before the ``attempt``-th retry.

        ``rng`` (a ``numpy.random.Generator``) is required for
        ``jitter="full"`` and ignored for ``jitter="none"`` — so a
        no-jitter policy consumes no random draws, leaving every other
        stream of a seeded run untouched.
        """
        cap = self.cap_s(attempt)
        if self.jitter == "none":
            return cap
        if rng is None:
            raise ValueError("jitter='full' needs an rng")
        return float(rng.uniform(0.0, cap))

    @staticmethod
    def fixed(attempts: int, delay_s: float) -> "RetryPolicy":
        """A constant-interval, no-jitter policy.

        Reproduces legacy fixed-poll retry loops (e.g. the workers'
        historical 241 x 0.5 s eventual-consistency download loop)
        under the policy interface, byte-identical in timing and RNG
        consumption.
        """
        return RetryPolicy(
            attempts=attempts,
            base_delay_s=delay_s,
            max_delay_s=delay_s,
            multiplier=1.0,
            jitter="none",
        )


def run_with_retry(
    env,
    policy: RetryPolicy,
    make_attempt: Callable[[], Generator],
    retryable: tuple = (Exception,),
    rng=None,
) -> Generator:
    """Drive a DES request generator through a retry policy (process).

    Each attempt re-invokes ``make_attempt()`` (the failed generator is
    spent and cannot be resumed).  Failures matching ``retryable`` are
    backed off and retried until the budget runs out, at which point the
    **last original error re-raises unchanged** — callers see exactly
    the exception the final attempt produced.
    """
    for attempt in range(1, policy.attempts + 1):
        try:
            result = yield from make_attempt()
            return result
        except retryable:
            if attempt >= policy.attempts:
                raise
            yield env.timeout(policy.backoff_s(attempt, rng))
