"""Speculative task re-execution (Hadoop/Dryad "backup tasks").

The classic-cloud pattern already recovers *crashed* work through the
visibility timeout, but a straggler never crashes — it just computes at
a quarter clock while the whole run waits on it.  The MapReduce answer
is speculation: once most tasks have finished, launch a **backup copy**
of the slowest stragglers on another worker and keep whichever result
lands first.  Duplicate completions reconcile idempotently, exactly as
redelivered messages already do: the monitor's completed-set admits
each task once, however many attempts ran.

:class:`SpeculationPolicy` configures the trigger; :class:`BackupCopy`
is the queue-body wrapper that marks a message as a backup so the
executing worker can record ``TaskRecord.speculative=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.task import TaskSpec

__all__ = ["BackupCopy", "SpeculationPolicy"]


@dataclass(frozen=True)
class SpeculationPolicy:
    """When to launch backup copies of in-flight tasks.

    Every ``poll_s`` simulated seconds the speculator looks at the
    completed-task durations; once at least ``min_completed`` have
    finished, any task still outstanding after ``threshold_multiplier``
    times the ``percentile``-th completed duration (counted from its
    enqueue) earns one backup copy.  ``max_backups`` caps the total
    number of copies per run (None: unbounded).
    """

    percentile: float = 0.75
    threshold_multiplier: float = 2.0
    min_completed: int = 5
    poll_s: float = 30.0
    max_backups: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 1.0:
            raise ValueError("percentile must be in (0, 1]")
        if self.threshold_multiplier < 1.0:
            raise ValueError("threshold_multiplier must be >= 1")
        if self.min_completed < 1:
            raise ValueError("min_completed must be >= 1")
        if self.poll_s <= 0:
            raise ValueError("poll_s must be positive")
        if self.max_backups is not None and self.max_backups < 0:
            raise ValueError("max_backups must be non-negative")


@dataclass(frozen=True)
class BackupCopy:
    """A speculative duplicate of a task, as a queue message body.

    Quacks enough like a :class:`~repro.core.task.TaskSpec` (exposes
    ``task_id``) that accounting paths which only inspect identity —
    dead-letter peeks, completion sets — need no special casing.
    """

    task: TaskSpec

    @property
    def task_id(self) -> str:
        return self.task.task_id
