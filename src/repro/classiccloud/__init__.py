"""The paper's Classic Cloud processing model (Figure 1).

A task-processing pipeline with independent workers built from cloud
infrastructure services:

* a **scheduling queue** (SQS / Azure Queue) holds one message per task;
* **worker processes** on cloud instances pick tasks, download the input
  file from **cloud storage** (S3 / Azure Blob), run the executable,
  upload the result, and only then delete the message;
* the **visibility timeout** provides fault tolerance: an unfinished
  task's message reappears and is re-executed — safe because tasks are
  idempotent;
* a **monitoring queue** reports completions back to the client.

Two implementations share the architecture:

* :class:`~repro.classiccloud.framework.ClassicCloudFramework` — runs on
  the simulated cloud substrate for paper-scale experiments;
* :class:`~repro.classiccloud.local.LocalClassicCloud` — runs real
  executables on local threads against a directory-backed store and a
  visibility-timeout queue, proving the framework logic end to end.
"""

from repro.classiccloud.framework import (
    ClassicCloudConfig,
    ClassicCloudFramework,
    LocalAugmentation,
)
from repro.classiccloud.local import LocalClassicCloud, LocalQueue

__all__ = [
    "ClassicCloudConfig",
    "ClassicCloudFramework",
    "LocalAugmentation",
    "LocalClassicCloud",
    "LocalQueue",
]
