"""Simulated Classic Cloud framework (EC2 / Azure).

Plays the paper's Figure 1 architecture on the discrete-event cloud
substrate: provisions instances, stages inputs into blob storage, fills
the scheduling queue, runs polling workers, and reports makespan, cost
and per-task traces.

Timing follows the paper's methodology: provisioning and application
preload (e.g. the BLAST database download) happen before the measured
window; "it is assumed that the data was already present in the
framework's preferred storage location", so input staging is metered for
cost but not for time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.apps.perfmodels import task_runtime_seconds
from repro.autoscale.controller import AutoscaleController
from repro.autoscale.plan import AutoscalePlan
from repro.cloud.billing import CostMeter
from repro.cloud.compute import CloudProvider, VmInstance
from repro.cloud.failures import FaultPlan
from repro.cloud.instance_types import (
    InstanceType,
    MachineModel,
    get_instance_type,
)
from repro.cloud.pricing import AWS_PRICES, AZURE_PRICES
from repro.cloud.queue import MessageQueue, StaleReceiptError
from repro.cloud.storage import BlobNotFound, BlobStore
from repro.core.application import Application
from repro.core.task import RunResult, TaskRecord, TaskSpec
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment, Interrupt, make_environment
from repro.sim.rng import RngRegistry

__all__ = ["ClassicCloudConfig", "ClassicCloudFramework", "LocalAugmentation"]


@dataclass(frozen=True)
class LocalAugmentation:
    """On-premise workers joining the cloud job (paper Section 2.1.3).

    "One can start workers in computers outside of the cloud to augment
    compute capacity" — they poll the same scheduling queue but reach
    cloud storage over a WAN, so data-heavy tasks benefit less (the
    paper's caveat about the data living in the cloud).
    """

    n_workers: int
    machine: MachineModel = MachineModel(
        cores=8, clock_ghz=2.33, memory_gb=16.0, mem_bandwidth_gbps=10.6
    )
    wan_bandwidth_mbps: float = 10.0  # megaBITS/s — a 2010 site uplink
    wan_latency_s: float = 0.080

    def __post_init__(self) -> None:
        if not 1 <= self.n_workers <= self.machine.cores:
            raise ValueError(
                f"n_workers must be in 1..{self.machine.cores}"
            )
        if self.wan_bandwidth_mbps <= 0 or self.wan_latency_s < 0:
            raise ValueError("WAN parameters must be positive")


class _LocalHost:
    """A non-billed execution host for augmentation workers."""

    draining = False  # local hosts are never scaled in

    def __init__(self, machine: MachineModel):
        self.machine = machine

    def effective_clock_ghz(self) -> float:
        return self.machine.clock_ghz

    @property
    def is_running(self) -> bool:
        return True


@dataclass(frozen=True)
class ClassicCloudConfig:
    """One deployment shape: 'HCXL - 2 x 8' in the paper's axis labels."""

    provider: str  # "aws" or "azure"
    instance_type: str  # catalog name
    n_instances: int
    workers_per_instance: int
    threads_per_worker: int = 1
    visibility_timeout_s: float | None = None  # None: auto from perf model
    poll_backoff_s: float = 1.0
    seed: int = 0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    consistency_window_s: float = 1.0
    max_sim_seconds: float = 10_000_000.0  # watchdog: fail runs that hang
    perf_jitter: float | None = None  # None: provider default (1.56%/2.25%)
    local_augmentation: LocalAugmentation | None = None
    # Dead-letter redrive: tasks received more than this many times
    # without completion are quarantined instead of redelivered forever.
    # None disables the policy (the paper's unbounded behaviour).
    max_task_attempts: int | None = None
    # Run on an instrumented event loop (repro.lint.sanitizer) that
    # records an event trace and checks kernel invariants.  False still
    # honours the REPRO_SANITIZE environment variable.
    sanitize: bool = False
    # Elastic pool: when set, n_instances is only the *initial* fleet
    # and an AutoscaleController grows/shrinks it mid-run (with optional
    # spot-market bidding and preemption).  None keeps the paper's
    # static deployment.
    autoscale: AutoscalePlan | None = None

    def __post_init__(self) -> None:
        if self.n_instances < 1 or self.workers_per_instance < 1:
            raise ValueError("instances and workers must be >= 1")
        if self.threads_per_worker < 1:
            raise ValueError("threads_per_worker must be >= 1")
        itype = self.resolve_instance_type()
        slots = self.workers_per_instance * self.threads_per_worker
        if slots > itype.machine.cores:
            raise ValueError(
                f"{self.workers_per_instance} workers x "
                f"{self.threads_per_worker} threads exceed the "
                f"{itype.machine.cores} cores of {itype.name}"
            )

    def resolve_instance_type(self) -> InstanceType:
        return get_instance_type(self.provider, self.instance_type)

    @property
    def total_cores(self) -> int:
        return self.n_instances * self.resolve_instance_type().machine.cores

    @property
    def total_workers(self) -> int:
        return self.n_instances * self.workers_per_instance

    @property
    def label(self) -> str:
        """The paper's axis format: 'HCXL - 2 x 8'."""
        return (
            f"{self.instance_type} - {self.n_instances} x "
            f"{self.workers_per_instance}"
        )


class ClassicCloudFramework:
    """Run an application over tasks on the simulated cloud."""

    def __init__(self, config: ClassicCloudConfig):
        self.config = config
        #: The event loop of the most recent run; under the sanitizer
        #: this exposes the recorded trace and the post-run report.
        self.last_environment: Environment | None = None

    # -- public API --------------------------------------------------------
    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        """Execute ``tasks`` and return the measured result."""
        if not tasks:
            raise ValueError("no tasks to run")
        run = _SimRun(self.config, app, tasks)
        self.last_environment = run.env
        return run.execute()

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        """T1 for Equation 1: one worker, inputs on local disk.

        Uses the same machine model with a single uncontended worker and
        no cloud service overheads, matching the paper's measurement of
        sequential time "having the input files present in the local
        disks, avoiding the data transfers".
        """
        machine = self.config.resolve_instance_type().machine
        return sum(
            task_runtime_seconds(
                app.perf_model,
                t.work_units,
                machine,
                concurrent_workers=1,
                threads=1,
            )
            for t in tasks
        )


class _SimRun:
    """One execution: wires the substrate together and plays it out."""

    def __init__(
        self, config: ClassicCloudConfig, app: Application, tasks: list[TaskSpec]
    ):
        self.config = config
        self.app = app
        self.tasks = tasks
        # Observability bundle captured once on the driving thread; the
        # cloud services below pick up the same ambient context.
        self.obs = _current_obs()
        self.tracer = self.obs.tracer
        self.env = make_environment(sanitize=True if config.sanitize else None)
        self.rng = RngRegistry(config.seed)
        prices = AWS_PRICES if config.provider == "aws" else AZURE_PRICES
        self.meter = CostMeter(prices)
        self.cloud = CloudProvider(
            self.env,
            config.provider,
            self.rng.stream("provision"),
            meter=self.meter,
            perf_jitter=config.perf_jitter,
        )
        self.storage = BlobStore(
            self.env,
            "storage",
            self.rng.stream("storage"),
            meter=self.meter,
            consistency_window_s=config.consistency_window_s,
            error_rate=config.fault_plan.storage_error_rate,
        )
        self.dead_letter_queue: MessageQueue | None = None
        if config.max_task_attempts is not None:
            self.dead_letter_queue = MessageQueue(
                self.env,
                "tasks-dlq",
                self.rng.stream("dlq"),
                meter=self.meter,
                miss_probability=0.0,
            )
        self.task_queue = MessageQueue(
            self.env,
            "tasks",
            self.rng.stream("queue"),
            meter=self.meter,
            visibility_timeout_s=self._visibility_timeout(),
            miss_probability=config.fault_plan.queue_miss_probability,
            duplicate_probability=config.fault_plan.message_duplicate_probability,
            max_receive_count=config.max_task_attempts,
            dead_letter_queue=self.dead_letter_queue,
        )
        self.monitor_queue = MessageQueue(
            self.env,
            "monitor",
            self.rng.stream("monitor"),
            meter=self.meter,
            visibility_timeout_s=60.0,
            miss_probability=0.0,
        )
        self.records: list[TaskRecord] = []
        self.completed: set[str] = set()
        self.measure_start = 0.0
        self.preload_seconds = 0.0
        self._worker_counter = 0
        self._busy_workers = 0
        self._worker_instance: dict[int, VmInstance] = {}
        self.controller: AutoscaleController | None = None
        if config.autoscale is not None:
            self.controller = AutoscaleController(
                self.env,
                config.autoscale,
                self.cloud,
                config.resolve_instance_type(),
                config.workers_per_instance,
                self.task_queue,
                self.rng.stream("spot-market"),
                spawn_workers=self._spawn_instance_workers,
                is_done=lambda: self._accounted_tasks() >= len(self.tasks),
            )

    def _visibility_timeout(self) -> float:
        if self.config.visibility_timeout_s is not None:
            return self.config.visibility_timeout_s
        machine = self.config.resolve_instance_type().machine
        worst = max(
            task_runtime_seconds(
                self.app.perf_model,
                t.work_units,
                machine,
                concurrent_workers=self.config.workers_per_instance,
                threads=self.config.threads_per_worker,
            )
            for t in self.tasks
        )
        # Headroom for download/upload and stragglers.
        return max(60.0, 3.0 * worst)

    # -- orchestration -------------------------------------------------------
    def execute(self) -> RunResult:
        driver = self.env.process(self._driver(), name="driver")
        makespan = self.env.run(until=driver)
        self.cloud.terminate_all()
        report = self.meter.report()
        self._publish_run_metrics(makespan)
        autoscale_extras = (
            self.controller.summary() if self.controller is not None else {}
        )
        return RunResult(
            backend=f"classiccloud-{self.config.provider}",
            app_name=self.app.name,
            n_tasks=len(self.tasks),
            makespan_seconds=makespan,
            records=self.records,
            billing=report,
            extras={
                "preload_seconds": self.preload_seconds,
                "empty_receives": float(self.task_queue.stats.empty_receives),
                "reappearances": float(self.task_queue.stats.reappearances),
                "duplicate_deliveries": float(
                    self.task_queue.stats.duplicate_deliveries
                ),
                "stale_deletes": float(self.task_queue.stats.stale_deletes),
                "stale_reads": float(self.storage.stats.stale_reads),
                "visibility_timeout_s": self.task_queue.visibility_timeout_s,
                "dead_lettered": float(self.task_queue.stats.dead_lettered),
                **autoscale_extras,
            },
            completed=set(self.completed),
            # Disjoint from completed: a task that finished somewhere but
            # also tripped the receive limit is a success, not a failure.
            failed=(
                {
                    task.task_id
                    for task in self.dead_letter_queue.peek_bodies()
                }
                - self.completed
                if self.dead_letter_queue is not None
                else set()
            ),
            queue_stats=asdict(self.task_queue.stats),
        )

    def _publish_run_metrics(self, makespan: float) -> None:
        """Per-worker busy fractions + kernel event throughput."""
        metrics = self.obs.metrics
        metrics.counter("sim.events").inc(self.env.events_scheduled)
        if makespan <= 0:
            return
        busy: dict[str, float] = {}
        for record in self.records:
            busy[record.worker] = busy.get(record.worker, 0.0) + record.elapsed
        for worker, seconds in busy.items():
            metrics.gauge(f"worker.{worker}.busy_fraction").set(
                min(1.0, seconds / makespan)
            )

    def _driver(self):
        config = self.config
        itype = config.resolve_instance_type()
        if self.controller is not None:
            instances = yield self.env.process(
                self.controller.launch_initial(config.n_instances)
            )
        else:
            instances = yield self.env.process(
                self.cloud.provision(itype, config.n_instances)
            )
        # Stage inputs: metered (storage + ingress) but, per the paper's
        # methodology, outside the measured window and free of simulated
        # time (data "already present in the preferred storage").
        for task in self.tasks:
            self.storage.stage(task.input_key, task.input_size)
            self.meter.record_transfer(bytes_in=task.input_size)

        # Preload phase (e.g. BLAST database distribution): per instance,
        # excluded from reported compute time.
        if self.app.preload_bytes:
            preload_start = self.env.now
            nic_bps = itype.machine.nic_gbps * 1e9 / 8.0
            yield self.env.timeout(
                self.app.preload_bytes / nic_bps
                + self.app.preload_extract_seconds
            )
            self.preload_seconds = self.env.now - preload_start

        self.measure_start = self.env.now
        # Bill from the measured window: the paper excludes environment
        # preparation (provisioning, software install, database preload)
        # from the computation's hourly charges.
        for instance in instances:
            instance.launched_at = self.measure_start

        # Client populates the scheduling queue while workers consume.
        self.env.process(self._client(), name="client")
        workers: list = []
        for instance in instances:
            procs = self._spawn_instance_workers(instance)
            workers.extend(procs)
            if self.controller is not None:
                self.controller.track(instance, procs)
        if self.controller is not None:
            self.controller.start()
        # On-premise augmentation workers share the queue, but reach
        # storage over the WAN.
        if config.local_augmentation is not None:
            aug = config.local_augmentation
            host = _LocalHost(aug.machine)
            for w in range(aug.n_workers):
                workers.append(
                    self._spawn_worker(
                        host,
                        concurrent_workers=aug.n_workers,
                        wan_bandwidth_bps=aug.wan_bandwidth_mbps * 1e6 / 8.0,
                        wan_latency_s=aug.wan_latency_s,
                        prefix="local",
                    )
                )
        # Fault injection: schedule crashes against the global worker
        # index (instance-major order, matching spawn order).
        for crash in config.fault_plan.worker_crashes:
            if 0 <= crash.worker_index < len(workers):
                self.env.process(
                    self._crasher(workers[crash.worker_index], crash),
                    name=f"crasher-{crash.worker_index}",
                )

        completion = self.env.process(self._completion_watcher(), name="watch")
        yield completion
        return self.env.now - self.measure_start

    def _spawn_instance_workers(self, instance) -> list:
        """Start the configured workers on one (possibly fresh) instance."""
        return [
            self._spawn_worker(instance)
            for _ in range(self.config.workers_per_instance)
        ]

    def _spawn_worker(
        self,
        host,
        concurrent_workers: int | None = None,
        wan_bandwidth_bps: float | None = None,
        wan_latency_s: float = 0.0,
        prefix: str = "worker",
    ):
        self._worker_counter += 1
        name = f"{prefix}-{self._worker_counter}"
        if concurrent_workers is None:
            concurrent_workers = self.config.workers_per_instance
        process = self.env.process(
            self._worker(
                host, name, concurrent_workers, wan_bandwidth_bps, wan_latency_s
            ),
            name=name,
        )
        self._worker_instance[id(process)] = host
        return process

    def _respawn_after_poison(
        self, host, concurrent_workers, wan_bandwidth_bps, wan_latency_s
    ):
        yield self.env.timeout(self.config.fault_plan.poison_restart_s)
        if host.is_running:
            self._spawn_worker(
                host,
                concurrent_workers=concurrent_workers,
                wan_bandwidth_bps=wan_bandwidth_bps,
                wan_latency_s=wan_latency_s,
            )

    def _crasher(self, worker_process, crash):
        delay = self.measure_start + crash.at_time - self.env.now
        yield self.env.timeout(max(0.0, delay))
        if worker_process.is_alive:
            worker_process.interrupt("fault-injected crash")
        if crash.restart_after is not None:
            yield self.env.timeout(crash.restart_after)
            # Replacement worker on the same instance as the victim.
            instance = self._worker_instance.get(id(worker_process))
            if instance is not None and instance.is_running:
                self._spawn_worker(instance)

    def _client(self):
        # SendMessageBatch: ten tasks per request, as real clients do.
        for start in range(0, len(self.tasks), 10):
            batch = self.tasks[start : start + 10]
            yield from self.task_queue.send_batch(batch)

    def _accounted_tasks(self) -> int:
        """Distinct tasks that completed or were dead-lettered.

        A union, not a sum: a slow task can complete *and* (with a tight
        visibility timeout) exceed the receive limit — it must not count
        twice.
        """
        if self.dead_letter_queue is None:
            # Hot path: the completion watcher polls this every loop turn.
            return len(self.completed)
        accounted = set(self.completed)
        accounted.update(
            task.task_id for task in self.dead_letter_queue.peek_bodies()
        )
        return len(accounted)

    def _completion_watcher(self):
        poll = self.config.poll_backoff_s
        deadline = self.config.max_sim_seconds
        while self._accounted_tasks() < len(self.tasks):
            if self.env.now > deadline:
                missing = len(self.tasks) - len(self.completed)
                raise RuntimeError(
                    f"run exceeded max_sim_seconds={deadline} with "
                    f"{missing} tasks incomplete (all workers dead?)"
                )
            msg = yield from self.monitor_queue.receive()
            if msg is None:
                yield self.env.timeout(poll)
                continue
            self.completed.add(msg.body)
            try:
                yield from self.monitor_queue.delete(msg)
            except StaleReceiptError:
                pass

    # -- the worker ------------------------------------------------------------
    def _sample_busy(self, delta: int) -> None:
        """Timeline samples: busy workers + utilization over sim time.

        Best-effort by design: a worker killed mid-task (poison /
        preemption) never emits its ``-1``, slightly inflating the last
        samples of a faulty run — acceptable for a sampled gauge.
        """
        if not self.obs.enabled:
            return
        self._busy_workers += delta
        now = self.env.now
        timeline = self.obs.timeline
        timeline.sample("workers.busy", now, self._busy_workers)
        if self.controller is not None:
            slots = (
                len(self.controller.active_instances())
                * self.config.workers_per_instance
            )
        else:
            slots = self.config.total_workers
        if slots > 0:
            timeline.sample(
                "workers.utilization", now, self._busy_workers / slots
            )

    def _worker(
        self,
        host,
        name: str,
        concurrent_workers: int,
        wan_bandwidth_bps: float | None = None,
        wan_latency_s: float = 0.0,
    ):
        config = self.config
        rng = self.rng.stream(f"{name}-jitter")
        straggle_rng = self.rng.stream(f"{name}-straggle")
        tracer = self.tracer
        wait_start = self.env.now
        try:
            while len(self.completed) < len(self.tasks):
                # Scale-in: a draining (or already terminated) host stops
                # taking new tasks; the current task was finished first.
                if host.draining or not host.is_running:
                    return
                msg = yield from self.task_queue.receive()
                if wan_latency_s:
                    yield self.env.timeout(wan_latency_s)
                if msg is None:
                    yield self.env.timeout(config.poll_backoff_s)
                    continue
                task: TaskSpec = msg.body
                started = self.env.now
                first_attempt = msg.receive_count == 1

                # Poison task: executing its input kills the worker.
                # The message reappears after the visibility timeout and
                # — with a redrive policy — eventually dead-letters.
                if task.task_id in config.fault_plan.poison_task_ids:
                    self.env.process(
                        self._respawn_after_poison(
                            host,
                            concurrent_workers,
                            wan_bandwidth_bps,
                            wan_latency_s,
                        ),
                        name=f"{name}-respawn",
                    )
                    return

                self._sample_busy(+1)

                # Download the input file over HTTP, retrying through
                # eventual-consistency 404s.  Bounded: a key that never
                # appears is a configuration error, not a consistency
                # blip, and must fail loudly rather than hang the run.
                t0 = self.env.now
                for attempt_left in range(240, -1, -1):
                    try:
                        yield from self.storage.get(
                            task.input_key,
                            bandwidth_bps=wan_bandwidth_bps,
                            extra_latency_s=wan_latency_s,
                        )
                        break
                    except BlobNotFound:
                        if attempt_left == 0:
                            raise RuntimeError(
                                f"input {task.input_key!r} never became "
                                "visible in storage"
                            ) from None
                        yield self.env.timeout(0.5)
                download_time = self.env.now - t0

                # Execute the program.
                service = task_runtime_seconds(
                    self.app.perf_model,
                    task.work_units,
                    host.machine,
                    concurrent_workers=concurrent_workers,
                    threads=config.threads_per_worker,
                    clock_ghz=host.effective_clock_ghz(),
                )
                plan = config.fault_plan
                if (
                    plan.straggler_probability
                    and straggle_rng.random() < plan.straggler_probability
                ):
                    service *= plan.straggler_slowdown
                # Small service-time noise on top of instance jitter.
                service *= float(rng.uniform(0.98, 1.02))
                t1 = self.env.now
                yield self.env.timeout(service)
                compute_time = self.env.now - t1

                # Upload the result (idempotent overwrite on re-execution).
                t2 = self.env.now
                yield from self.storage.put(
                    task.output_key,
                    task.output_size,
                    bandwidth_bps=wan_bandwidth_bps,
                    extra_latency_s=wan_latency_s,
                )
                upload_time = self.env.now - t2

                # Delete the message; a stale receipt means the task was
                # re-delivered meanwhile — our (identical) result stands.
                was_duplicate = not first_attempt
                try:
                    yield from self.task_queue.delete(msg)
                except StaleReceiptError:
                    was_duplicate = True
                yield from self.monitor_queue.send(task.task_id)

                self.records.append(
                    TaskRecord(
                        task_id=task.task_id,
                        worker=name,
                        started_at=started,
                        finished_at=self.env.now,
                        download_time=download_time,
                        compute_time=compute_time,
                        upload_time=upload_time,
                        attempt=msg.receive_count,
                        was_duplicate=was_duplicate,
                        won=not was_duplicate,
                    )
                )
                # Spans mirror the record exactly (same env.now readings,
                # emitted with no intervening yields), so Chrome-trace
                # phase totals agree with analysis.phase_breakdown.
                if tracer.enabled:
                    tid = task.task_id
                    tracer.add(
                        "task.queue_wait", track=name,
                        start=wait_start, end=started, task_id=tid,
                    )
                    tracer.add(
                        "task.download", track=name,
                        start=t0, end=t0 + download_time, task_id=tid,
                    )
                    tracer.add(
                        "task.compute", track=name,
                        start=t1, end=t1 + compute_time, task_id=tid,
                    )
                    tracer.add(
                        "task.upload", track=name,
                        start=t2, end=t2 + upload_time, task_id=tid,
                    )
                self._sample_busy(-1)
                wait_start = self.env.now
        except Interrupt:
            return  # crashed: in-flight message reappears after timeout
