"""Simulated Classic Cloud framework (EC2 / Azure).

Plays the paper's Figure 1 architecture on the discrete-event cloud
substrate: provisions instances, stages inputs into blob storage, fills
the scheduling queue, runs polling workers, and reports makespan, cost
and per-task traces.

Timing follows the paper's methodology: provisioning and application
preload (e.g. the BLAST database download) happen before the measured
window; "it is assumed that the data was already present in the
framework's preferred storage location", so input staging is metered for
cost but not for time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.apps.perfmodels import task_runtime_seconds
from repro.autoscale.controller import AutoscaleController
from repro.autoscale.plan import AutoscalePlan
from repro.chaos.injectors import ChaosController
from repro.chaos.plan import ChaosPlan
from repro.chaos.retry import RetryPolicy, run_with_retry
from repro.chaos.speculation import BackupCopy, SpeculationPolicy
from repro.cloud.billing import CostMeter
from repro.cloud.compute import CloudProvider, VmInstance
from repro.cloud.failures import FaultPlan
from repro.cloud.instance_types import (
    InstanceType,
    MachineModel,
    get_instance_type,
)
from repro.cloud.pricing import AWS_PRICES, AZURE_PRICES
from repro.cloud.queue import MessageQueue, StaleReceiptError
from repro.cloud.storage import BlobNotFound, BlobStore, StorageUnavailable
from repro.core.application import Application
from repro.core.task import RunResult, TaskRecord, TaskSpec
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment, Interrupt, make_environment
from repro.sim.rng import RngRegistry

__all__ = ["ClassicCloudConfig", "ClassicCloudFramework", "LocalAugmentation"]

#: The workers' eventual-consistency download loop, expressed as a
#: retry policy: 241 attempts at a flat 0.5 s — byte-identical in
#: timing (and RNG consumption: none) to the historical ``for`` loop.
_DOWNLOAD_RETRY = RetryPolicy.fixed(attempts=241, delay_s=0.5)


@dataclass(frozen=True)
class LocalAugmentation:
    """On-premise workers joining the cloud job (paper Section 2.1.3).

    "One can start workers in computers outside of the cloud to augment
    compute capacity" — they poll the same scheduling queue but reach
    cloud storage over a WAN, so data-heavy tasks benefit less (the
    paper's caveat about the data living in the cloud).
    """

    n_workers: int
    machine: MachineModel = MachineModel(
        cores=8, clock_ghz=2.33, memory_gb=16.0, mem_bandwidth_gbps=10.6
    )
    wan_bandwidth_mbps: float = 10.0  # megaBITS/s — a 2010 site uplink
    wan_latency_s: float = 0.080

    def __post_init__(self) -> None:
        if not 1 <= self.n_workers <= self.machine.cores:
            raise ValueError(
                f"n_workers must be in 1..{self.machine.cores}"
            )
        if self.wan_bandwidth_mbps <= 0 or self.wan_latency_s < 0:
            raise ValueError("WAN parameters must be positive")


class _LocalHost:
    """A non-billed execution host for augmentation workers."""

    draining = False  # local hosts are never scaled in

    def __init__(self, machine: MachineModel):
        self.machine = machine

    def effective_clock_ghz(self) -> float:
        return self.machine.clock_ghz

    @property
    def is_running(self) -> bool:
        return True


@dataclass(frozen=True)
class ClassicCloudConfig:
    """One deployment shape: 'HCXL - 2 x 8' in the paper's axis labels."""

    provider: str  # "aws" or "azure"
    instance_type: str  # catalog name
    n_instances: int
    workers_per_instance: int
    threads_per_worker: int = 1
    visibility_timeout_s: float | None = None  # None: auto from perf model
    poll_backoff_s: float = 1.0
    seed: int = 0
    fault_plan: FaultPlan = field(default_factory=FaultPlan)
    consistency_window_s: float = 1.0
    max_sim_seconds: float = 10_000_000.0  # watchdog: fail runs that hang
    perf_jitter: float | None = None  # None: provider default (1.56%/2.25%)
    local_augmentation: LocalAugmentation | None = None
    # Dead-letter redrive: tasks received more than this many times
    # without completion are quarantined instead of redelivered forever.
    # None disables the policy (the paper's unbounded behaviour).
    max_task_attempts: int | None = None
    # Run on an instrumented event loop (repro.lint.sanitizer) that
    # records an event trace and checks kernel invariants.  False still
    # honours the REPRO_SANITIZE environment variable.
    sanitize: bool = False
    # Elastic pool: when set, n_instances is only the *initial* fleet
    # and an AutoscaleController grows/shrinks it mid-run (with optional
    # spot-market bidding and preemption).  None keeps the paper's
    # static deployment.
    autoscale: AutoscalePlan | None = None
    # Chaos: a seeded fault schedule (crashes, preemption waves,
    # queue/storage misbehaviour windows, slow nodes) played against
    # the run by repro.chaos.  None injects nothing.
    chaos: ChaosPlan | None = None
    # Mitigation: a budget-capped backoff-with-jitter policy for the
    # storage client's internal 5xx retries and the workers' empty-
    # receive poll backoff.  None keeps the historical behaviour
    # (retry-forever storage, fixed poll_backoff_s).
    retry_policy: RetryPolicy | None = None
    # Mitigation: Hadoop-style speculative re-execution — backup copies
    # of slowest-percentile in-flight tasks, first finisher wins,
    # duplicates reconciled idempotently.  None disables speculation.
    speculation: SpeculationPolicy | None = None

    def __post_init__(self) -> None:
        if self.n_instances < 1 or self.workers_per_instance < 1:
            raise ValueError("instances and workers must be >= 1")
        if self.threads_per_worker < 1:
            raise ValueError("threads_per_worker must be >= 1")
        itype = self.resolve_instance_type()
        slots = self.workers_per_instance * self.threads_per_worker
        if slots > itype.machine.cores:
            raise ValueError(
                f"{self.workers_per_instance} workers x "
                f"{self.threads_per_worker} threads exceed the "
                f"{itype.machine.cores} cores of {itype.name}"
            )

    def resolve_instance_type(self) -> InstanceType:
        return get_instance_type(self.provider, self.instance_type)

    @property
    def total_cores(self) -> int:
        return self.n_instances * self.resolve_instance_type().machine.cores

    @property
    def total_workers(self) -> int:
        return self.n_instances * self.workers_per_instance

    @property
    def label(self) -> str:
        """The paper's axis format: 'HCXL - 2 x 8'."""
        return (
            f"{self.instance_type} - {self.n_instances} x "
            f"{self.workers_per_instance}"
        )


class ClassicCloudFramework:
    """Run an application over tasks on the simulated cloud."""

    def __init__(self, config: ClassicCloudConfig):
        self.config = config
        #: The event loop of the most recent run; under the sanitizer
        #: this exposes the recorded trace and the post-run report.
        self.last_environment: Environment | None = None

    # -- public API --------------------------------------------------------
    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        """Execute ``tasks`` and return the measured result."""
        if not tasks:
            raise ValueError("no tasks to run")
        run = _SimRun(self.config, app, tasks)
        self.last_environment = run.env
        return run.execute()

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        """T1 for Equation 1: one worker, inputs on local disk.

        Uses the same machine model with a single uncontended worker and
        no cloud service overheads, matching the paper's measurement of
        sequential time "having the input files present in the local
        disks, avoiding the data transfers".
        """
        machine = self.config.resolve_instance_type().machine
        return sum(
            task_runtime_seconds(
                app.perf_model,
                t.work_units,
                machine,
                concurrent_workers=1,
                threads=1,
            )
            for t in tasks
        )


class _SimRun:
    """One execution: wires the substrate together and plays it out."""

    def __init__(
        self, config: ClassicCloudConfig, app: Application, tasks: list[TaskSpec]
    ):
        self.config = config
        self.app = app
        self.tasks = tasks
        # Observability bundle captured once on the driving thread; the
        # cloud services below pick up the same ambient context.
        self.obs = _current_obs()
        self.tracer = self.obs.tracer
        self.env = make_environment(sanitize=True if config.sanitize else None)
        self.rng = RngRegistry(config.seed)
        prices = AWS_PRICES if config.provider == "aws" else AZURE_PRICES
        self.meter = CostMeter(prices)
        self.cloud = CloudProvider(
            self.env,
            config.provider,
            self.rng.stream("provision"),
            meter=self.meter,
            perf_jitter=config.perf_jitter,
        )
        self.storage = BlobStore(
            self.env,
            "storage",
            self.rng.stream("storage"),
            meter=self.meter,
            consistency_window_s=config.consistency_window_s,
            error_rate=config.fault_plan.storage_error_rate,
            retry_policy=config.retry_policy,
        )
        self.dead_letter_queue: MessageQueue | None = None
        if config.max_task_attempts is not None:
            self.dead_letter_queue = MessageQueue(
                self.env,
                "tasks-dlq",
                self.rng.stream("dlq"),
                meter=self.meter,
                miss_probability=0.0,
            )
        self.task_queue = MessageQueue(
            self.env,
            "tasks",
            self.rng.stream("queue"),
            meter=self.meter,
            visibility_timeout_s=self._visibility_timeout(),
            miss_probability=config.fault_plan.queue_miss_probability,
            duplicate_probability=config.fault_plan.message_duplicate_probability,
            max_receive_count=config.max_task_attempts,
            dead_letter_queue=self.dead_letter_queue,
        )
        self.monitor_queue = MessageQueue(
            self.env,
            "monitor",
            self.rng.stream("monitor"),
            meter=self.meter,
            visibility_timeout_s=60.0,
            miss_probability=0.0,
        )
        self.records: list[TaskRecord] = []
        self.completed: set[str] = set()
        self.measure_start = 0.0
        self.preload_seconds = 0.0
        self._worker_counter = 0
        self._busy_workers = 0
        self._worker_instance: dict[int, VmInstance] = {}
        self._all_workers: list = []
        # Resilience bookkeeping (chaos / speculation / retry runs).
        self._task_started_at: dict[str, float] = {}
        self._finished_ids: set[str] = set()
        self._backup_sent: set[str] = set()
        self._recoveries: list[float] = []
        self.speculative_launched = 0
        self.chaos: ChaosController | None = None
        if config.chaos is not None:
            self.chaos = ChaosController(
                self.env,
                config.chaos,
                queue=self.task_queue,
                storage=self.storage,
                instances=lambda: [
                    i for i in self.cloud.instances if i.is_running
                ],
                workers=lambda: [
                    p for p in self._all_workers if p.is_alive
                ],
                crash_worker=lambda p: p.interrupt("chaos-crash"),
                restart_worker=self._restart_worker_like,
                preempt_instance=self._chaos_preempt,
            )
        self.controller: AutoscaleController | None = None
        if config.autoscale is not None:
            self.controller = AutoscaleController(
                self.env,
                config.autoscale,
                self.cloud,
                config.resolve_instance_type(),
                config.workers_per_instance,
                self.task_queue,
                self.rng.stream("spot-market"),
                spawn_workers=self._spawn_instance_workers,
                is_done=lambda: self._accounted_tasks() >= len(self.tasks),
            )

    def _visibility_timeout(self) -> float:
        if self.config.visibility_timeout_s is not None:
            return self.config.visibility_timeout_s
        machine = self.config.resolve_instance_type().machine
        worst = max(
            task_runtime_seconds(
                self.app.perf_model,
                t.work_units,
                machine,
                concurrent_workers=self.config.workers_per_instance,
                threads=self.config.threads_per_worker,
            )
            for t in self.tasks
        )
        # Headroom for download/upload and stragglers.
        return max(60.0, 3.0 * worst)

    # -- orchestration -------------------------------------------------------
    def execute(self) -> RunResult:
        driver = self.env.process(self._driver(), name="driver")
        makespan = self.env.run(until=driver)
        self.cloud.terminate_all()
        report = self.meter.report()
        self._publish_run_metrics(makespan)
        autoscale_extras = (
            self.controller.summary() if self.controller is not None else {}
        )
        failed = (
            {
                task.task_id
                for task in self.dead_letter_queue.peek_bodies()
            }
            - self.completed
            if self.dead_letter_queue is not None
            else set()
        )
        return RunResult(
            backend=f"classiccloud-{self.config.provider}",
            app_name=self.app.name,
            n_tasks=len(self.tasks),
            makespan_seconds=makespan,
            records=self.records,
            billing=report,
            extras={
                "preload_seconds": self.preload_seconds,
                "empty_receives": float(self.task_queue.stats.empty_receives),
                "reappearances": float(self.task_queue.stats.reappearances),
                "duplicate_deliveries": float(
                    self.task_queue.stats.duplicate_deliveries
                ),
                "stale_deletes": float(self.task_queue.stats.stale_deletes),
                "stale_reads": float(self.storage.stats.stale_reads),
                "visibility_timeout_s": self.task_queue.visibility_timeout_s,
                "dead_lettered": float(self.task_queue.stats.dead_lettered),
                **autoscale_extras,
                **self._resilience_extras(len(failed)),
            },
            completed=set(self.completed),
            # Disjoint from completed: a task that finished somewhere but
            # also tripped the receive limit is a success, not a failure.
            failed=failed,
            queue_stats=asdict(self.task_queue.stats),
        )

    def _resilience_extras(self, n_failed: int) -> dict[str, float]:
        """Recovery metrics, emitted only on chaos/mitigation runs so
        legacy configurations keep byte-identical extras."""
        config = self.config
        if (
            config.chaos is None
            and config.speculation is None
            and config.retry_policy is None
        ):
            return {}
        # First finisher per task is useful work; every later attempt's
        # seconds are redundant.  Records append in completion order, so
        # the first record per task id is the winner.
        total = 0.0
        redundant = 0.0
        speculative_wins = 0
        first_done: set[str] = set()
        for record in self.records:
            total += record.elapsed
            if record.task_id in first_done:
                redundant += record.elapsed
            else:
                first_done.add(record.task_id)
                if record.speculative:
                    speculative_wins += 1
        extras = {
            "tasks_completed": float(len(self.completed)),
            "tasks_failed": float(n_failed),
            "redundant_seconds": redundant,
            "redundant_fraction": redundant / total if total else 0.0,
            # MTTR: delivery-to-completion time of tasks that finished
            # on a redelivered message — how long the visibility-timeout
            # recovery path took, averaged over recoveries.
            "chaos_mttr_s": (
                sum(self._recoveries) / len(self._recoveries)
                if self._recoveries
                else 0.0
            ),
            "chaos_recoveries": float(len(self._recoveries)),
            "speculative_launched": float(self.speculative_launched),
            "speculative_wins": float(speculative_wins),
            "lost_deletes": float(self.task_queue.stats.lost_deletes),
        }
        if self.chaos is not None:
            extras.update(self.chaos.summary())
        return extras

    def _publish_run_metrics(self, makespan: float) -> None:
        """Per-worker busy fractions + kernel event throughput."""
        metrics = self.obs.metrics
        metrics.counter("sim.events").inc(self.env.events_scheduled)
        if makespan <= 0:
            return
        busy: dict[str, float] = {}
        for record in self.records:
            busy[record.worker] = busy.get(record.worker, 0.0) + record.elapsed
        for worker, seconds in busy.items():
            metrics.gauge(f"worker.{worker}.busy_fraction").set(
                min(1.0, seconds / makespan)
            )

    def _driver(self):
        config = self.config
        itype = config.resolve_instance_type()
        if self.controller is not None:
            instances = yield self.env.process(
                self.controller.launch_initial(config.n_instances)
            )
        else:
            instances = yield self.env.process(
                self.cloud.provision(itype, config.n_instances)
            )
        # Stage inputs: metered (storage + ingress) but, per the paper's
        # methodology, outside the measured window and free of simulated
        # time (data "already present in the preferred storage").
        for task in self.tasks:
            self.storage.stage(task.input_key, task.input_size)
            self.meter.record_transfer(bytes_in=task.input_size)

        # Preload phase (e.g. BLAST database distribution): per instance,
        # excluded from reported compute time.
        if self.app.preload_bytes:
            preload_start = self.env.now
            nic_bps = itype.machine.nic_gbps * 1e9 / 8.0
            yield self.env.timeout(
                self.app.preload_bytes / nic_bps
                + self.app.preload_extract_seconds
            )
            self.preload_seconds = self.env.now - preload_start

        self.measure_start = self.env.now
        # Bill from the measured window: the paper excludes environment
        # preparation (provisioning, software install, database preload)
        # from the computation's hourly charges.
        for instance in instances:
            instance.launched_at = self.measure_start

        # Client populates the scheduling queue while workers consume.
        self.env.process(self._client(), name="client")
        workers: list = []
        for instance in instances:
            procs = self._spawn_instance_workers(instance)
            workers.extend(procs)
            if self.controller is not None:
                self.controller.track(instance, procs)
        if self.controller is not None:
            self.controller.start()
        # On-premise augmentation workers share the queue, but reach
        # storage over the WAN.
        if config.local_augmentation is not None:
            aug = config.local_augmentation
            host = _LocalHost(aug.machine)
            for w in range(aug.n_workers):
                workers.append(
                    self._spawn_worker(
                        host,
                        concurrent_workers=aug.n_workers,
                        wan_bandwidth_bps=aug.wan_bandwidth_mbps * 1e6 / 8.0,
                        wan_latency_s=aug.wan_latency_s,
                        prefix="local",
                    )
                )
        # Fault injection: schedule crashes against the global worker
        # index (instance-major order, matching spawn order).
        for crash in config.fault_plan.worker_crashes:
            if 0 <= crash.worker_index < len(workers):
                self.env.process(
                    self._crasher(workers[crash.worker_index], crash),
                    name=f"crasher-{crash.worker_index}",
                )
        # Chaos: the seeded plan's clock starts at the measured window.
        if self.chaos is not None:
            self.chaos.start_at = self.measure_start
            self.chaos.start()
        if config.speculation is not None:
            self.env.process(self._speculator(), name="speculator")

        completion = self.env.process(self._completion_watcher(), name="watch")
        yield completion
        return self.env.now - self.measure_start

    def _spawn_instance_workers(self, instance) -> list:
        """Start the configured workers on one (possibly fresh) instance."""
        return [
            self._spawn_worker(instance)
            for _ in range(self.config.workers_per_instance)
        ]

    def _spawn_worker(
        self,
        host,
        concurrent_workers: int | None = None,
        wan_bandwidth_bps: float | None = None,
        wan_latency_s: float = 0.0,
        prefix: str = "worker",
    ):
        self._worker_counter += 1
        name = f"{prefix}-{self._worker_counter}"
        if concurrent_workers is None:
            concurrent_workers = self.config.workers_per_instance
        process = self.env.process(
            self._worker(
                host, name, concurrent_workers, wan_bandwidth_bps, wan_latency_s
            ),
            name=name,
        )
        self._worker_instance[id(process)] = host
        self._all_workers.append(process)
        return process

    def _respawn_after_poison(
        self, host, concurrent_workers, wan_bandwidth_bps, wan_latency_s
    ):
        yield self.env.timeout(self.config.fault_plan.poison_restart_s)
        if host.is_running:
            self._spawn_worker(
                host,
                concurrent_workers=concurrent_workers,
                wan_bandwidth_bps=wan_bandwidth_bps,
                wan_latency_s=wan_latency_s,
            )

    def _crasher(self, worker_process, crash):
        delay = self.measure_start + crash.at_time - self.env.now
        yield self.env.timeout(max(0.0, delay))
        if worker_process.is_alive:
            worker_process.interrupt("fault-injected crash")
        if crash.restart_after is not None:
            yield self.env.timeout(crash.restart_after)
            # Replacement worker on the same instance as the victim.
            instance = self._worker_instance.get(id(worker_process))
            if instance is not None and instance.is_running:
                self._spawn_worker(instance)

    # -- chaos hooks -----------------------------------------------------------
    def _restart_worker_like(self, victim) -> None:
        """Replacement worker on the crash victim's instance, if alive."""
        host = self._worker_instance.get(id(victim))
        if host is not None and host.is_running:
            self._spawn_worker(host)

    def _chaos_preempt(self, instance) -> None:
        """Provider-initiated reclaim of one instance and its workers."""
        for process in self._all_workers:
            if (
                process.is_alive
                and self._worker_instance.get(id(process)) is instance
            ):
                process.interrupt("chaos-preempted")
        if instance.is_running:
            self.cloud.terminate(instance, preempted=True)

    def _speculator(self):
        """Launch backup copies of slowest-percentile in-flight tasks.

        Every poll, once enough tasks have completed to estimate a
        duration distribution, any task still executing after
        ``threshold_multiplier`` times the ``percentile``-th completed
        duration gets one :class:`BackupCopy` enqueued.  Whichever
        attempt finishes first wins; the loser's (identical) result is
        reconciled idempotently by the completion watcher.
        """
        policy = self.config.speculation
        while self._accounted_tasks() < len(self.tasks):
            yield self.env.timeout(policy.poll_s)
            durations = sorted(r.elapsed for r in self.records)
            if len(durations) < policy.min_completed:
                continue
            index = min(
                len(durations) - 1,
                max(0, int(policy.percentile * len(durations)) - 1),
            )
            cutoff = durations[index] * policy.threshold_multiplier
            now = self.env.now
            for task in self.tasks:
                if (
                    policy.max_backups is not None
                    and self.speculative_launched >= policy.max_backups
                ):
                    break
                tid = task.task_id
                if tid in self.completed or tid in self._backup_sent:
                    continue
                started = self._task_started_at.get(tid)
                if started is None or now - started <= cutoff:
                    continue
                self._backup_sent.add(tid)
                self.speculative_launched += 1
                if self.tracer.enabled:
                    self.tracer.instant(
                        "chaos.speculate",
                        track="chaos",
                        ts=now,
                        task_id=tid,
                        age_s=now - started,
                        cutoff_s=cutoff,
                    )
                self.obs.timeline.sample(
                    "chaos.speculative", now, self.speculative_launched
                )
                yield from self.task_queue.send(BackupCopy(task))

    def _client(self):
        # SendMessageBatch: ten tasks per request, as real clients do.
        for start in range(0, len(self.tasks), 10):
            batch = self.tasks[start : start + 10]
            yield from self.task_queue.send_batch(batch)

    def _accounted_tasks(self) -> int:
        """Distinct tasks that completed or were dead-lettered.

        A union, not a sum: a slow task can complete *and* (with a tight
        visibility timeout) exceed the receive limit — it must not count
        twice.
        """
        if self.dead_letter_queue is None:
            # Hot path: the completion watcher polls this every loop turn.
            return len(self.completed)
        accounted = set(self.completed)
        accounted.update(
            task.task_id for task in self.dead_letter_queue.peek_bodies()
        )
        return len(accounted)

    def _completion_watcher(self):
        poll = self.config.poll_backoff_s
        deadline = self.config.max_sim_seconds
        while self._accounted_tasks() < len(self.tasks):
            if self.env.now > deadline:
                missing = len(self.tasks) - len(self.completed)
                raise RuntimeError(
                    f"run exceeded max_sim_seconds={deadline} with "
                    f"{missing} tasks incomplete (all workers dead?)"
                )
            msg = yield from self.monitor_queue.receive()
            if msg is None:
                yield self.env.timeout(poll)
                continue
            self.completed.add(msg.body)
            try:
                yield from self.monitor_queue.delete(msg)
            except StaleReceiptError:
                pass

    # -- the worker ------------------------------------------------------------
    def _sample_busy(self, delta: int) -> None:
        """Timeline samples: busy workers + utilization over sim time.

        Every ``+1`` is paired with a ``-1``: the normal path emits it
        after the task completes, and the Interrupt recovery path emits
        it for a worker killed mid-task (poison / preemption / chaos),
        so the gauge returns to zero when the run drains.
        """
        if not self.obs.enabled:
            return
        self._busy_workers += delta
        now = self.env.now
        timeline = self.obs.timeline
        timeline.sample("workers.busy", now, self._busy_workers)
        if self.controller is not None:
            slots = (
                len(self.controller.active_instances())
                * self.config.workers_per_instance
            )
        else:
            slots = self.config.total_workers
        if slots > 0:
            timeline.sample(
                "workers.utilization", now, self._busy_workers / slots
            )

    def _worker(
        self,
        host,
        name: str,
        concurrent_workers: int,
        wan_bandwidth_bps: float | None = None,
        wan_latency_s: float = 0.0,
    ):
        config = self.config
        rng = self.rng.stream(f"{name}-jitter")
        straggle_rng = self.rng.stream(f"{name}-straggle")
        retry_policy = config.retry_policy
        backoff_rng = (
            self.rng.stream(f"{name}-backoff")
            if retry_policy is not None
            else None
        )
        tracer = self.tracer
        wait_start = self.env.now
        busy = False  # whether a +1 busy sample awaits its -1
        empty_streak = 0
        try:
            while len(self.completed) < len(self.tasks):
                # Scale-in: a draining (or already terminated) host stops
                # taking new tasks; the current task was finished first.
                if host.draining or not host.is_running:
                    return
                msg = yield from self.task_queue.receive()
                if wan_latency_s:
                    yield self.env.timeout(wan_latency_s)
                if msg is None:
                    # With a retry policy the empty-receive backoff grows
                    # (jittered) instead of hammering a drained queue at
                    # a fixed period.
                    if retry_policy is not None:
                        empty_streak = min(empty_streak + 1, 30)
                        yield self.env.timeout(
                            config.poll_backoff_s
                            + retry_policy.backoff_s(
                                empty_streak, backoff_rng
                            )
                        )
                    else:
                        yield self.env.timeout(config.poll_backoff_s)
                    continue
                empty_streak = 0
                body = msg.body
                speculative = isinstance(body, BackupCopy)
                task: TaskSpec = body.task if speculative else body
                started = self.env.now
                self._task_started_at[task.task_id] = started
                first_attempt = msg.receive_count == 1

                # Poison task: executing its input kills the worker.
                # The message reappears after the visibility timeout and
                # — with a redrive policy — eventually dead-letters.
                if task.task_id in config.fault_plan.poison_task_ids:
                    self.env.process(
                        self._respawn_after_poison(
                            host,
                            concurrent_workers,
                            wan_bandwidth_bps,
                            wan_latency_s,
                        ),
                        name=f"{name}-respawn",
                    )
                    return

                self._sample_busy(+1)
                busy = True

                try:
                    # Download the input file over HTTP, retrying through
                    # eventual-consistency 404s.  Bounded: a key that
                    # never appears is a configuration error, not a
                    # consistency blip, and must fail loudly rather than
                    # hang the run.
                    t0 = self.env.now
                    try:
                        yield from run_with_retry(
                            self.env,
                            _DOWNLOAD_RETRY,
                            lambda: self.storage.get(
                                task.input_key,
                                bandwidth_bps=wan_bandwidth_bps,
                                extra_latency_s=wan_latency_s,
                            ),
                            retryable=(BlobNotFound,),
                        )
                    except BlobNotFound:
                        raise RuntimeError(
                            f"input {task.input_key!r} never became "
                            "visible in storage"
                        ) from None
                    download_time = self.env.now - t0

                    # Execute the program.
                    service = task_runtime_seconds(
                        self.app.perf_model,
                        task.work_units,
                        host.machine,
                        concurrent_workers=concurrent_workers,
                        threads=config.threads_per_worker,
                        clock_ghz=host.effective_clock_ghz(),
                    )
                    plan = config.fault_plan
                    if (
                        plan.straggler_probability
                        and straggle_rng.random()
                        < plan.straggler_probability
                    ):
                        service *= plan.straggler_slowdown
                    # Small service-time noise on top of instance jitter.
                    service *= float(rng.uniform(0.98, 1.02))
                    t1 = self.env.now
                    yield self.env.timeout(service)
                    compute_time = self.env.now - t1

                    # Upload the result (idempotent overwrite on
                    # re-execution).
                    t2 = self.env.now
                    yield from self.storage.put(
                        task.output_key,
                        task.output_size,
                        bandwidth_bps=wan_bandwidth_bps,
                        extra_latency_s=wan_latency_s,
                    )
                    upload_time = self.env.now - t2
                except StorageUnavailable:
                    # Retry budget exhausted mid-attempt: abandon it.
                    # The undeleted message reappears after the
                    # visibility timeout and another worker re-executes
                    # the task — the recovery path the paper relies on.
                    self._sample_busy(-1)
                    busy = False
                    wait_start = self.env.now
                    continue

                # Delete the message; a stale receipt means the task was
                # re-delivered meanwhile — our (identical) result stands.
                was_duplicate = not first_attempt
                try:
                    yield from self.task_queue.delete(msg)
                except StaleReceiptError:
                    was_duplicate = True
                yield from self.monitor_queue.send(task.task_id)

                # First finisher wins; a backup copy (or the original it
                # raced) landing second is redundant work, same as a
                # redelivered duplicate.
                finished_before = task.task_id in self._finished_ids
                self._finished_ids.add(task.task_id)
                won = not was_duplicate and not finished_before
                if (
                    not finished_before
                    and msg.receive_count > 1
                    and msg.first_received_at is not None
                ):
                    # Completed on a redelivery: the visibility-timeout
                    # recovery path repaired lost work — record how long
                    # it took (MTTR numerator).
                    self._recoveries.append(
                        self.env.now - msg.first_received_at
                    )
                self.records.append(
                    TaskRecord(
                        task_id=task.task_id,
                        worker=name,
                        started_at=started,
                        finished_at=self.env.now,
                        download_time=download_time,
                        compute_time=compute_time,
                        upload_time=upload_time,
                        attempt=msg.receive_count,
                        was_duplicate=was_duplicate,
                        speculative=speculative,
                        won=won,
                    )
                )
                # Spans mirror the record exactly (same env.now readings,
                # emitted with no intervening yields), so Chrome-trace
                # phase totals agree with analysis.phase_breakdown.
                if tracer.enabled:
                    tid = task.task_id
                    tracer.add(
                        "task.queue_wait", track=name,
                        start=wait_start, end=started, task_id=tid,
                    )
                    tracer.add(
                        "task.download", track=name,
                        start=t0, end=t0 + download_time, task_id=tid,
                    )
                    tracer.add(
                        "task.compute", track=name,
                        start=t1, end=t1 + compute_time, task_id=tid,
                    )
                    tracer.add(
                        "task.upload", track=name,
                        start=t2, end=t2 + upload_time, task_id=tid,
                    )
                self._sample_busy(-1)
                busy = False
                wait_start = self.env.now
        except Interrupt:
            # Crashed (poison / preemption / chaos): the in-flight
            # message reappears after the visibility timeout.  Emit the
            # busy end-sentinel the completion path would have emitted
            # so the sampled gauge doesn't stay inflated forever.
            if busy:
                self._sample_busy(-1)
            return
