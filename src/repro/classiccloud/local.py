"""Real-execution Classic Cloud: threads, files and a visibility-timeout queue.

The same architecture as the simulated framework — scheduling queue with
visibility timeouts, idempotent file-in/file-out tasks, delete-after-
completion — but everything is real: worker threads run the actual
executables on actual files.  This is the implementation that proves the
framework logic (fault tolerance through message reappearance, duplicate
execution safety) end to end.

It also demonstrates the paper's remark that the Classic Cloud model can
"use the local machines and clusters side by side with the clouds": the
worker loop is substrate-independent.
"""

from __future__ import annotations

# This module is the *real* threaded runtime: it executes actual
# programs on actual files, so measuring wall-clock time is its job.
# The simulated counterpart (framework.py) reads Environment.now only.
# repro: noqa-file[RPR001]: real execution legitimately reads the wall clock

import itertools
import os
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.apps.executables import Executable
from repro.classiccloud.localstore import LocalBlobStore
from repro.core.task import RunResult, TaskRecord, TaskSpec
from repro.lint.threadsan import monitor, monitor_lock
from repro.obs.context import current as _current_obs

__all__ = ["LocalClassicCloud", "LocalMessage", "LocalQueue"]


@dataclass
class LocalMessage:
    """A received message with its receipt."""

    message_id: int
    body: object
    receipt: int
    receive_count: int


class LocalQueue:
    """Thread-safe message queue with SQS-style visibility timeouts.

    At-least-once: a received message reappears after
    ``visibility_timeout_s`` unless deleted with a current receipt.
    """

    def __init__(self, visibility_timeout_s: float = 30.0):
        if visibility_timeout_s <= 0:
            raise ValueError("visibility timeout must be positive")
        self.visibility_timeout_s = visibility_timeout_s
        # Under REPRO_SANITIZE=threads these become monitored objects
        # (repro.lint.threadsan); in normal runs they are the plain
        # stdlib types, untouched.
        self._lock = monitor_lock("LocalQueue._lock")
        self._ids = itertools.count()
        self._receipts = itertools.count(1)
        self._visible: deque[int] = monitor(deque(), "LocalQueue._visible")
        self._bodies: dict[int, object] = monitor({}, "LocalQueue._bodies")
        self._receive_counts: dict[int, int] = monitor(
            {}, "LocalQueue._receive_counts"
        )
        # message_id -> (reappear deadline, current receipt)
        self._inflight: dict[int, tuple[float, int]] = monitor(
            {}, "LocalQueue._inflight"
        )
        self.reappearances = 0

    def send(self, body: object) -> int:
        with self._lock:
            message_id = next(self._ids)
            self._bodies[message_id] = body
            self._receive_counts[message_id] = 0
            self._visible.append(message_id)
            return message_id

    def _promote_expired(self, now: float) -> None:
        expired = [
            mid for mid, (deadline, _) in self._inflight.items() if deadline <= now
        ]
        for mid in expired:
            del self._inflight[mid]
            self._visible.append(mid)
            self.reappearances += 1

    def receive(
        self, visibility_timeout_s: float | None = None
    ) -> LocalMessage | None:
        timeout = (
            self.visibility_timeout_s
            if visibility_timeout_s is None
            else visibility_timeout_s
        )
        now = time.monotonic()
        with self._lock:
            self._promote_expired(now)
            if not self._visible:
                return None
            message_id = self._visible.popleft()
            receipt = next(self._receipts)
            self._receive_counts[message_id] += 1
            self._inflight[message_id] = (now + timeout, receipt)
            return LocalMessage(
                message_id=message_id,
                body=self._bodies[message_id],
                receipt=receipt,
                receive_count=self._receive_counts[message_id],
            )

    def delete(self, message: LocalMessage) -> bool:
        """Delete if the receipt is current; False if it went stale."""
        with self._lock:
            entry = self._inflight.get(message.message_id)
            if entry is None or entry[1] != message.receipt:
                # Either reappeared (now visible / re-received) or gone.
                if message.message_id in self._bodies and entry is None:
                    # Reappeared but not yet re-received: claim it back.
                    try:
                        self._visible.remove(message.message_id)
                    except ValueError:
                        return False
                    self._forget(message.message_id)
                    return True
                return False
            self._forget(message.message_id)
            return True

    def _forget(self, message_id: int) -> None:
        self._inflight.pop(message_id, None)
        self._bodies.pop(message_id, None)
        self._receive_counts.pop(message_id, None)

    def approximate_size(self) -> int:
        with self._lock:
            return len(self._bodies)


@dataclass
class _CrashPlan:
    """Crash worker ``worker_index`` on its Nth receive (before work)."""

    worker_index: int
    on_receive: int


class LocalClassicCloud:
    """Run real executables over real files with Classic Cloud semantics."""

    def __init__(
        self,
        n_workers: int = 4,
        visibility_timeout_s: float = 30.0,
        poll_interval_s: float = 0.005,
        crash_worker_on_receive: dict[int, int] | None = None,
        timeout_s: float = 300.0,
        store: LocalBlobStore | None = None,
    ):
        """``crash_worker_on_receive`` maps worker index -> the receive
        count at which that worker dies (its in-flight message is left
        undeleted, exercising the visibility-timeout recovery path).

        With ``store`` set, task keys address objects in that blob store
        and workers download inputs to scratch / upload outputs — the
        paper's architecture.  Without it, keys are plain file paths.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.visibility_timeout_s = visibility_timeout_s
        self.poll_interval_s = poll_interval_s
        self.crash_plan = dict(crash_worker_on_receive or {})
        self.timeout_s = timeout_s
        self.store = store

    def run(self, executable: Executable, tasks: list[TaskSpec]) -> RunResult:
        """Execute every task; returns the run result with real timings."""
        if not tasks:
            raise ValueError("no tasks to run")
        queue = LocalQueue(self.visibility_timeout_s)
        for task in tasks:
            queue.send(task)
        all_ids = {t.task_id for t in tasks}
        completed: set[str] = monitor(set(), "LocalClassicCloud.completed")
        records: list[TaskRecord] = monitor([], "LocalClassicCloud.records")
        lock = monitor_lock("LocalClassicCloud.run.lock")
        done = threading.Event()
        errors: list[BaseException] = monitor(
            [], "LocalClassicCloud.errors"
        )
        # Captured on the driving thread; worker threads close over it.
        obs = _current_obs()
        tracer = obs.tracer
        start = time.monotonic()

        def worker(index: int) -> None:
            receives = 0
            crash_at = self.crash_plan.get(index)
            wait_start = time.monotonic() - start
            while not done.is_set():
                message = queue.receive()
                if message is None:
                    time.sleep(self.poll_interval_s)
                    continue
                receives += 1
                if crash_at is not None and receives >= crash_at:
                    return  # crash: message left undeleted
                task: TaskSpec = message.body
                started = time.monotonic() - start
                try:
                    t0 = time.monotonic()
                    if self.store is None:
                        _run_idempotent(executable, task)
                    else:
                        _run_via_store(executable, task, self.store, index)
                    compute = time.monotonic() - t0
                except Exception as exc:  # surface worker failures
                    with lock:
                        errors.append(exc)
                    done.set()
                    return
                deleted = queue.delete(message)
                if tracer.enabled:
                    track = f"local-{index}"
                    tracer.add(
                        "task.queue_wait", track=track, domain="wall",
                        start=wait_start, end=started, task_id=task.task_id,
                    )
                    tracer.add(
                        "task.compute", track=track, domain="wall",
                        start=t0 - start, end=t0 - start + compute,
                        task_id=task.task_id, attempt=message.receive_count,
                    )
                wait_start = time.monotonic() - start
                with lock:
                    completed.add(task.task_id)
                    records.append(
                        TaskRecord(
                            task_id=task.task_id,
                            worker=f"local-{index}",
                            started_at=started,
                            finished_at=time.monotonic() - start,
                            compute_time=compute,
                            attempt=message.receive_count,
                            was_duplicate=not deleted
                            or message.receive_count > 1,
                            won=deleted,
                        )
                    )
                    if completed == all_ids:
                        done.set()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.n_workers)
        ]
        for thread in threads:
            thread.start()
        finished = done.wait(timeout=self.timeout_s)
        done.set()
        for thread in threads:
            thread.join(timeout=5.0)
        if errors:
            raise errors[0]
        if not finished:
            raise TimeoutError(
                f"workload did not complete within {self.timeout_s}s "
                f"({len(completed)}/{len(all_ids)} tasks done)"
            )
        return RunResult(
            backend="classiccloud-local",
            app_name=executable.name,
            n_tasks=len(tasks),
            makespan_seconds=time.monotonic() - start,
            records=records,
            extras={"reappearances": float(queue.reappearances)},
        )


def _run_via_store(
    executable: Executable,
    task: TaskSpec,
    store: LocalBlobStore,
    worker_index: int,
) -> None:
    """Download → execute → upload, in per-worker scratch space.

    Mirrors the paper's worker: "retrieve the input files from the cloud
    storage ... process them using an executable program before
    uploading the results back to the cloud storage."  Duplicate
    executions are safe because uploads are atomic and deterministic.
    """
    with tempfile.TemporaryDirectory(
        prefix=f"ccworker{worker_index}."
    ) as scratch:
        scratch_path = Path(scratch)
        input_name = Path(task.input_key).name or "input"
        output_name = Path(task.output_key).name or "output"
        local_in = store.get(task.input_key, scratch_path / input_name)
        local_out = scratch_path / output_name
        executable.run(local_in, local_out)
        store.put(task.output_key, local_out)


def _run_idempotent(executable: Executable, task: TaskSpec) -> None:
    """Run the executable writing atomically to the output path.

    Duplicate executions (after a visibility timeout) may race on the
    output file; writing to a temp file and ``os.replace``-ing makes the
    final state a complete output from *some* attempt — and attempts are
    deterministic, so any attempt's output is the right one.
    """
    output_path = Path(task.output_key)
    output_path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=output_path.parent, prefix=f".{output_path.name}."
    )
    os.close(fd)
    try:
        executable.run(task.input_key, temp_name)
        os.replace(temp_name, output_path)
    finally:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
