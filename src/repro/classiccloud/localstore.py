"""A directory-backed blob store for the real Classic Cloud runtime.

The paper's workers do not touch shared files in place: they *download*
the input object from cloud storage to local scratch space, run the
executable there, and *upload* the result object.  This store gives the
local framework the same architecture — a content root addressed by
blob keys, atomic uploads, downloads into per-worker scratch — plus an
optional artificial transfer delay for experimentation.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path

from repro.lint.threadsan import monitor, monitor_lock

__all__ = ["LocalBlobStore"]


class LocalBlobStore:
    """Blob semantics over a local directory tree.

    Keys are slash-separated names mapped under the root; uploads are
    atomic (temp file + rename) so a concurrent download never observes
    a partial object — the property duplicate Classic Cloud executions
    rely on.
    """

    def __init__(self, root: str | Path, transfer_delay_s: float = 0.0):
        if transfer_delay_s < 0:
            raise ValueError("transfer_delay_s must be non-negative")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.transfer_delay_s = transfer_delay_s
        # Monitored under REPRO_SANITIZE=threads, plain otherwise.
        self._lock = monitor_lock("LocalBlobStore._lock")
        self.stats = monitor(
            {"puts": 0, "gets": 0, "deletes": 0}, "LocalBlobStore.stats"
        )

    def _path(self, key: str) -> Path:
        clean = key.strip("/")
        if not clean or ".." in clean.split("/"):
            raise ValueError(f"invalid blob key {key!r}")
        return self.root / clean

    def _delay(self) -> None:
        if self.transfer_delay_s:
            time.sleep(self.transfer_delay_s)

    # -- operations --------------------------------------------------------
    def put(self, key: str, source: str | Path) -> None:
        """Upload a local file as object ``key`` (atomic)."""
        self._delay()
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(dir=target.parent, prefix=".upload.")
        os.close(fd)
        try:
            shutil.copyfile(source, temp_name)
            os.replace(temp_name, target)
        finally:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
        with self._lock:
            self.stats["puts"] += 1

    def put_bytes(self, key: str, data: bytes) -> None:
        """Upload raw bytes as object ``key`` (atomic)."""
        self._delay()
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(dir=target.parent, prefix=".upload.")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(temp_name, target)
        finally:
            if os.path.exists(temp_name):
                os.unlink(temp_name)
        with self._lock:
            self.stats["puts"] += 1

    def get(self, key: str, destination: str | Path) -> Path:
        """Download object ``key`` to a local path; returns it."""
        self._delay()
        source = self._path(key)
        if not source.is_file():
            raise FileNotFoundError(key)
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(source, destination)
        with self._lock:
            self.stats["gets"] += 1
        return destination

    def exists(self, key: str) -> bool:
        return self._path(key).is_file()

    def delete(self, key: str) -> None:
        """Idempotent object removal."""
        try:
            self._path(key).unlink()
        except FileNotFoundError:
            pass
        with self._lock:
            self.stats["deletes"] += 1

    def list_keys(self, prefix: str = "") -> list[str]:
        """All object keys under ``prefix``, sorted."""
        keys = []
        for path in self.root.rglob("*"):
            if not path.is_file() or path.name.startswith(".upload."):
                continue
            key = path.relative_to(self.root).as_posix()
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def size(self, key: str) -> int:
        return self._path(key).stat().st_size
