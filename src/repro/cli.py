"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``catalog`` — print the instance-type tables (paper Tables 1–2) and
  cluster catalog;
* ``run`` — run one application workload on one backend and print the
  paper's metrics (Eq. 1 efficiency, Eq. 2 per-file time, cost);
* ``cost`` — the Table 4 style cloud-vs-cluster comparison for an
  arbitrary file count;
* ``bench`` — the microbenchmark suite (kernel ops + per-app sweeps),
  written to ``BENCH_3.json`` (:mod:`repro.sweep.bench`);
* ``cache`` — inspect (``stats``) or empty (``clear``) the
  content-addressed sweep result cache under ``.repro-cache/``;
* ``sweep`` — run the instance-type sweep through the worker pool;
  with ``--trace`` exports one **merged multi-process** Chrome trace
  covering the parent and every pool worker;
* ``serve`` — the sustained-traffic job service study
  (:mod:`repro.serve`): seeded multi-tenant arrival streams, admission
  control, fair-share scheduling, and the cost-vs-latency frontier;
* ``trace`` — validate and summarize a Chrome ``trace_event`` JSON
  exported by ``run --trace`` / ``sweep --trace`` (:mod:`repro.obs`);
* ``report`` — render a trace + run result + ``BENCH_*.json`` history
  as one self-contained HTML report (:mod:`repro.obs.report`);
* ``lint`` — the determinism linter over the simulation sources
  (:mod:`repro.lint`).
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.cloud.failures import FaultPlan
from repro.cloud.instance_types import AZURE_INSTANCE_TYPES, EC2_INSTANCE_TYPES
from repro.cluster import CLUSTERS, get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.report import format_table

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Cloud Computing Paradigms for Pleasingly "
            "Parallel Biomedical Applications' (Gunarathne et al., 2010)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="print instance-type and cluster catalogs")

    run_parser = sub.add_parser(
        "run", help="run a workload on a backend and print metrics"
    )
    run_parser.add_argument(
        "--app", choices=("cap3", "blast", "gtm"), default="cap3"
    )
    run_parser.add_argument(
        "--backend",
        choices=("ec2", "azure", "hadoop", "dryadlinq"),
        default="ec2",
    )
    run_parser.add_argument("--files", type=int, default=200)
    run_parser.add_argument(
        "--instances", type=int, default=None,
        help="cloud instances (default: paper setup)",
    )
    run_parser.add_argument(
        "--instance-type", default=None, help="e.g. HCXL or Small"
    )
    run_parser.add_argument(
        "--workers", type=int, default=None, help="workers per instance"
    )
    run_parser.add_argument(
        "--nodes", type=int, default=None, help="bare-metal nodes"
    )
    run_parser.add_argument(
        "--cluster", default=None, help=f"one of {sorted(CLUSTERS)}"
    )
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--inhomogeneous", action="store_true",
        help="inhomogeneous task sizes (Cap3/BLAST)",
    )
    run_parser.add_argument(
        "--sanitize", action="store_true",
        help="run on the instrumented event loop and print the "
        "sanitizer report (sets REPRO_SANITIZE=1)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes (default: REPRO_JOBS or cpu count)",
    )
    run_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the result cache under .repro-cache/",
    )
    run_parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="record spans/metrics and export a Chrome trace_event JSON "
        "(open in chrome://tracing or ui.perfetto.dev); forces an "
        "in-process, uncached run",
    )
    run_parser.add_argument(
        "--autoscale", choices=("target-tracking", "step"), default=None,
        help="run an elastic pool under this scaling policy instead of "
        "the static deployment (cloud backends only)",
    )
    run_parser.add_argument(
        "--spot-fraction", type=float, default=0.0,
        help="fraction of the elastic pool bought on the spot market "
        "(0 = all on-demand, 1 = all spot; requires --autoscale)",
    )
    run_parser.add_argument(
        "--bid-multiplier", type=float, default=0.5,
        help="spot bid as a multiple of the on-demand price",
    )
    run_parser.add_argument(
        "--min-instances", type=int, default=1,
        help="elastic pool floor (requires --autoscale)",
    )
    run_parser.add_argument(
        "--max-instances", type=int, default=16,
        help="elastic pool ceiling (requires --autoscale)",
    )
    run_parser.add_argument(
        "--billing", choices=("hourly", "per-second"), default="hourly",
        help="billing mode for the elastic pool's instances",
    )

    sweep_parser = sub.add_parser(
        "sweep",
        help="run the paper's instance-type sweep through the worker pool",
    )
    sweep_parser.add_argument(
        "--app", choices=("cap3", "blast", "gtm"), default="cap3"
    )
    sweep_parser.add_argument("--files", type=int, default=16)
    sweep_parser.add_argument("--seed", type=int, default=0)
    sweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes (default: REPRO_JOBS or cpu count)",
    )
    sweep_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the result cache under .repro-cache/",
    )
    sweep_parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="capture inside every worker process and export one merged "
        "multi-process Chrome trace_event JSON",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="sustained-traffic job service study: multi-tenant arrival "
        "streams, fair-share scheduling, cost-vs-latency frontier",
    )
    serve_parser.add_argument("--seed", type=int, default=42)
    serve_parser.add_argument(
        "--duration", type=float, default=600.0,
        help="simulated seconds the arrival window stays open",
    )
    serve_parser.add_argument(
        "--fleet", default="1,2,4", metavar="N[,N...]",
        help="comma-separated fleet sizes to study (default 1,2,4)",
    )
    serve_parser.add_argument(
        "--instance-type", default="HCXL", help="e.g. HCXL or Small"
    )
    serve_parser.add_argument(
        "--provider", choices=("aws", "azure"), default="aws"
    )
    serve_parser.add_argument(
        "--workers", type=int, default=8, help="workers per instance"
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=None,
        help="fleet points run in parallel (default: REPRO_JOBS or cpu "
        "count)",
    )
    serve_parser.add_argument(
        "--autoscale", choices=("target-tracking", "step"), default=None,
        help="autoscale each fleet point instead of keeping it static",
    )
    serve_parser.add_argument(
        "--spot-fraction", type=float, default=0.0,
        help="fraction of the elastic fleet bought on the spot market "
        "(requires --autoscale)",
    )
    serve_parser.add_argument(
        "--max-instances", type=int, default=8,
        help="elastic fleet ceiling (requires --autoscale)",
    )
    serve_parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="run fleet points in-process and export one merged Chrome "
        "trace_event JSON (one synthetic process per fleet point)",
    )
    serve_parser.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="also write the frontier rows as canonical JSON",
    )

    trace_parser = sub.add_parser(
        "trace", help="validate and summarize an exported Chrome trace"
    )
    trace_parser.add_argument(
        "trace", help="trace JSON written by 'run --trace' or 'sweep --trace'"
    )

    report_parser = sub.add_parser(
        "report",
        help="render a self-contained HTML report from a trace, a run "
        "result and the BENCH_*.json history",
    )
    report_parser.add_argument(
        "trace", help="Chrome trace JSON (from 'run --trace' or 'sweep --trace')"
    )
    report_parser.add_argument(
        "--run", default=None, metavar="RESULT.json",
        help="RunResult JSON exported via RunResult.to_json",
    )
    report_parser.add_argument(
        "--bench", nargs="*", default=None, metavar="BENCH.json",
        help="bench history files, oldest first (default: BENCH_*.json "
        "in the working directory)",
    )
    report_parser.add_argument(
        "-o", "--output", default="report.html", help="output HTML path"
    )
    report_parser.add_argument("--title", default=None)
    report_parser.add_argument(
        "--timeline-csv", default=None, metavar="OUT.csv",
        help="also write the trace's timeline counter series as CSV",
    )

    bench_parser = sub.add_parser(
        "bench", help="run the microbenchmark suite and write BENCH JSON"
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes: verify wiring in seconds, numbers not publishable",
    )
    bench_parser.add_argument(
        "--jobs", type=int, default=None,
        help="sweep worker processes (default: REPRO_JOBS or cpu count)",
    )
    bench_parser.add_argument(
        "--output", default="BENCH_3.json", help="output JSON path"
    )
    bench_parser.add_argument(
        "--gate", default=None, metavar="BASELINE",
        help="fail if kernel events/s regress past --gate-tolerance of "
        "this baseline BENCH JSON",
    )
    bench_parser.add_argument(
        "--gate-tolerance", type=float, default=0.10, metavar="FRACTION",
        help="allowed kernel events/s regression fraction (default 0.10)",
    )
    bench_parser.add_argument(
        "--compare", nargs=2, metavar=("OLD", "NEW"), default=None,
        help="compare two BENCH JSON files and print a delta table with "
        "regressions flagged (skips running the suite)",
    )

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the sweep result cache"
    )
    cache_parser.add_argument("action", choices=("stats", "clear"))
    cache_parser.add_argument(
        "--dir", default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro-cache)",
    )

    cost_parser = sub.add_parser(
        "cost", help="Table 4-style cost comparison for a Cap3 workload"
    )
    cost_parser.add_argument("--files", type=int, default=4096)
    cost_parser.add_argument("--reads-per-file", type=int, default=458)

    figures_parser = sub.add_parser(
        "figures", help="regenerate one of the paper's figures"
    )
    figures_parser.add_argument(
        "figure", nargs="?", default=None,
        help="figure id (omit to list available ids)",
    )

    analyze_parser = sub.add_parser(
        "analyze", help="analyze a trace JSON exported via RunResult.to_json"
    )
    analyze_parser.add_argument("trace", help="path to the trace JSON")
    analyze_parser.add_argument(
        "--gantt-width", type=int, default=72, help="Gantt chart width"
    )

    gendata_parser = sub.add_parser(
        "gendata", help="write a real synthetic workload to disk"
    )
    gendata_parser.add_argument(
        "--app", choices=("cap3", "blast", "gtm"), default="cap3"
    )
    gendata_parser.add_argument("directory", help="output directory")
    gendata_parser.add_argument("--files", type=int, default=8)
    gendata_parser.add_argument(
        "--size", type=int, default=None,
        help="reads per file (cap3), queries per file (blast) or points "
             "per file (gtm); app default if omitted",
    )
    gendata_parser.add_argument("--seed", type=int, default=0)

    chaos_parser = sub.add_parser(
        "chaos",
        help="deterministic fault-injection campaign: sweep fault "
        "intensity x mitigation and print the resilience report",
    )
    chaos_parser.add_argument(
        "--app", choices=("cap3", "blast", "gtm"), default="cap3"
    )
    chaos_parser.add_argument("--files", type=int, default=48)
    chaos_parser.add_argument("--instances", type=int, default=2)
    chaos_parser.add_argument(
        "--workers", type=int, default=8, help="workers per instance"
    )
    chaos_parser.add_argument("--seed", type=int, default=13)
    chaos_parser.add_argument(
        "--intensities", default="0,0.5,1", metavar="X[,X...]",
        help="comma-separated fault intensities (0 = fault-free)",
    )
    chaos_parser.add_argument(
        "--mitigations", default=None, metavar="M[,M...]",
        help="comma-separated subset of none,retry,speculation,"
        "retry+speculation (default: all four)",
    )
    chaos_parser.add_argument(
        "--horizon", type=float, default=240.0,
        help="seconds of the measured window faults are scheduled into",
    )
    chaos_parser.add_argument(
        "--jobs", type=int, default=None,
        help="campaign cells run in parallel (default: REPRO_JOBS or "
        "cpu count)",
    )
    chaos_parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the result cache under .repro-cache/",
    )
    chaos_parser.add_argument(
        "--smoke", action="store_true",
        help="1-seed PR smoke: a tiny grid (fault-free baseline plus "
        "one defended high-intensity cell), seconds of wall time",
    )
    chaos_parser.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="also write the resilience rows as canonical JSON",
    )
    chaos_parser.add_argument(
        "--trace", metavar="OUT.json", default=None,
        help="also play one traced run at the highest requested "
        "intensity (retry+speculation) and export its Chrome trace "
        "with the chaos-track instants",
    )

    docs_parser = sub.add_parser(
        "docs", help="check documentation: links resolve, code blocks run"
    )
    docs_parser.add_argument(
        "paths", nargs="*",
        help="markdown files to check (default: README.md + docs/*.md)",
    )
    docs_parser.add_argument(
        "--no-execute", action="store_true",
        help="check links only, skip running python code blocks",
    )

    from repro.lint.cli import add_lint_parser

    add_lint_parser(sub)
    return parser


def _tasks_for(app_name: str, n_files: int, inhomogeneous: bool, seed: int):
    if app_name == "cap3":
        from repro.workloads.genome import cap3_task_specs

        return cap3_task_specs(
            n_files, inhomogeneous=inhomogeneous, seed=seed
        )
    if app_name == "blast":
        from repro.workloads.protein import blast_task_specs

        return blast_task_specs(
            n_files, inhomogeneous_base=inhomogeneous, seed=seed
        )
    from repro.workloads.pubchem import gtm_task_specs

    return gtm_task_specs(n_files)


def _cmd_catalog(out) -> int:
    rows = [
        [t.name, f"{t.machine.memory_gb} GB", t.ec2_compute_units or "-",
         f"{t.machine.cores} x {t.machine.clock_ghz} GHz",
         f"${t.cost_per_hour}/h"]
        for t in EC2_INSTANCE_TYPES.values()
    ]
    print(format_table(
        ["EC2 type", "memory", "ECU", "cores", "price"], rows,
        title="Table 1: EC2 instance types",
    ), file=out)
    rows = [
        [t.name, t.machine.cores, f"{t.machine.memory_gb} GB",
         f"${t.cost_per_hour}/h"]
        for t in AZURE_INSTANCE_TYPES.values()
    ]
    print(file=out)
    print(format_table(
        ["Azure type", "cores", "memory", "price"], rows,
        title="Table 2: Azure instance types",
    ), file=out)
    rows = [
        [c.name, c.n_nodes, c.node.machine.cores,
         f"{c.node.machine.clock_ghz} GHz",
         f"{c.node.machine.memory_gb} GB", c.node.machine.os]
        for c in CLUSTERS.values()
    ]
    print(file=out)
    print(format_table(
        ["cluster", "nodes", "cores/node", "clock", "memory/node", "os"],
        rows, title="Bare-metal clusters",
    ), file=out)
    return 0


def _resolved_jobs_or_none(args, out) -> "int | None":
    """Validate the jobs policy up front so a bad ``--jobs``/``REPRO_JOBS``
    produces a one-line error instead of a traceback mid-run."""
    from repro.sweep.runner import resolve_jobs

    try:
        return resolve_jobs(getattr(args, "jobs", None))
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=out)
        return None


def _cmd_run(args, out) -> int:
    if _resolved_jobs_or_none(args, out) is None:
        return 2
    if args.sanitize:
        os.environ["REPRO_SANITIZE"] = "1"
    app = get_application(args.app)
    tasks = _tasks_for(args.app, args.files, args.inhomogeneous, args.seed)
    kwargs: dict = {"seed": args.seed}
    if args.backend in ("ec2", "azure"):
        kwargs["fault_plan"] = FaultPlan.none()
        if args.instances is not None:
            kwargs["n_instances"] = args.instances
        if args.instance_type is not None:
            kwargs["instance_type"] = args.instance_type
        if args.workers is not None:
            kwargs["workers_per_instance"] = args.workers
        if args.autoscale is not None:
            from repro.autoscale import AutoscalePlan, default_policy
            from repro.cloud.spot import BidStrategy

            kwargs["autoscale"] = AutoscalePlan(
                policy=default_policy(args.autoscale),
                min_instances=args.min_instances,
                max_instances=args.max_instances,
                bid=BidStrategy.mixed(
                    args.spot_fraction, bid_multiplier=args.bid_multiplier
                ),
                billing=args.billing,
            )
    elif args.autoscale is not None:
        print(
            "error: --autoscale requires a cloud backend (ec2 or azure)",
            file=out,
        )
        return 2
    else:
        cluster_name = args.cluster or (
            "cap3-baremetal-windows" if args.backend == "dryadlinq"
            else "cap3-baremetal"
        )
        cluster = get_cluster(cluster_name)
        if args.nodes is not None:
            cluster = cluster.subset(args.nodes)
        kwargs["cluster"] = cluster
    backend = make_backend(args.backend, **kwargs)
    from repro.sweep.cache import default_cache
    from repro.sweep.points import InlinePoint, point_for, run_inline
    from repro.sweep.runner import run_points

    obs = None
    if args.trace or args.sanitize:
        # Tracing needs the span stream of this process and the
        # sanitizer report needs the live backend's event loop, so
        # run in-process and uncached.
        point = InlinePoint(
            app=app, backend=backend, tasks=tasks, label=backend.name
        )
        if args.trace:
            from repro.obs import Observability, observe

            obs = Observability.make(label=f"{args.app}-{args.backend}")
            with observe(obs):
                r = run_inline(point)
        else:
            r = run_inline(point)
    else:
        cache = None if args.no_cache else default_cache()

        def show_progress(event) -> None:
            print(
                f"[{event.index + 1}/{event.total}] "
                f"{event.label}: {event.status}",
                file=out,
            )

        r = run_points(
            [point_for(app, backend, tasks)],
            jobs=args.jobs,
            cache=cache,
            progress=show_progress,
        )[0]
    rows = [
        ["backend", r.backend],
        ["tasks", str(r.n_tasks)],
        ["cores", str(r.cores)],
        ["makespan", f"{r.makespan_s:,.1f} s"],
        ["T1 (sequential)", f"{r.t1_s:,.1f} s"],
        ["parallel efficiency (Eq.1)",
         f"{parallel_efficiency(r.t1_s, r.makespan_s, r.cores):.3f}"],
        ["avg time/file/core (Eq.2)",
         f"{average_time_per_file_per_core(r.makespan_s, r.cores, r.n_tasks):.2f} s"],
    ]
    if r.billed:
        rows.append(
            ["compute cost (hour units)", f"${r.compute_cost:.2f}"]
        )
        rows.append(
            ["amortized total cost", f"${r.amortized_cost:.2f}"]
        )
    extras = getattr(r, "extras", {}) or {}
    if args.autoscale is not None and extras:
        rows.extend(
            [
                ["scaling events (up/down)",
                 f"{extras.get('autoscale_scale_up_events', 0):.0f} / "
                 f"{extras.get('autoscale_scale_down_events', 0):.0f}"],
                ["peak instances",
                 f"{extras.get('autoscale_peak_instances', 0):.0f}"],
                ["spot preemptions",
                 f"{extras.get('autoscale_preemptions', 0):.0f}"],
                ["spot capacity denied",
                 f"{extras.get('autoscale_spot_unavailable', 0):.0f}"],
            ]
        )
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} on {args.backend}"), file=out)
    if args.sanitize:
        env = getattr(
            getattr(backend, "_framework", None), "last_environment", None
        )
        if env is not None and hasattr(env, "sanitizer_report"):
            print(file=out)
            print("sanitizer report:", file=out)
            print(env.sanitizer_report().summary(), file=out)
    if args.trace:
        from repro.obs import summarize_chrome_trace, write_chrome_trace

        document = write_chrome_trace(args.trace, obs)
        print(file=out)
        print(summarize_chrome_trace(document), file=out)
        print(file=out)
        print(
            f"trace written to {args.trace} "
            f"({len(document['traceEvents'])} events; open in "
            "chrome://tracing or ui.perfetto.dev)",
            file=out,
        )
    return 0


def _cmd_sweep(args, out) -> int:
    if _resolved_jobs_or_none(args, out) is None:
        return 2
    from repro.sweep.cache import default_cache
    from repro.sweep.points import point_for
    from repro.sweep.runner import run_points

    app = get_application(args.app)
    tasks = _tasks_for(args.app, args.files, False, args.seed)
    shapes = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]
    points = [
        point_for(
            app,
            make_backend(
                "ec2",
                instance_type=itype,
                n_instances=n,
                workers_per_instance=w,
                fault_plan=FaultPlan.none(),
                seed=args.seed,
            ),
            tasks,
        )
        for itype, n, w in shapes
    ]
    cache = None if args.no_cache else default_cache()

    def show_progress(event) -> None:
        print(
            f"[{event.index + 1}/{event.total}] "
            f"{event.label}: {event.status}",
            file=out,
        )

    obs = None
    if args.trace:
        from repro.obs import Observability, observe

        obs = Observability.make(label=f"{args.app}-sweep")
        with observe(obs):
            results = run_points(
                points, jobs=args.jobs, cache=cache, progress=show_progress
            )
    else:
        results = run_points(
            points, jobs=args.jobs, cache=cache, progress=show_progress
        )
    rows = [
        [r.label, f"{r.makespan_s:,.1f} s", f"${r.amortized_cost:.2f}"]
        for r in results
    ]
    print(format_table(
        ["instance type", "makespan", "amortized cost"], rows,
        title=f"{args.app} sweep ({args.files} files)",
    ), file=out)
    if args.trace:
        from repro.obs import summarize_chrome_trace, write_chrome_trace

        document = write_chrome_trace(args.trace, obs)
        workers = document["otherData"].get("workers", [])
        print(file=out)
        print(summarize_chrome_trace(document), file=out)
        print(file=out)
        print(
            f"trace written to {args.trace} "
            f"({len(document['traceEvents'])} events, "
            f"{len(workers)} worker process(es) merged; open in "
            "chrome://tracing or ui.perfetto.dev)",
            file=out,
        )
    return 0


def _cmd_serve(args, out) -> int:
    if _resolved_jobs_or_none(args, out) is None:
        return 2
    from repro.serve import (
        ServeConfig,
        default_tenants,
        frontier_rows,
        render_frontier,
        run_serve,
        serialize_rows,
        serve_study,
    )

    try:
        fleet_sizes = tuple(
            int(piece) for piece in args.fleet.split(",") if piece.strip()
        )
    except ValueError:
        print(f"error: --fleet must be integers, got {args.fleet!r}", file=out)
        return 2
    if not fleet_sizes:
        print("error: --fleet must name at least one fleet size", file=out)
        return 2
    autoscale = None
    if args.autoscale is not None:
        from repro.autoscale import AutoscalePlan, default_policy
        from repro.cloud.spot import BidStrategy

        autoscale = AutoscalePlan(
            policy=default_policy(args.autoscale),
            min_instances=1,
            max_instances=args.max_instances,
            bid=BidStrategy.mixed(args.spot_fraction),
        )
    if args.trace:
        # Tracing needs each point's span stream: run the points
        # in-process sequentially, each in a private bundle adopted as
        # one synthetic worker process of the merged export.
        from repro.obs import Observability, observe
        from repro.obs.context import worker_payload

        obs = Observability.make(label="serve-study")
        results = []
        for n in fleet_sizes:
            config = ServeConfig(
                tenants=default_tenants(),
                provider=args.provider,
                instance_type=args.instance_type,
                n_instances=n,
                workers_per_instance=args.workers,
                duration_s=args.duration,
                seed=args.seed,
                autoscale=autoscale,
            )
            label = f"serve-fleet-{n}"
            child = Observability.make(label=label)
            with observe(child):
                results.append(run_serve(config))
            obs.adopt_worker(worker_payload(child, label=label))
        rows = frontier_rows(results)
    else:
        rows, results = serve_study(
            fleet_sizes,
            provider=args.provider,
            instance_type=args.instance_type,
            workers_per_instance=args.workers,
            duration_s=args.duration,
            seed=args.seed,
            autoscale=autoscale,
            jobs=args.jobs,
        )
    print(render_frontier(rows), file=out)
    for result in results:
        if result.abandoned or result.duplicates:
            print(
                f"fleet {result.n_instances}: {result.abandoned} abandoned, "
                f"{result.duplicates} duplicate execution(s)",
                file=out,
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(serialize_rows(rows) + "\n")
        print(f"frontier rows written to {args.json}", file=out)
    if args.trace:
        from repro.obs import summarize_chrome_trace, write_chrome_trace

        document = write_chrome_trace(args.trace, obs)
        workers = document["otherData"].get("workers", [])
        print(file=out)
        print(summarize_chrome_trace(document), file=out)
        print(file=out)
        print(
            f"trace written to {args.trace} "
            f"({len(document['traceEvents'])} events, "
            f"{len(workers)} fleet point(s) merged; open in "
            "chrome://tracing or ui.perfetto.dev)",
            file=out,
        )
    return 0


def _cmd_report(args, out) -> int:
    import json
    from glob import glob

    from repro.obs import series_from_trace, validate_chrome_trace
    from repro.obs.report import write_report

    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        print(f"error: no such trace {args.trace!r}", file=out)
        return 2
    except ValueError as exc:
        print(f"error: {args.trace} is not JSON: {exc}", file=out)
        return 2
    errors = validate_chrome_trace(document)
    if errors:
        print(f"{args.trace}: invalid Chrome trace", file=out)
        for error in errors:
            print(f"  - {error}", file=out)
        return 2
    run = None
    if args.run:
        try:
            with open(args.run, encoding="utf-8") as handle:
                run = json.load(handle)
        except FileNotFoundError:
            print(f"error: no such run result {args.run!r}", file=out)
            return 2
    bench_paths = (
        args.bench if args.bench is not None else sorted(glob("BENCH_*.json"))
    )
    history = []
    for path in bench_paths:
        try:
            with open(path, encoding="utf-8") as handle:
                history.append((os.path.basename(path), json.load(handle)))
        except FileNotFoundError:
            print(f"error: no such bench file {path!r}", file=out)
            return 2
        except ValueError as exc:
            print(f"error: {path} is not JSON: {exc}", file=out)
            return 2
    title = args.title or f"repro report — {os.path.basename(args.trace)}"
    write_report(
        args.output, document, run=run, bench_history=history, title=title
    )
    print(
        f"report written to {args.output} (self-contained HTML; "
        f"trace {args.trace}, {len(history)} bench file(s))",
        file=out,
    )
    if args.timeline_csv:
        series = series_from_trace(document)
        lines = ["series,time_s,value"]
        for name in sorted(series):
            for ts, value in series[name]:
                lines.append(f"{name},{ts:.9g},{value:.9g}")
        with open(args.timeline_csv, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(
            f"timeline CSV written to {args.timeline_csv} "
            f"({len(lines) - 1} samples)",
            file=out,
        )
    return 0


def _cmd_trace(args, out) -> int:
    import json

    from repro.obs import summarize_chrome_trace, validate_chrome_trace

    try:
        with open(args.trace, encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        print(f"error: no such trace {args.trace!r}", file=out)
        return 2
    except ValueError as exc:
        print(f"error: {args.trace} is not JSON: {exc}", file=out)
        return 2
    errors = validate_chrome_trace(document)
    if errors:
        print(f"{args.trace}: invalid Chrome trace", file=out)
        for error in errors:
            print(f"  - {error}", file=out)
        return 2
    print(f"{args.trace}: valid Chrome trace", file=out)
    print(file=out)
    print(summarize_chrome_trace(document), file=out)
    return 0


def _cmd_cost(args, out) -> int:
    from repro.core.cost import cloud_vs_cluster
    from repro.workloads.genome import cap3_task_specs

    app = get_application("cap3")
    tasks = cap3_task_specs(args.files, reads_per_file=args.reads_per_file)
    ec2 = make_backend(
        "ec2", n_instances=16, fault_plan=FaultPlan.none(), perf_jitter=0.0
    ).run(app, tasks)
    azure = make_backend(
        "azure", n_instances=128, fault_plan=FaultPlan.none(), perf_jitter=0.0
    ).run(app, tasks)
    hadoop = make_backend("hadoop", cluster=get_cluster("internal-tco")).run(
        app, tasks
    )
    comparison = cloud_vs_cluster(
        aws_report=ec2.billing,
        azure_report=azure.billing,
        cluster_wall_hours=hadoop.makespan_seconds / 3600.0,
    )
    print(format_table(
        ["", "Amazon Web Services", "Azure"], comparison.table4_rows(),
        title=f"Cost comparison ({args.files} FASTA files)",
    ), file=out)
    print(file=out)
    print(format_table(
        ["internal cluster", "cost"], comparison.cluster_rows(),
    ), file=out)
    return 0


def _cmd_bench(args, out) -> int:
    if args.compare is not None:
        import json

        from repro.obs.report import bench_compare, format_bench_compare

        docs = []
        for path in args.compare:
            try:
                with open(path, encoding="utf-8") as handle:
                    docs.append(json.load(handle))
            except FileNotFoundError:
                print(f"error: no such bench file {path!r}", file=out)
                return 2
            except ValueError as exc:
                print(f"error: {path} is not JSON: {exc}", file=out)
                return 2
        rows = bench_compare(docs[0], docs[1], tolerance=args.gate_tolerance)
        print(
            format_bench_compare(
                rows,
                os.path.basename(args.compare[0]),
                os.path.basename(args.compare[1]),
            ),
            file=out,
        )
        return 0
    if _resolved_jobs_or_none(args, out) is None:
        return 2
    from repro.sweep.bench import main as bench_main

    return bench_main(args, out)


def _cmd_cache(args, out) -> int:
    from repro.sweep.cache import DEFAULT_CACHE_DIRNAME, ResultCache

    root = args.dir or os.environ.get(
        "REPRO_CACHE_DIR"
    ) or DEFAULT_CACHE_DIRNAME
    cache = ResultCache(root)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {root}", file=out)
        return 0
    stats = cache.stats()
    print(f"cache at {root}", file=out)
    print(stats.summary(), file=out)
    return 0


def _cmd_figures(args, out) -> int:
    from repro.figures import available_figures, render_figure

    if args.figure is None:
        print("available figures:", ", ".join(available_figures()), file=out)
        return 0
    try:
        print(render_figure(args.figure), file=out)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=out)
        return 2
    return 0


def _cmd_analyze(args, out) -> int:
    from repro.core.analysis import (
        gantt_text,
        load_balance_index,
        phase_breakdown,
        worker_utilization,
    )
    from repro.core.task import RunResult

    try:
        result = RunResult.from_json(args.trace)
    except FileNotFoundError:
        print(f"error: no such trace {args.trace!r}", file=out)
        return 2
    rows = [
        ["backend", result.backend],
        ["tasks", str(result.n_tasks)],
        ["makespan", f"{result.makespan_seconds:,.1f} s"],
        ["duplicate executions", str(result.duplicate_executions)],
        ["load balance (max/mean)", f"{load_balance_index(result):.3f}"],
    ]
    for phase, fraction in phase_breakdown(result).items():
        rows.append([f"time in {phase}", f"{100 * fraction:.1f}%"])
    utilization = worker_utilization(result)
    if utilization:
        rows.append(
            ["worker utilization",
             f"min {min(utilization.values()):.2f} / "
             f"max {max(utilization.values()):.2f}"]
        )
    print(format_table(["metric", "value"], rows,
                       title=f"trace: {args.trace}"), file=out)
    print(file=out)
    print(gantt_text(result, width=args.gantt_width), file=out)
    return 0


def _cmd_gendata(args, out) -> int:
    if args.app == "cap3":
        from repro.workloads.genome import write_cap3_workload

        specs = write_cap3_workload(
            args.directory,
            n_files=args.files,
            reads_per_file=args.size or 24,
            seed=args.seed,
        )
        extra = ""
    elif args.app == "blast":
        from repro.workloads.protein import write_blast_workload

        specs, db = write_blast_workload(
            args.directory,
            n_files=args.files,
            queries_per_file=args.size or 10,
            seed=args.seed,
        )
        extra = f" (database: {len(db)} sequences, in memory only)"
    else:
        from repro.workloads.pubchem import write_gtm_workload

        specs, sample = write_gtm_workload(
            args.directory,
            n_files=args.files,
            points_per_file=args.size or 500,
            seed=args.seed,
        )
        extra = f" (training sample: {sample.shape[0]} points)"
    total_bytes = sum(s.input_size for s in specs)
    print(
        f"wrote {len(specs)} {args.app} input files "
        f"({total_bytes:,} bytes) under {args.directory}{extra}",
        file=out,
    )
    return 0


def _cmd_chaos(args, out) -> int:
    if _resolved_jobs_or_none(args, out) is None:
        return 2
    from repro.chaos import (
        CAMPAIGN_MITIGATIONS,
        chaos_study,
        render_resilience,
        serialize_rows,
    )

    try:
        intensities = tuple(
            float(piece)
            for piece in args.intensities.split(",")
            if piece.strip()
        )
    except ValueError:
        print(
            f"error: --intensities must be numbers, got "
            f"{args.intensities!r}",
            file=out,
        )
        return 2
    mitigations = CAMPAIGN_MITIGATIONS
    if args.mitigations is not None:
        mitigations = tuple(
            piece.strip()
            for piece in args.mitigations.split(",")
            if piece.strip()
        )
        unknown = [m for m in mitigations if m not in CAMPAIGN_MITIGATIONS]
        if unknown or not mitigations:
            print(
                f"error: unknown mitigation(s) {unknown}; "
                f"choose from {list(CAMPAIGN_MITIGATIONS)}",
                file=out,
            )
            return 2
    n_files = args.files
    horizon = args.horizon
    if args.smoke:
        # The PR gate: one seed, the fault-free baseline plus a single
        # defended high-intensity cell — seconds, not minutes.  The
        # shrunk horizon keeps the fault schedule inside the shorter
        # smoke run.
        n_files = min(n_files, 16)
        intensities = (0.0, 1.0)
        mitigations = ("none", "retry+speculation")
        horizon = min(horizon, 90.0)
    cache = None
    if not args.no_cache:
        from repro.sweep import default_cache

        cache = default_cache()
    rows = chaos_study(
        apps=(args.app,),
        intensities=intensities,
        mitigations=mitigations,
        n_files=n_files,
        n_instances=args.instances,
        workers_per_instance=args.workers,
        seed=args.seed,
        horizon_s=horizon,
        jobs=args.jobs,
        cache=cache,
    )
    print(render_resilience(rows), file=out)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(serialize_rows(rows) + "\n")
        print(f"resilience rows written to {args.json}", file=out)
    if args.trace:
        from repro.chaos import ChaosPlan, mitigation_settings
        from repro.core.application import get_application
        from repro.core.backends import make_backend
        from repro.obs import (
            Observability,
            observe,
            summarize_chrome_trace,
            write_chrome_trace,
        )

        intensity = max(intensities) if intensities else 1.0
        retry, speculation = mitigation_settings("retry+speculation")
        backend = make_backend(
            "ec2",
            n_instances=args.instances,
            workers_per_instance=args.workers,
            seed=args.seed,
            chaos=ChaosPlan.at_intensity(
                intensity, seed=args.seed, horizon_s=horizon
            ),
            retry_policy=retry,
            speculation=speculation,
        )
        obs = Observability.make(label=f"chaos-{args.app}")
        with observe(obs):
            backend.run(
                get_application(args.app),
                _tasks_for(args.app, n_files, False, args.seed),
            )
        document = write_chrome_trace(args.trace, obs)
        print(file=out)
        print(summarize_chrome_trace(document), file=out)
        print(
            f"trace written to {args.trace} "
            f"({len(document['traceEvents'])} events; open in "
            "chrome://tracing or ui.perfetto.dev)",
            file=out,
        )
    return 0


def _cmd_docs(args, out) -> int:
    from repro.lint.docscheck import check_docs

    result = check_docs(
        paths=args.paths or None, execute=not args.no_execute
    )
    print(result.render(), file=out)
    return 0 if result.ok else 1


def main(argv: list[str] | None = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "catalog":
        return _cmd_catalog(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "sweep":
        return _cmd_sweep(args, out)
    if args.command == "serve":
        return _cmd_serve(args, out)
    if args.command == "trace":
        return _cmd_trace(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "cost":
        return _cmd_cost(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    if args.command == "cache":
        return _cmd_cache(args, out)
    if args.command == "figures":
        return _cmd_figures(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "gendata":
        return _cmd_gendata(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "docs":
        return _cmd_docs(args, out)
    if args.command == "lint":
        from repro.lint.cli import cmd_lint

        return cmd_lint(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")
