"""Simulated cloud infrastructure services (IaaS substrate).

Models the pieces of Amazon Web Services and Microsoft Windows Azure that
the paper's Classic Cloud framework is built on:

* :mod:`repro.cloud.instance_types` — the EC2 (Table 1) and Azure (Table 2)
  instance catalogs with a calibrated machine model per type.
* :mod:`repro.cloud.storage` — S3 / Azure Blob storage with request latency,
  transfer bandwidth, eventual consistency and per-request/per-GB metering.
* :mod:`repro.cloud.queue` — SQS / Azure Queue with visibility timeouts,
  at-least-once unordered delivery and eventual consistency.
* :mod:`repro.cloud.compute` — VM provisioning with hourly billing and
  per-instance performance jitter.
* :mod:`repro.cloud.billing` — cost aggregation (compute, amortized,
  storage, queue, transfer).
* :mod:`repro.cloud.failures` — fault-injection plans for workers, messages
  and storage.
* :mod:`repro.cloud.spot` — the seeded spot-price market and bid
  strategies behind :mod:`repro.autoscale`.
"""

from repro.cloud.billing import (
    PER_SECOND_MINIMUM_S,
    BillingReport,
    CostMeter,
    InstanceUsage,
)
from repro.cloud.compute import CloudProvider, VmInstance
from repro.cloud.deployment import (
    AZURE_DEPLOYMENT,
    EC2_DEPLOYMENT,
    DeploymentModel,
    DeploymentStep,
    preparation_cost,
)
from repro.cloud.failures import FaultPlan
from repro.cloud.instance_types import (
    AZURE_INSTANCE_TYPES,
    EC2_INSTANCE_TYPES,
    InstanceType,
    MachineModel,
    get_instance_type,
)
from repro.cloud.pricing import AWS_PRICES, AZURE_PRICES, PriceBook
from repro.cloud.queue import Message, MessageQueue, QueueStats
from repro.cloud.spot import BidStrategy, SpotMarketModel, SpotPriceTrace
from repro.cloud.storage import (
    BlobNotFound,
    BlobObject,
    BlobStore,
    StorageUnavailable,
)

__all__ = [
    "AWS_PRICES",
    "AZURE_DEPLOYMENT",
    "AZURE_INSTANCE_TYPES",
    "AZURE_PRICES",
    "BidStrategy",
    "BillingReport",
    "DeploymentModel",
    "DeploymentStep",
    "EC2_DEPLOYMENT",
    "preparation_cost",
    "BlobNotFound",
    "BlobObject",
    "BlobStore",
    "CloudProvider",
    "CostMeter",
    "EC2_INSTANCE_TYPES",
    "FaultPlan",
    "InstanceType",
    "InstanceUsage",
    "MachineModel",
    "Message",
    "MessageQueue",
    "PER_SECOND_MINIMUM_S",
    "PriceBook",
    "QueueStats",
    "SpotMarketModel",
    "SpotPriceTrace",
    "StorageUnavailable",
    "VmInstance",
    "get_instance_type",
]
