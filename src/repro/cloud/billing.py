"""Cost metering and billing reports.

Two compute-cost views, following the paper's Evaluation Methodology:

* **Compute cost (hour units)** — instances are billed by the full hour:
  the computation pays for every started hour even if it finishes early.
* **Amortized cost** — the computation pays only for the fraction of the
  hour it actually used (assumes the remainder does other useful work).

Elastic pools (:mod:`repro.autoscale`) add two wrinkles, recorded per
instance lifetime:

* ``billing="per-second"`` — modern per-second accounting with a
  :data:`PER_SECOND_MINIMUM_S` minimum charge, instead of ceil-to-hour;
* ``preempted=True`` — a *provider-initiated* spot preemption forgives
  the interrupted partial hour under hourly billing (the classic EC2
  spot rule: you never pay for the hour the provider took back, so a
  preemption inside the first hour is free).  Per-second billing charges
  the seconds actually used either way.

Because of that forgiveness, the full-hour compute cost of a preempted
spot instance can legitimately be *below* its amortized cost — the
provider eats the difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cloud.pricing import PriceBook

__all__ = [
    "BillingReport",
    "CostMeter",
    "InstanceUsage",
    "PER_SECOND_MINIMUM_S",
]

#: Minimum charge under per-second billing (the providers' 60-second
#: floor for Linux instances).
PER_SECOND_MINIMUM_S = 60.0


@dataclass(frozen=True)
class InstanceUsage:
    """One instance lifetime as the meter saw it."""

    type_name: str
    seconds: float
    rate_per_hour: float
    billing: str = "hourly"  # "hourly" | "per-second"
    preempted: bool = False  # provider-initiated spot preemption

    def __post_init__(self) -> None:
        if self.billing not in ("hourly", "per-second"):
            raise ValueError(f"unknown billing mode {self.billing!r}")

    def billed_hours(self) -> float:
        """Hours charged for this lifetime under its billing mode."""
        hours = self.seconds / 3600.0
        if self.billing == "per-second":
            return max(self.seconds, PER_SECOND_MINIMUM_S) / 3600.0
        if self.preempted:
            # Interrupted partial hour forgiven; preemption within the
            # first hour is free.
            return float(math.floor(hours))
        # A started hour is a billed hour; zero-uptime instances still
        # pay for their first hour.
        return float(math.ceil(hours)) if hours > 0 else 1.0


@dataclass
class CostMeter:
    """Accumulates billable usage for one simulated run."""

    price_book: PriceBook
    queue_requests: int = 0
    storage_requests: int = 0
    bytes_stored: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    # One record per instance lifetime; rounding happens per instance,
    # as the providers bill.
    instance_usage: list[InstanceUsage] = field(default_factory=list)

    def record_queue_request(self, count: int = 1) -> None:
        """Meter ``count`` queue API calls."""
        self.queue_requests += count

    def record_storage_request(self, count: int = 1) -> None:
        """Meter ``count`` blob API calls."""
        self.storage_requests += count

    def record_transfer(self, bytes_in: int = 0, bytes_out: int = 0) -> None:
        """Meter ingress/egress bytes (relative to the cloud)."""
        self.bytes_in += bytes_in
        self.bytes_out += bytes_out

    def record_stored(self, n_bytes: int) -> None:
        """Meter bytes resident in blob storage (for GB-month charges)."""
        self.bytes_stored += n_bytes

    def record_instance_usage(
        self,
        type_name: str,
        seconds: float,
        rate_per_hour: float,
        billing: str = "hourly",
        preempted: bool = False,
    ) -> None:
        """Meter ``seconds`` of uptime on one instance of ``type_name``.

        ``billing`` selects ceil-to-hour (``"hourly"``, the paper's
        rule) or ``"per-second"`` accounting; ``preempted`` marks a
        provider-initiated spot preemption (partial-hour forgiveness
        under hourly billing).
        """
        self.instance_usage.append(
            InstanceUsage(
                type_name=type_name,
                seconds=seconds,
                rate_per_hour=rate_per_hour,
                billing=billing,
                preempted=preempted,
            )
        )

    def report(self, storage_months: float = 1.0) -> "BillingReport":
        """Summarize metered usage into dollar figures."""
        compute_hours = 0.0
        compute_cost = 0.0
        amortized_cost = 0.0
        for usage in self.instance_usage:
            billed = usage.billed_hours()
            compute_hours += billed
            compute_cost += billed * usage.rate_per_hour
            amortized_cost += usage.seconds / 3600.0 * usage.rate_per_hour
        gb = 1024.0**3
        return BillingReport(
            compute_hour_units=compute_hours,
            compute_cost=compute_cost,
            amortized_compute_cost=amortized_cost,
            queue_cost=self.price_book.queue_cost(self.queue_requests),
            storage_cost=self.price_book.storage_cost(
                self.bytes_stored / gb, storage_months
            )
            + self.storage_requests * self.price_book.storage_request_price,
            transfer_cost=self.price_book.transfer_cost(
                self.bytes_in / gb, self.bytes_out / gb
            ),
            queue_requests=self.queue_requests,
            storage_requests=self.storage_requests,
        )


@dataclass(frozen=True)
class BillingReport:
    """Dollar totals for one run (the paper's Table 4 row shape)."""

    compute_hour_units: float
    compute_cost: float
    amortized_compute_cost: float
    queue_cost: float
    storage_cost: float
    transfer_cost: float
    queue_requests: int
    storage_requests: int

    @property
    def total_cost(self) -> float:
        """Full-hour compute plus all service costs."""
        return (
            self.compute_cost + self.queue_cost + self.storage_cost
            + self.transfer_cost
        )

    @property
    def total_amortized_cost(self) -> float:
        """Fractional-hour compute plus all service costs."""
        return (
            self.amortized_compute_cost + self.queue_cost + self.storage_cost
            + self.transfer_cost
        )

    def rows(self) -> list[tuple[str, float]]:
        """Line items in Table 4 order."""
        return [
            ("Compute Cost", self.compute_cost),
            ("Queue messages", self.queue_cost),
            ("Storage", self.storage_cost),
            ("Data transfer in/out", self.transfer_cost),
            ("Total Cost", self.total_cost),
        ]
