"""Simulated VM compute service (EC2 / Azure Compute).

Instances boot with a provider-dependent delay, run with a small
per-instance performance jitter (the sustained-performance study in
Gunarathne et al. [12] measured std-dev 1.56 % on AWS and 2.25 % on
Azure), and are billed by the full wall-clock hour from boot to
termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro.cloud.billing import CostMeter
from repro.cloud.instance_types import InstanceType
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment
from repro.sim.resources import Resource

__all__ = ["CloudProvider", "VmInstance"]

# Measured relative std-dev of sustained performance per provider.
_PERF_JITTER_STDDEV = {"aws": 0.0156, "azure": 0.0225}
_BOOT_TIME_S = {"aws": 90.0, "azure": 150.0}


@dataclass
class VmInstance:
    """One running virtual machine."""

    instance_id: str
    instance_type: InstanceType
    env: Environment
    speed_factor: float
    launched_at: float
    cores: Resource = field(init=False)
    terminated_at: float | None = None
    #: Capacity market: "on-demand" (the paper's setup) or "spot".
    market: str = "on-demand"
    #: Hourly rate override (spot price at launch); None bills the
    #: instance type's on-demand price.
    price_per_hour: float | None = None
    #: Accounting mode handed to the meter: "hourly" | "per-second".
    billing: str = "hourly"
    #: Scale-in signal: workers on a draining host stop taking new
    #: tasks and exit, after which the autoscaler terminates the VM.
    draining: bool = False
    #: Set when the provider reclaimed this (spot) instance.
    preempted: bool = False

    def __post_init__(self) -> None:
        self.cores = Resource(self.env, capacity=self.instance_type.machine.cores)

    @property
    def machine(self):
        """The underlying hardware model."""
        return self.instance_type.machine

    @property
    def is_running(self) -> bool:
        return self.terminated_at is None

    @property
    def hourly_rate(self) -> float:
        """The rate this instance is metered at ($/hour)."""
        if self.price_per_hour is not None:
            return self.price_per_hour
        return self.instance_type.cost_per_hour

    def effective_clock_ghz(self) -> float:
        """Clock rate adjusted by this instance's performance jitter."""
        return self.machine.clock_ghz * self.speed_factor

    def uptime(self) -> float:
        """Seconds from launch until termination (or now)."""
        end = self.terminated_at if self.terminated_at is not None else self.env.now
        return max(0.0, end - self.launched_at)


class CloudProvider:
    """Provisions and terminates VMs, metering their billable hours."""

    def __init__(
        self,
        env: Environment,
        provider: str,
        rng: np.random.Generator,
        meter: CostMeter | None = None,
        boot_time_s: float | None = None,
        perf_jitter: float | None = None,
    ):
        if provider not in ("aws", "azure"):
            raise ValueError(f"unknown provider {provider!r}")
        self.env = env
        self.provider = provider
        self.rng = rng
        self.meter = meter
        self.boot_time_s = (
            _BOOT_TIME_S[provider] if boot_time_s is None else boot_time_s
        )
        self.perf_jitter = (
            _PERF_JITTER_STDDEV[provider] if perf_jitter is None else perf_jitter
        )
        self.instances: list[VmInstance] = []
        self._counter = 0
        obs = _current_obs()
        self._tracer = obs.tracer
        self._m_provisioned = obs.metrics.counter(
            f"compute.{provider}.instances_provisioned"
        )
        self._m_terminated = obs.metrics.counter(
            f"compute.{provider}.instances_terminated"
        )
        self._m_boot = obs.metrics.histogram(f"compute.{provider}.boot_seconds")

    def provision(
        self,
        instance_type: InstanceType,
        count: int,
        market: str = "on-demand",
        price_per_hour: float | None = None,
        billing: str = "hourly",
    ) -> Generator:
        """Boot ``count`` instances of ``instance_type`` (process).

        All instances boot concurrently; the process completes when the
        slowest is up.  Returns the list of :class:`VmInstance`.

        ``market`` / ``price_per_hour`` / ``billing`` tag the whole
        batch for the meter: spot instances carry the market price in
        effect at launch, and elastic pools may opt into per-second
        accounting (:mod:`repro.cloud.billing`).
        """
        if market not in ("on-demand", "spot"):
            raise ValueError(f"unknown market {market!r}")
        if instance_type.provider != self.provider:
            raise ValueError(
                f"{instance_type.name} belongs to {instance_type.provider}, "
                f"not {self.provider}"
            )
        if count < 1:
            raise ValueError("count must be >= 1")
        # Boot times are mildly variable; take the max across the fleet.
        boot_times = self.boot_time_s * self.rng.uniform(0.8, 1.4, size=count)
        boot_start = self.env.now
        yield self.env.timeout(float(boot_times.max()) if count else 0.0)
        self._tracer.add(
            "compute.provision",
            track=f"provider.{self.provider}",
            start=boot_start,
            end=self.env.now,
            count=count,
            instance_type=instance_type.name,
        )
        self._m_provisioned.inc(count)
        self._m_boot.observe(self.env.now - boot_start)
        batch: list[VmInstance] = []
        for _ in range(count):
            self._counter += 1
            jitter = 1.0 + self.perf_jitter * float(self.rng.standard_normal())
            instance = VmInstance(
                instance_id=f"{self.provider}-{instance_type.name}-{self._counter}",
                instance_type=instance_type,
                env=self.env,
                speed_factor=max(0.5, jitter),
                launched_at=self.env.now,
                market=market,
                price_per_hour=price_per_hour,
                billing=billing,
            )
            self.instances.append(instance)
            batch.append(instance)
        return batch

    def terminate(self, instance: VmInstance, preempted: bool = False) -> None:
        """Stop an instance and meter its billable uptime.

        ``preempted=True`` records a provider-initiated spot preemption:
        under hourly billing the interrupted partial hour is forgiven
        (:class:`~repro.cloud.billing.InstanceUsage`).
        """
        if not instance.is_running:
            raise ValueError(f"{instance.instance_id} already terminated")
        instance.terminated_at = self.env.now
        instance.preempted = preempted
        self._m_terminated.inc()
        if self.meter is not None:
            self.meter.record_instance_usage(
                instance.instance_type.name,
                instance.uptime(),
                instance.hourly_rate,
                billing=instance.billing,
                preempted=preempted,
            )

    def terminate_all(self) -> None:
        """Stop every still-running instance."""
        for instance in self.instances:
            if instance.is_running:
                self.terminate(instance)
