"""Deployment-effort models (paper Section 2.4 and the §4.3 footnote).

The paper's usability discussion is qualitative: "The deployment process
was easier with Azure as opposed to EC2, in which we had to manually
create instances, install software and start the worker instances", and
§4.3 notes "there would also be additional costs in the cloud
environments for the instance time required for environment
preparation".  This module makes both quantitative: per-provider
deployment pipelines with manual/automated steps, wall time, and the
billable instance-time cost of preparation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance_types import InstanceType

__all__ = [
    "AZURE_DEPLOYMENT",
    "EC2_DEPLOYMENT",
    "DeploymentModel",
    "DeploymentStep",
    "preparation_cost",
]


@dataclass(frozen=True)
class DeploymentStep:
    """One step of getting workers running."""

    name: str
    seconds: float
    manual: bool  # requires a human in the loop
    per_instance: bool = False  # repeats for every instance
    on_instance_clock: bool = False  # instance is booted (billable) during it

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("seconds must be non-negative")


@dataclass(frozen=True)
class DeploymentModel:
    """A provider's end-to-end deployment pipeline."""

    provider: str
    steps: tuple[DeploymentStep, ...]

    def total_seconds(self, n_instances: int) -> float:
        """Wall time to deploy ``n_instances`` workers.

        Per-instance manual steps serialize on the operator; per-instance
        automated steps run in parallel across instances.
        """
        if n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        total = 0.0
        for step in self.steps:
            if step.per_instance and step.manual:
                total += step.seconds * n_instances
            else:
                total += step.seconds
        return total

    def manual_seconds(self, n_instances: int) -> float:
        """Operator attention required (the usability metric)."""
        if n_instances < 1:
            raise ValueError("n_instances must be >= 1")
        return sum(
            step.seconds * (n_instances if step.per_instance else 1)
            for step in self.steps
            if step.manual
        )

    def billable_seconds(self, n_instances: int) -> float:
        """Instance-clock time consumed by preparation (per instance)."""
        del n_instances  # same per instance; kept for interface symmetry
        return sum(
            step.seconds for step in self.steps if step.on_instance_clock
        )

    @property
    def manual_step_count(self) -> int:
        return sum(1 for step in self.steps if step.manual)


# EC2 (paper §2.4): manual instance creation, software install, worker
# startup — flexible but operator-heavy.  An AMI snapshot amortizes the
# software install, but the paper's workflow still SSHes around.
EC2_DEPLOYMENT = DeploymentModel(
    provider="aws",
    steps=(
        DeploymentStep("build AMI with executables", 1800.0, manual=True),
        DeploymentStep("launch instances", 120.0, manual=True),
        DeploymentStep(
            "instance boot", 90.0, manual=False, on_instance_clock=True
        ),
        DeploymentStep(
            "ssh in, start worker daemon", 60.0, manual=True, per_instance=True,
            on_instance_clock=True,
        ),
    ),
)

# Azure (paper §2.4): package once in Visual Studio, upload, and the
# fabric controller does the rest — fewer manual steps, slower rollout.
AZURE_DEPLOYMENT = DeploymentModel(
    provider="azure",
    steps=(
        DeploymentStep("build deployment package", 600.0, manual=True),
        DeploymentStep("upload package via portal", 300.0, manual=True),
        DeploymentStep(
            "fabric provisions and starts roles", 600.0, manual=False,
            on_instance_clock=True,
        ),
    ),
)


def preparation_cost(
    model: DeploymentModel, instance_type: InstanceType, n_instances: int
) -> float:
    """Dollar cost of preparation instance-time (§4.3's 'additional
    costs ... for environment preparation'), billed by started hours."""
    import math

    if instance_type.provider != model.provider:
        raise ValueError(
            f"{instance_type.name} is {instance_type.provider}, "
            f"model is {model.provider}"
        )
    hours = model.billable_seconds(n_instances) / 3600.0
    billed = math.ceil(hours) if hours > 0 else 0
    return billed * instance_type.cost_per_hour * n_instances
