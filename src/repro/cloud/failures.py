"""Fault-injection plans for resilience experiments.

The Classic Cloud framework's fault-tolerance claim is that a worker crash
mid-task loses nothing: the task's queue message reappears after the
visibility timeout and another worker re-executes it, idempotently.  A
:class:`FaultPlan` lets tests and ablation benches schedule exactly such
crashes, plus storage/message-level misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["FaultPlan", "WorkerCrash"]


@dataclass(frozen=True)
class WorkerCrash:
    """Kill one worker at a simulated time.

    ``worker_index`` is the global worker index (instance-major order);
    ``at_time`` is simulated seconds from the start of the run.  If
    ``restart_after`` is not None, a replacement worker starts that many
    seconds after the crash (modelling instance replacement).
    """

    worker_index: int
    at_time: float
    restart_after: float | None = None


@dataclass
class FaultPlan:
    """Everything that can go wrong during a run.

    The bare constructor is **fault-free**: ``FaultPlan()`` injects
    nothing.  Historically it defaulted to a 2 % queue-miss rate, which
    silently perturbed runs that never asked for faults; that
    paper-calibrated rate now lives in :meth:`paper_default`.
    """

    worker_crashes: list[WorkerCrash] = field(default_factory=list)
    message_duplicate_probability: float = 0.0
    queue_miss_probability: float = 0.0
    storage_error_rate: float = 0.0
    # Straggler injection: each task independently becomes this many times
    # slower with the given probability (exercises speculative execution).
    straggler_probability: float = 0.0
    straggler_slowdown: float = 5.0
    # Poison tasks: executing one of these kills the worker outright
    # (the input crashes the program).  Idempotent re-execution cannot
    # fix these — only a dead-letter redrive policy bounds them.
    poison_task_ids: frozenset[str] = frozenset()
    poison_restart_s: float = 30.0  # replacement worker delay

    def crashes_for(self, worker_index: int) -> list[WorkerCrash]:
        """Crashes scheduled against one worker, in time order."""
        return sorted(
            (c for c in self.worker_crashes if c.worker_index == worker_index),
            key=lambda c: c.at_time,
        )

    @staticmethod
    def none() -> "FaultPlan":
        """A plan with no injected faults.

        Since the bare constructor became fault-free this is an alias
        for ``FaultPlan()``, kept for explicitness at call sites.
        """
        return FaultPlan()

    @staticmethod
    def paper_default() -> "FaultPlan":
        """The paper-calibrated service-level noise.

        A 2 % chance that a queue receive returns empty despite visible
        messages — the eventual-consistency artefact the paper's SQS
        description calls out ("availability is only guaranteed over
        multiple requests").  This used to be the implicit
        ``FaultPlan()`` default.
        """
        return FaultPlan(queue_miss_probability=0.02)
