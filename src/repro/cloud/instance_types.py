"""Instance-type catalogs (paper Tables 1 and 2) and the machine model.

Each instance type carries a :class:`MachineModel` describing the hardware
characteristics that matter to the paper's three applications:

* ``cores`` and ``clock_ghz`` — CPU-bound throughput (Cap3).
* ``memory_gb`` — working-set residency (BLAST's ~8 GB NR database).
* ``mem_bandwidth_gbps`` — shared-memory contention (GTM Interpolation).
* ``os`` — the paper notes Cap3 runs ~12.5 % faster on Windows.

Clock rates follow the paper's own statements: one EC2 compute unit is
~1.0–1.2 GHz; Large/XL cores are ~2 GHz, HCXL ~2.5 GHz, HM4XL ~3.25 GHz;
Azure cores are speculated at ~1.5–1.7 GHz but benchmark comparably to
~2.4 GHz Opterons for these codes (8 Azure Small ≈ 1 HCXL for Cap3), so we
carry an ``effective_clock_ghz`` calibrated from that observation.

Memory bandwidth values are not published for 2010-era EC2; we use
plausible per-socket figures for the hardware generations involved
(DDR2/DDR3, 6–13 GB/s per socket) chosen so that the *relative* GTM
Interpolation results reproduce: HM4XL fastest, Large best efficiency
among EC2 types, HCXL most economical, Azure Small best efficiency
overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "AZURE_INSTANCE_TYPES",
    "EC2_INSTANCE_TYPES",
    "InstanceType",
    "MachineModel",
    "get_instance_type",
]


@dataclass(frozen=True)
class MachineModel:
    """Hardware characteristics of one VM instance or bare-metal node."""

    cores: int
    clock_ghz: float
    memory_gb: float
    mem_bandwidth_gbps: float
    os: str = "linux"  # "linux" or "windows"
    nic_gbps: float = 1.0
    disk_mbps: float = 80.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        if self.clock_ghz <= 0 or self.memory_gb <= 0 or self.mem_bandwidth_gbps <= 0:
            raise ValueError("clock, memory and bandwidth must be positive")
        if self.os not in ("linux", "windows"):
            raise ValueError(f"unknown os {self.os!r}")

    @property
    def compute_ghz_total(self) -> float:
        """Aggregate compute throughput in core-GHz."""
        return self.cores * self.clock_ghz


@dataclass(frozen=True)
class InstanceType:
    """A purchasable cloud instance type."""

    name: str
    provider: str  # "aws" or "azure"
    machine: MachineModel
    cost_per_hour: float
    ec2_compute_units: int | None = None
    bits: int = 64
    description: str = ""
    aliases: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.provider not in ("aws", "azure"):
            raise ValueError(f"unknown provider {self.provider!r}")
        if self.cost_per_hour < 0:
            raise ValueError("cost_per_hour must be non-negative")

    def with_os(self, os: str) -> "InstanceType":
        """Return a copy whose machine runs ``os`` (EC2 offers both)."""
        return replace(self, machine=replace(self.machine, os=os))


# --------------------------------------------------------------------------
# Table 1: Selected EC2 instance types.
# --------------------------------------------------------------------------
EC2_INSTANCE_TYPES: dict[str, InstanceType] = {
    "L": InstanceType(
        name="L",
        provider="aws",
        machine=MachineModel(
            cores=2, clock_ghz=2.0, memory_gb=7.5, mem_bandwidth_gbps=6.4
        ),
        cost_per_hour=0.34,
        ec2_compute_units=4,
        description="Large (L): 7.5 GB, 4 ECU, 2 x ~2 GHz, $0.34/h",
        aliases=("Large",),
    ),
    "XL": InstanceType(
        name="XL",
        provider="aws",
        machine=MachineModel(
            cores=4, clock_ghz=2.0, memory_gb=15.0, mem_bandwidth_gbps=6.4
        ),
        cost_per_hour=0.68,
        ec2_compute_units=8,
        description="Extra Large (XL): 15 GB, 8 ECU, 4 x ~2 GHz, $0.68/h",
        aliases=("ExtraLarge", "Extra Large"),
    ),
    "HCXL": InstanceType(
        name="HCXL",
        provider="aws",
        machine=MachineModel(
            cores=8, clock_ghz=2.5, memory_gb=7.0, mem_bandwidth_gbps=8.0
        ),
        cost_per_hour=0.68,
        ec2_compute_units=20,
        description="High CPU Extra Large (HCXL): 7 GB, 20 ECU, 8 x ~2.5 GHz, $0.68/h",
        aliases=("HighCPUExtraLarge", "High CPU Extra Large"),
    ),
    "HM4XL": InstanceType(
        name="HM4XL",
        provider="aws",
        machine=MachineModel(
            cores=8, clock_ghz=3.25, memory_gb=68.4, mem_bandwidth_gbps=12.8
        ),
        cost_per_hour=2.00,
        ec2_compute_units=26,
        description="High Memory 4XL (HM4XL): 68.4 GB, 26 ECU, 8 x ~3.25 GHz, $2.00/h",
        aliases=("HighMemory4XL", "High Memory 4XL"),
    ),
    # The paper excludes Small from its studies (32-bit only) but documents
    # it; we carry it for completeness.
    "Small": InstanceType(
        name="Small",
        provider="aws",
        machine=MachineModel(
            cores=1, clock_ghz=1.1, memory_gb=1.7, mem_bandwidth_gbps=3.2
        ),
        cost_per_hour=0.085,
        ec2_compute_units=1,
        bits=32,
        description="Small: 1.7 GB, 1 ECU, 32-bit only",
    ),
}


# --------------------------------------------------------------------------
# Table 2: Microsoft Windows Azure instance types.
#
# Azure configurations and cost scale linearly Small -> Extra Large.  The
# effective clock is calibrated from the paper's observation that 8 Azure
# Small instances perform comparably to one EC2 HCXL (20 ECU, 8 x 2.5 GHz)
# on Cap3, after removing Cap3's ~12.5 % Windows advantage:
# 8 x clock_azure x 1.125 ~= 8 x 2.5  =>  clock_azure ~= 2.2 GHz effective.
# --------------------------------------------------------------------------
_AZURE_CLOCK_GHZ = 2.2
_AZURE_BW_PER_CORE = 3.2  # GB/s; scales linearly with cores like the price


def _azure(name: str, cores: int, memory_gb: float, disk_gb: int,
           cost: float) -> InstanceType:
    return InstanceType(
        name=name,
        provider="azure",
        machine=MachineModel(
            cores=cores,
            clock_ghz=_AZURE_CLOCK_GHZ,
            memory_gb=memory_gb,
            mem_bandwidth_gbps=_AZURE_BW_PER_CORE * cores,
            os="windows",
        ),
        cost_per_hour=cost,
        description=(
            f"Azure {name}: {cores} core(s), {memory_gb} GB, "
            f"{disk_gb} GB disk, ${cost}/h"
        ),
    )


AZURE_INSTANCE_TYPES: dict[str, InstanceType] = {
    "Small": _azure("Small", 1, 1.7, 250, 0.12),
    "Medium": _azure("Medium", 2, 3.5, 500, 0.24),
    "Large": _azure("Large", 4, 7.0, 1000, 0.48),
    "ExtraLarge": _azure("ExtraLarge", 8, 15.0, 2000, 0.96),
}


def get_instance_type(provider: str, name: str) -> InstanceType:
    """Look up an instance type by provider and name (aliases accepted)."""
    catalog = {"aws": EC2_INSTANCE_TYPES, "azure": AZURE_INSTANCE_TYPES}.get(provider)
    if catalog is None:
        raise KeyError(f"unknown provider {provider!r}")
    if name in catalog:
        return catalog[name]
    for itype in catalog.values():
        if name in itype.aliases:
            return itype
    raise KeyError(f"unknown {provider} instance type {name!r}")
