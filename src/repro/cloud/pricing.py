"""Price books for the non-compute cloud services.

Figures match the paper's Table 4 line items (2010 price points):

* queue requests: ~10,000 messages cost $0.01 on both platforms;
* storage: $0.14 (S3) / $0.15 (Azure Blob) per GB-month;
* data transfer: $0.10/GB in on both; $0.15/GB out on Azure (the paper's
  Table 4 charges AWS only for transfer-in of the workload).

The books also carry the provider's long-run **spot discount** — the
2010-era spot market cleared around a third of the on-demand price —
which anchors :class:`repro.cloud.spot.SpotMarketModel`'s default
``price_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AWS_PRICES", "AZURE_PRICES", "PriceBook"]


@dataclass(frozen=True)
class PriceBook:
    """Unit prices for storage, queue and transfer on one provider."""

    provider: str
    queue_request_price: float  # $ per queue API request
    storage_gb_month: float  # $ per GB-month stored
    storage_request_price: float  # $ per blob API request
    transfer_in_gb: float  # $ per GB ingress
    transfer_out_gb: float  # $ per GB egress
    spot_discount_fraction: float = 0.32  # long-run spot/on-demand ratio

    def spot_baseline(self, rate_per_hour: float) -> float:
        """Long-run mean spot price for an on-demand ``rate_per_hour``."""
        return rate_per_hour * self.spot_discount_fraction

    def queue_cost(self, requests: int) -> float:
        """Cost of ``requests`` queue API calls."""
        return requests * self.queue_request_price

    def storage_cost(self, gb: float, months: float = 1.0) -> float:
        """Cost of storing ``gb`` gigabytes for ``months`` months."""
        return gb * months * self.storage_gb_month

    def transfer_cost(self, gb_in: float, gb_out: float = 0.0) -> float:
        """Cost of moving data in and out of the cloud."""
        return gb_in * self.transfer_in_gb + gb_out * self.transfer_out_gb


AWS_PRICES = PriceBook(
    provider="aws",
    queue_request_price=0.01 / 10_000,
    storage_gb_month=0.14,
    storage_request_price=0.01 / 10_000,
    transfer_in_gb=0.10,
    transfer_out_gb=0.15,
    spot_discount_fraction=0.32,
)

AZURE_PRICES = PriceBook(
    provider="azure",
    queue_request_price=0.01 / 10_000,
    storage_gb_month=0.15,
    storage_request_price=0.01 / 10_000,
    transfer_in_gb=0.10,
    transfer_out_gb=0.15,
)
