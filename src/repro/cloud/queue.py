"""Simulated distributed message queue (Amazon SQS / Azure Queue).

Semantics modelled straight from the paper's SQS description:

* **at-least-once, unordered** delivery — no FIFO guarantee; a receive
  returns *some* visible message (uniformly chosen);
* **eventual consistency** — a freshly sent message only becomes visible
  after a short propagation delay, and a receive may return empty even
  when messages exist (availability is only guaranteed *over multiple
  requests*);
* **visibility timeout** — a received message is hidden from other
  consumers until the timeout expires; if the consumer does not delete it
  in time, the message *reappears* and will be processed again (this is
  the Classic Cloud framework's entire fault-tolerance story);
* **receipt handles** — deletion requires the receipt from the most recent
  receive; a stale receipt fails, exactly like SQS after a reappearance;
* priced per API request.

Every operation is a DES process generator paying a request latency.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, replace
from typing import Any, Generator

import numpy as np

from repro.cloud.billing import CostMeter
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment

__all__ = ["Message", "MessageQueue", "QueueStats", "StaleReceiptError"]


class StaleReceiptError(RuntimeError):
    """Delete attempted with a receipt that is no longer current."""


@dataclass
class Message:
    """A queue message as seen by a consumer."""

    message_id: int
    body: Any
    enqueued_at: float
    receive_count: int = 0
    receipt: int = 0  # changes on every receive
    first_received_at: float | None = None
    visible_at: float = 0.0  # authoritative next-visible time


@dataclass
class QueueStats:
    """Observable counters for tests and experiments."""

    sent: int = 0
    received: int = 0
    empty_receives: int = 0
    deleted: int = 0
    reappearances: int = 0
    duplicate_deliveries: int = 0
    stale_deletes: int = 0
    lost_deletes: int = 0  # delete requests dropped by chaos injection
    dead_lettered: int = 0
    requests: int = 0  # every priced API request (send/receive/delete/...)


class MessageQueue:
    """One simulated SQS queue / Azure queue."""

    def __init__(
        self,
        env: Environment,
        name: str,
        rng: np.random.Generator,
        meter: CostMeter | None = None,
        visibility_timeout_s: float = 300.0,
        request_latency_s: float = 0.020,
        latency_sigma: float = 0.35,
        propagation_delay_s: float = 0.050,
        miss_probability: float = 0.02,
        duplicate_probability: float = 0.0,
        delete_loss_probability: float = 0.0,
        max_receive_count: int | None = None,
        dead_letter_queue: "MessageQueue | None" = None,
    ):
        """Create a queue.

        ``visibility_timeout_s`` is the default hide window after a receive.
        ``propagation_delay_s`` is how long a sent message takes to become
        receivable.  ``miss_probability`` is the chance a receive returns
        empty despite visible messages (eventual-consistency artefact).
        ``duplicate_probability`` is the chance a received message is *also*
        left visible (at-least-once duplication artefact).
        ``delete_loss_probability`` is the chance a delete request is
        silently dropped server-side: the client believes the message is
        gone, but it stays in flight and reappears after the visibility
        timeout — a benign duplicate, the way real SQS loses deletes.
        :mod:`repro.chaos` raises it during queue-chaos windows.

        ``max_receive_count`` with ``dead_letter_queue`` configures an
        SQS-style redrive policy: a message received more than
        ``max_receive_count`` times without deletion moves to the DLQ
        instead of reappearing — the defence against *poison tasks*
        (tasks that crash every worker), which the paper's "rare
        re-execution is harmless" argument does not cover.
        """
        if max_receive_count is not None and max_receive_count < 1:
            raise ValueError("max_receive_count must be >= 1")
        self.env = env
        self.name = name
        self.rng = rng
        # Bound method caches for the per-request hot path.
        self._lognormal = rng.lognormal
        self.meter = meter
        self.visibility_timeout_s = visibility_timeout_s
        self.request_latency_s = request_latency_s
        self.latency_sigma = latency_sigma
        self.propagation_delay_s = propagation_delay_s
        self.miss_probability = miss_probability
        self.duplicate_probability = duplicate_probability
        self.delete_loss_probability = delete_loss_probability
        self.max_receive_count = max_receive_count
        self.dead_letter_queue = dead_letter_queue
        self.stats = QueueStats()
        # Metrics instruments fetched once; null no-ops unless a caller
        # wrapped this run in repro.obs.observe().
        obs = _current_obs()
        metrics = obs.metrics
        self._m_requests = metrics.counter(f"queue.{name}.requests")
        self._m_depth = metrics.gauge(f"queue.{name}.depth")
        # Timeline sampling: depth over sim time (null no-op by default).
        self._timeline = obs.timeline
        self._tl_depth = f"queue.{name}.depth"
        self._m_redeliveries = metrics.counter(f"queue.{name}.redeliveries")
        self._m_dead_letters = metrics.counter(f"queue.{name}.dead_letters")
        self._m_empty_receives = metrics.counter(f"queue.{name}.empty_receives")
        self._ids = itertools.count()
        self._receipts = itertools.count(1)
        self._messages: dict[int, Message] = {}
        # (visible_at, seq, message_id): both fresh sends and in-flight
        # (invisible) messages wait here until their visible_at.
        self._pending: list[tuple[float, int, int]] = []
        self._seq = itertools.count()
        self._visible: list[int] = []
        self._inflight: dict[int, int] = {}  # message_id -> current receipt
        # Sanitizer hook: a SanitizedEnvironment enrols the queue in
        # stale-receipt leak detection (repro.lint.sanitizer).
        register = getattr(env, "register_queue", None)
        if register is not None:
            register(self)

    # -- internals --------------------------------------------------------------
    def _latency(self) -> float:
        return self.request_latency_s * float(
            self._lognormal(0.0, self.latency_sigma)
        )

    def _meter_request(self) -> None:
        self.stats.requests += 1
        self._m_requests.inc()
        if self.meter is not None:
            self.meter.record_queue_request()

    def _set_depth(self) -> None:
        depth = len(self._messages)
        self._m_depth.set(depth)
        self._timeline.sample(self._tl_depth, self.env.now, depth)

    def _promote_due(self) -> None:
        """Move pending messages whose visible_at has passed into view."""
        while self._pending and self._pending[0][0] <= self.env.now:
            entry_time, _, message_id = heapq.heappop(self._pending)
            message = self._messages.get(message_id)
            if message is None:
                continue  # deleted while pending
            if entry_time < message.visible_at:
                continue  # superseded by a visibility extension
            was_inflight = self._inflight.pop(message_id, None)
            if was_inflight is not None:
                self.stats.reappearances += 1
                self._m_redeliveries.inc()
                # Redrive policy: poison messages go to the DLQ instead
                # of reappearing forever.
                if (
                    self.max_receive_count is not None
                    and message.receive_count >= self.max_receive_count
                ):
                    del self._messages[message_id]
                    self.stats.dead_lettered += 1
                    self._m_dead_letters.inc()
                    self._set_depth()
                    if self.dead_letter_queue is not None:
                        self.dead_letter_queue._accept_dead_letter(message)
                    continue
            if message_id not in self._visible:
                self._visible.append(message_id)

    # -- operations ---------------------------------------------------------------
    def send(self, body: Any) -> Generator:
        """Enqueue a message (process).  Returns its message id."""
        self._meter_request()
        yield self.env.timeout(self._latency())
        message_id = next(self._ids)
        visible_at = self.env.now + self.propagation_delay_s
        self._messages[message_id] = Message(
            message_id=message_id,
            body=body,
            enqueued_at=self.env.now,
            visible_at=visible_at,
        )
        heapq.heappush(
            self._pending, (visible_at, next(self._seq), message_id)
        )
        self.stats.sent += 1
        self._set_depth()
        return message_id

    def _accept_dead_letter(self, message: Message) -> None:
        """Server-side redrive: take a poison message from a source
        queue (no client request, no latency)."""
        message_id = next(self._ids)
        self._messages[message_id] = Message(
            message_id=message_id,
            body=message.body,
            enqueued_at=self.env.now,
            receive_count=message.receive_count,
            visible_at=self.env.now,
        )
        heapq.heappush(
            self._pending, (self.env.now, next(self._seq), message_id)
        )
        self.stats.sent += 1
        self._set_depth()

    def send_batch(self, bodies: list[Any]) -> Generator:
        """Enqueue up to 10 messages in one API request (process).

        Mirrors SQS ``SendMessageBatch``: one metered request and one
        round-trip latency for the whole batch.  Returns the message ids.
        """
        if not 1 <= len(bodies) <= 10:
            raise ValueError("batch size must be 1..10")
        self._meter_request()
        yield self.env.timeout(self._latency())
        ids = []
        for body in bodies:
            message_id = next(self._ids)
            visible_at = self.env.now + self.propagation_delay_s
            self._messages[message_id] = Message(
                message_id=message_id,
                body=body,
                enqueued_at=self.env.now,
                visible_at=visible_at,
            )
            heapq.heappush(
                self._pending, (visible_at, next(self._seq), message_id)
            )
            self.stats.sent += 1
            ids.append(message_id)
        self._set_depth()
        return ids

    def receive(
        self,
        visibility_timeout_s: float | None = None,
        wait_time_s: float = 0.0,
    ) -> Generator:
        """Receive one message (process).

        Returns a :class:`Message` (with a fresh receipt) or ``None`` on an
        empty receive.  The message is hidden for ``visibility_timeout_s``
        (queue default if omitted).

        ``wait_time_s`` > 0 enables *long polling* (SQS
        ``ReceiveMessage`` with ``WaitTimeSeconds``): the single metered
        request holds server-side until a message arrives or the wait
        expires, drastically cutting empty receives on an idle queue.
        """
        if wait_time_s < 0:
            raise ValueError("wait_time_s must be non-negative")
        self._meter_request()
        yield self.env.timeout(self._latency())
        deadline = self.env.now + wait_time_s
        while True:
            self._promote_due()
            if self._visible:
                break
            if self.env.now >= deadline:
                self.stats.empty_receives += 1
                self._m_empty_receives.inc()
                return None
            yield self.env.timeout(
                min(0.2, max(1e-6, deadline - self.env.now))
            )
        if self.miss_probability and self.rng.random() < self.miss_probability:
            self.stats.empty_receives += 1
            self._m_empty_receives.inc()
            return None
        index = int(self.rng.integers(len(self._visible)))
        message_id = self._visible[index]
        message = self._messages[message_id]
        message.receive_count += 1
        if message.receive_count > 1:
            self.stats.duplicate_deliveries += 1
        if message.first_received_at is None:
            message.first_received_at = self.env.now
        message.receipt = next(self._receipts)
        timeout = (
            self.visibility_timeout_s
            if visibility_timeout_s is None
            else visibility_timeout_s
        )
        duplicated = (
            self.duplicate_probability
            and self.rng.random() < self.duplicate_probability
        )
        if not duplicated:
            self._visible.pop(index)
            self._inflight[message_id] = message.receipt
            message.visible_at = self.env.now + timeout
            heapq.heappush(
                self._pending,
                (message.visible_at, next(self._seq), message_id),
            )
        self.stats.received += 1
        # Hand back a snapshot: the receipt of *this* receive must not
        # mutate when the message is later re-received by someone else.
        return replace(message)

    def delete(self, message: Message) -> Generator:
        """Delete a received message (process).

        Fails with :class:`StaleReceiptError` if the message reappeared and
        was re-received since this receipt was issued — the later consumer
        now owns it.
        """
        self._meter_request()
        yield self.env.timeout(self._latency())
        # Chaos: the request is metered and paid for, but the server
        # never processes it — the message stays in flight and will
        # reappear after the visibility timeout (benign duplicate).
        if (
            self.delete_loss_probability
            and self.rng.random() < self.delete_loss_probability
        ):
            self.stats.lost_deletes += 1
            return
        current = self._inflight.get(message.message_id)
        if current is not None and current != message.receipt:
            self.stats.stale_deletes += 1
            raise StaleReceiptError(
                f"receipt {message.receipt} superseded by {current}"
            )
        self._inflight.pop(message.message_id, None)
        if self._messages.pop(message.message_id, None) is not None:
            self.stats.deleted += 1
            self._set_depth()
        if message.message_id in self._visible:
            self._visible.remove(message.message_id)

    def change_visibility(self, message: Message, timeout_s: float) -> Generator:
        """Extend/shrink the visibility window of an in-flight message."""
        self._meter_request()
        yield self.env.timeout(self._latency())
        if self._inflight.get(message.message_id) != message.receipt:
            raise StaleReceiptError("message not in flight under this receipt")
        live = self._messages[message.message_id]
        live.visible_at = self.env.now + timeout_s
        heapq.heappush(
            self._pending,
            (live.visible_at, next(self._seq), message.message_id),
        )

    # -- inspection (no simulated time) ---------------------------------------
    def peek_bodies(self) -> list[Any]:
        """Bodies of all undeleted messages (test/diagnostic helper)."""
        return [m.body for m in self._messages.values()]

    def approximate_size(self) -> int:
        """Messages not yet deleted (visible + in flight + propagating)."""
        return len(self._messages)

    def visible_now(self) -> int:
        """Messages receivable at this instant (test helper)."""
        self._promote_due()
        return len(self._visible)
