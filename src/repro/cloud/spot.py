"""Deterministic spot-market price model and bid strategies.

The paper prices every run at on-demand rates; the cost axis of its
evaluation (Tables 1/2/4) therefore upper-bounds what an elastic pool
would pay.  This module adds the missing market: a seeded,
piecewise-constant spot-price trace per run (mean-reverting around a
fraction of the on-demand price, with occasional demand spikes above
it), and the bid strategies an autoscaling pool can follow.

Semantics follow the *classic* EC2 spot rules the paper's era used:

* an instance launches only while the market price is at or below the
  bid, and is **preempted** the moment the price rises above it;
* the market price is frozen per instance at launch time (re-pricing is
  deliberately not modelled — it would couple billing to query order);
* under hourly billing a *provider-initiated* preemption forgives the
  interrupted partial hour (:mod:`repro.cloud.billing`).

Everything is driven by one named RNG stream (``"spot-market"``) from
the run's :class:`~repro.sim.rng.RngRegistry`, and prices are generated
strictly in interval order regardless of query order, so a seed fully
determines the trace — preemption timing included.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cloud.pricing import AWS_PRICES

__all__ = ["BidStrategy", "SpotMarketModel", "SpotPriceTrace"]


@dataclass(frozen=True)
class SpotMarketModel:
    """Parameters of the synthetic spot market for one instance type.

    Prices are expressed as *fractions of the on-demand price*.  The
    log-price follows a mean-reverting walk around ``price_fraction``;
    independently, each interval may start a demand spike that pushes
    the price to ``spike_multiplier`` times the long-run mean for
    ``spike_duration_intervals`` intervals — that is what preempts
    instances bid below it.
    """

    #: Long-run mean spot/on-demand ratio, anchored to the price book.
    price_fraction: float = AWS_PRICES.spot_discount_fraction
    volatility: float = 0.08  # std-dev of the per-interval log step
    reversion: float = 0.25  # pull toward the mean per interval
    spike_probability: float = 0.04  # per-interval chance a spike starts
    spike_multiplier: float = 4.0  # spike price / long-run mean
    spike_duration_intervals: int = 2
    interval_s: float = 300.0  # price-change granularity

    def __post_init__(self) -> None:
        if not 0.0 < self.price_fraction:
            raise ValueError("price_fraction must be positive")
        if self.volatility < 0 or not 0.0 <= self.reversion <= 1.0:
            raise ValueError("volatility >= 0 and 0 <= reversion <= 1")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be a probability")
        if self.spike_multiplier < 1.0 or self.spike_duration_intervals < 1:
            raise ValueError("spikes must raise the price for >= 1 interval")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class SpotPriceTrace:
    """A seeded piecewise-constant spot-price series.

    Interval ``i`` covers simulated time ``[i * interval_s,
    (i + 1) * interval_s)``.  Prices are materialized lazily but always
    *sequentially* (interval ``i`` consumes the RNG before ``i + 1``),
    so any query pattern sees the same trace for the same seed.
    """

    def __init__(
        self,
        model: SpotMarketModel,
        on_demand_price: float,
        rng: np.random.Generator,
    ):
        if on_demand_price <= 0:
            raise ValueError("on_demand_price must be positive")
        self.model = model
        self.on_demand_price = on_demand_price
        self.rng = rng
        self._fractions: list[float] = []
        self._log = math.log(model.price_fraction)
        self._spike_left = 0

    # -- generation -----------------------------------------------------------
    def _ensure(self, index: int) -> None:
        model = self.model
        mean_log = math.log(model.price_fraction)
        while len(self._fractions) <= index:
            step = float(self.rng.standard_normal()) * model.volatility
            self._log += model.reversion * (mean_log - self._log) + step
            if self._spike_left > 0:
                self._spike_left -= 1
            elif float(self.rng.random()) < model.spike_probability:
                self._spike_left = model.spike_duration_intervals
            if self._spike_left > 0:
                fraction = model.price_fraction * model.spike_multiplier
            else:
                fraction = min(math.exp(self._log), 1.0)
            self._fractions.append(fraction)

    def _interval(self, t: float) -> int:
        if t < 0:
            raise ValueError("time must be non-negative")
        return int(t // self.model.interval_s)

    # -- queries --------------------------------------------------------------
    def fraction_at(self, t: float) -> float:
        """Spot price at simulated time ``t`` as a fraction of on-demand."""
        index = self._interval(t)
        self._ensure(index)
        return self._fractions[index]

    def price_at(self, t: float) -> float:
        """Spot price in $/hour at simulated time ``t``."""
        return self.fraction_at(t) * self.on_demand_price

    def next_change_after(self, t: float) -> float:
        """The next interval boundary strictly after ``t``."""
        return (self._interval(t) + 1) * self.model.interval_s


@dataclass(frozen=True)
class BidStrategy:
    """How an elastic pool buys capacity.

    * ``"on-demand"`` — every instance at the on-demand price; never
      preempted.
    * ``"spot"`` — every instance bids ``bid_multiplier`` times the
      on-demand price; capacity is unavailable (the scale-up is skipped)
      while the market price exceeds the bid.
    * ``"mixed"`` — ``spot_fraction`` of each provisioning request goes
      to the spot market, the rest on-demand; unavailable spot capacity
      falls back to on-demand instead of being skipped.
    """

    kind: str = "on-demand"  # "on-demand" | "spot" | "mixed"
    spot_fraction: float = 0.0
    bid_multiplier: float = 0.5  # bid = bid_multiplier * on-demand price

    def __post_init__(self) -> None:
        if self.kind not in ("on-demand", "spot", "mixed"):
            raise ValueError(f"unknown bid strategy kind {self.kind!r}")
        if not 0.0 <= self.spot_fraction <= 1.0:
            raise ValueError("spot_fraction must be in [0, 1]")
        if self.bid_multiplier <= 0:
            raise ValueError("bid_multiplier must be positive")

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def on_demand() -> "BidStrategy":
        """All capacity at the on-demand price (the paper's setup)."""
        return BidStrategy(kind="on-demand", spot_fraction=0.0)

    @staticmethod
    def spot(bid_multiplier: float = 0.5) -> "BidStrategy":
        """All capacity from the spot market at the given bid."""
        return BidStrategy(
            kind="spot", spot_fraction=1.0, bid_multiplier=bid_multiplier
        )

    @staticmethod
    def mixed(
        spot_fraction: float, bid_multiplier: float = 0.5
    ) -> "BidStrategy":
        """``spot_fraction`` of the pool on spot, the rest on-demand."""
        if spot_fraction <= 0.0:
            return BidStrategy.on_demand()
        if spot_fraction >= 1.0:
            return BidStrategy.spot(bid_multiplier)
        return BidStrategy(
            kind="mixed",
            spot_fraction=spot_fraction,
            bid_multiplier=bid_multiplier,
        )

    # -- queries --------------------------------------------------------------
    @property
    def spot_share(self) -> float:
        """Fraction of each provisioning request sent to the market."""
        return self.spot_fraction

    @property
    def uses_spot(self) -> bool:
        return self.kind != "on-demand" and self.spot_fraction > 0.0

    def bid_price(self, on_demand_price: float) -> float:
        """The absolute $/hour bid for this strategy."""
        return self.bid_multiplier * on_demand_price

    def split(self, count: int) -> tuple[int, int]:
        """Split a request for ``count`` instances into
        ``(n_spot, n_on_demand)`` according to ``spot_fraction``."""
        n_spot = int(round(count * self.spot_share))
        n_spot = max(0, min(count, n_spot))
        return n_spot, count - n_spot

    @property
    def label(self) -> str:
        if self.kind == "on-demand":
            return "on-demand"
        if self.kind == "spot":
            return f"spot(bid {self.bid_multiplier:g}x)"
        return f"mixed({self.spot_fraction:.0%} spot, bid {self.bid_multiplier:g}x)"
