"""Simulated blob storage (Amazon S3 / Azure Blob Storage).

Characteristics modelled, per the paper's description of S3/Azure Storage:

* accessed over HTTP: every operation pays a request latency;
* transfers are bandwidth-limited (per-connection cap and the instance NIC);
* pricing is per request plus per GB stored / transferred;
* *eventual consistency*: an overwrite may serve the previous version for a
  short window, and newly created objects may transiently 404 (S3's 2010
  create-read behaviour in some regions).

Blob payloads are optional — simulated frameworks typically move only
metadata (key + size), but tests can attach payload tokens to verify
end-to-end data integrity through the framework code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

import numpy as np

from repro.cloud.billing import CostMeter
from repro.sim.engine import Environment

__all__ = ["BlobNotFound", "BlobObject", "BlobStore", "StorageUnavailable"]


class BlobNotFound(KeyError):
    """Raised when a GET references a key that is not (yet) visible."""


class StorageUnavailable(RuntimeError):
    """A request kept failing with retryable 5xx errors until the
    client's retry budget ran out.  Only raised when the store was
    built with a :class:`~repro.chaos.retry.RetryPolicy`; without one
    the client retries forever (the historical behaviour)."""


@dataclass
class BlobObject:
    """One stored object version."""

    key: str
    size: int
    payload: Any = None
    version: int = 0
    created_at: float = 0.0


@dataclass
class _Entry:
    current: BlobObject
    previous: BlobObject | None = None
    stale_until: float = 0.0  # reads before this time may see ``previous``


@dataclass
class TransferStats:
    """Counters for observability and tests."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    stale_reads: int = 0
    not_found: int = 0
    bytes_uploaded: int = 0
    bytes_downloaded: int = 0


class BlobStore:
    """A simulated S3 bucket / Azure Blob container.

    All operations are DES process generators: drive them with
    ``yield env.process(store.get(...))`` from a worker process, or
    ``env.run(until=env.process(...))`` from test code.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        rng: np.random.Generator,
        meter: CostMeter | None = None,
        request_latency_s: float = 0.040,
        latency_sigma: float = 0.35,
        bandwidth_mbps: float = 50.0,
        consistency_window_s: float = 0.0,
        error_rate: float = 0.0,
        retry_policy=None,
    ):
        """Create a store.

        ``request_latency_s`` is the median per-request HTTP latency;
        actual latencies are lognormal with shape ``latency_sigma``.
        ``bandwidth_mbps`` is the per-connection transfer cap in MB/s.
        ``consistency_window_s`` > 0 enables eventual consistency: reads
        within the window after a write may observe the prior state.
        ``error_rate`` is the probability that a request fails with a
        retryable error (the operation retries internally, costing time
        and an extra metered request).
        ``retry_policy`` (a :class:`~repro.chaos.retry.RetryPolicy`)
        bounds those internal retries: delays follow the policy's
        backoff-with-jitter schedule and, once the attempt budget is
        spent, the operation raises :class:`StorageUnavailable` instead
        of retrying forever.  ``None`` keeps the historical
        retry-forever behaviour, byte-identical in timing.
        """
        self.env = env
        self.name = name
        self.rng = rng
        self.meter = meter
        self.request_latency_s = request_latency_s
        self.latency_sigma = latency_sigma
        self.bandwidth_bps = bandwidth_mbps * 1e6
        self.consistency_window_s = consistency_window_s
        self.error_rate = error_rate
        self.retry_policy = retry_policy
        self.stats = TransferStats()
        self._objects: dict[str, _Entry] = {}

    # -- helpers --------------------------------------------------------------
    def _latency(self, extra_latency_s: float = 0.0) -> float:
        return float(
            self.request_latency_s
            * self.rng.lognormal(mean=0.0, sigma=self.latency_sigma)
            + extra_latency_s
        )

    def _request(self, extra_latency_s: float = 0.0) -> Generator:
        """One HTTP round-trip, with retry-on-error.

        Without a retry policy a 5xx backs off for twice the request
        latency and retries forever; with one, delays follow the
        policy and the budget is hard — exhaustion raises
        :class:`StorageUnavailable`.
        """
        policy = self.retry_policy
        attempt = 0
        while True:
            if self.meter is not None:
                self.meter.record_storage_request()
            yield self.env.timeout(self._latency(extra_latency_s))
            if self.error_rate and self.rng.random() < self.error_rate:
                attempt += 1
                if policy is None:
                    # Retryable 5xx: back off briefly and retry.
                    yield self.env.timeout(
                        self._latency(extra_latency_s) * 2.0
                    )
                    continue
                if attempt >= policy.attempts:
                    raise StorageUnavailable(
                        f"{self.name}: request failed {attempt} times; "
                        "retry budget exhausted"
                    )
                yield self.env.timeout(policy.backoff_s(attempt, self.rng))
                continue
            return

    def _transfer_time(self, size: int, bandwidth_bps: float | None) -> float:
        effective = self.bandwidth_bps if bandwidth_bps is None else min(
            self.bandwidth_bps, bandwidth_bps
        )
        return size / effective

    # -- operations -------------------------------------------------------------
    def put(
        self,
        key: str,
        size: int,
        payload: Any = None,
        bandwidth_bps: float | None = None,
        extra_latency_s: float = 0.0,
    ) -> Generator:
        """Upload an object (process).  Returns the stored :class:`BlobObject`.

        ``bandwidth_bps``/``extra_latency_s`` model a slower network path
        to the store — e.g. an on-premise worker reaching cloud storage
        over a WAN (the paper's hybrid local+cloud deployment).
        """
        if size < 0:
            raise ValueError(f"negative object size {size}")
        yield from self._request(extra_latency_s)
        yield self.env.timeout(self._transfer_time(size, bandwidth_bps))
        entry = self._objects.get(key)
        version = entry.current.version + 1 if entry else 0
        blob = BlobObject(
            key=key, size=size, payload=payload, version=version,
            created_at=self.env.now,
        )
        if entry is None:
            self._objects[key] = _Entry(
                current=blob,
                previous=None,
                stale_until=self.env.now + self.consistency_window_s,
            )
        else:
            entry.previous = entry.current
            entry.current = blob
            entry.stale_until = self.env.now + self.consistency_window_s
        self.stats.puts += 1
        self.stats.bytes_uploaded += size
        if self.meter is not None:
            self.meter.record_stored(size)
        return blob

    def get(
        self,
        key: str,
        bandwidth_bps: float | None = None,
        extra_latency_s: float = 0.0,
    ) -> Generator:
        """Download an object (process).  Returns a :class:`BlobObject`.

        Raises :class:`BlobNotFound` if the key does not exist (or is not
        yet visible under eventual consistency).  See :meth:`put` for the
        network-path overrides.
        """
        yield from self._request(extra_latency_s)
        entry = self._objects.get(key)
        visible = self._visible_version(entry)
        if visible is None:
            self.stats.not_found += 1
            raise BlobNotFound(key)
        yield self.env.timeout(self._transfer_time(visible.size, bandwidth_bps))
        self.stats.gets += 1
        self.stats.bytes_downloaded += visible.size
        return visible

    def head(self, key: str) -> Generator:
        """Metadata-only existence check (process).  Returns bool."""
        yield from self._request()
        return self._visible_version(self._objects.get(key)) is not None

    def delete(self, key: str) -> Generator:
        """Delete an object (process).  Idempotent, like S3."""
        yield from self._request()
        self._objects.pop(key, None)
        self.stats.deletes += 1

    def list_keys(self, prefix: str = "") -> Generator:
        """List visible keys under ``prefix`` (process)."""
        yield from self._request()
        return sorted(
            key
            for key, entry in self._objects.items()
            if key.startswith(prefix)
            and self._visible_version(entry) is not None
        )

    def _visible_version(self, entry: _Entry | None) -> BlobObject | None:
        if entry is None:
            return None
        if (
            self.consistency_window_s > 0
            and self.env.now < entry.stale_until
            and self.rng.random() < 0.5
        ):
            self.stats.stale_reads += 1
            return entry.previous  # may be None: fresh object still invisible
        return entry.current

    def stage(self, key: str, size: int, payload: Any = None) -> BlobObject:
        """Instantly pre-populate an object (no simulated time or latency).

        Models the paper's assumption that "the data was already present
        in the framework's preferred storage location".  Stored bytes are
        still metered for the GB-month cost line.
        """
        if size < 0:
            raise ValueError(f"negative object size {size}")
        blob = BlobObject(
            key=key, size=size, payload=payload, created_at=self.env.now
        )
        entry = self._objects.get(key)
        if entry is not None:
            blob = BlobObject(
                key=key,
                size=size,
                payload=payload,
                version=entry.current.version + 1,
                created_at=self.env.now,
            )
        self._objects[key] = _Entry(current=blob, previous=None, stale_until=0.0)
        if self.meter is not None:
            self.meter.record_stored(size)
        return blob

    # -- non-timed inspection (test helpers) -------------------------------------
    def peek(self, key: str) -> BlobObject | None:
        """Current version without simulating a request (tests only)."""
        entry = self._objects.get(key)
        return entry.current if entry else None

    def total_bytes(self) -> int:
        """Sum of current-version object sizes."""
        return sum(e.current.size for e in self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)
