"""Bare-metal cluster models for the Hadoop and DryadLINQ experiments.

The paper runs Hadoop and DryadLINQ on owned clusters rather than cloud
VMs; :mod:`repro.cluster.spec` catalogs those clusters' node hardware, and
:mod:`repro.cluster.tco` implements the buy-vs-lease cost model used in the
paper's Section 4.3 (cluster purchase cost depreciated over three years
plus yearly maintenance, scaled by utilization).
"""

from repro.cluster.spec import (
    CLUSTERS,
    ClusterSpec,
    NodeSpec,
    get_cluster,
)
from repro.cluster.tco import ClusterTco

__all__ = ["CLUSTERS", "ClusterSpec", "ClusterTco", "NodeSpec", "get_cluster"]
