"""Node and cluster hardware catalogs for the paper's bare-metal runs.

Each experiment section names the cluster it used; the entries below carry
those specifications so the Hadoop/DryadLINQ simulators schedule onto the
same shapes:

* ``cap3-baremetal`` — 32 nodes x 8 cores (2.5 GHz), 16 GB/node; used for
  both the Cap3 Hadoop and Cap3 DryadLINQ runs (Section 4.2).
* ``idataplex`` — BLAST Hadoop: 2 x 4-core Intel Xeon E5410 2.33 GHz,
  16 GB, Gigabit Ethernet (Section 5.2).
* ``hpc-blast`` — BLAST DryadLINQ: Windows HPC, 16 cores (AMD Opteron
  2.3 GHz), 16 GB/node (Section 5.2).
* ``gtm-hadoop`` — GTM Hadoop: 24-core (Intel Xeon 2.4 GHz), 48 GB/node,
  configured to use only 8 cores per node (Section 6.2).
* ``gtm-dryad`` — GTM DryadLINQ: 16-core (AMD Opteron 2.3 GHz), 16 GB/node
  (Section 6.2).
* ``internal-tco`` — the cost-comparison cluster: 32 nodes x 24 cores,
  48 GB/node, Infiniband, ~$500k purchase + ~$150k/yr maintenance
  (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance_types import MachineModel

__all__ = ["CLUSTERS", "ClusterSpec", "NodeSpec", "get_cluster"]


@dataclass(frozen=True)
class NodeSpec:
    """One bare-metal node type."""

    name: str
    machine: MachineModel
    usable_cores: int | None = None  # e.g. GTM-Hadoop caps at 8 of 24

    def __post_init__(self) -> None:
        if self.usable_cores is not None and not (
            1 <= self.usable_cores <= self.machine.cores
        ):
            raise ValueError(
                f"usable_cores {self.usable_cores} outside "
                f"1..{self.machine.cores}"
            )

    @property
    def cores_for_scheduling(self) -> int:
        """Cores the frameworks may schedule onto."""
        return self.usable_cores or self.machine.cores


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``n_nodes`` identical nodes."""

    name: str
    node: NodeSpec
    n_nodes: int
    interconnect_gbps: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("cluster needs at least one node")

    @property
    def total_cores(self) -> int:
        return self.n_nodes * self.node.cores_for_scheduling

    def subset(self, n_nodes: int) -> "ClusterSpec":
        """A same-hardware cluster restricted to ``n_nodes`` nodes."""
        if not 1 <= n_nodes <= self.n_nodes:
            raise ValueError(f"n_nodes {n_nodes} outside 1..{self.n_nodes}")
        return ClusterSpec(
            name=f"{self.name}[{n_nodes}]",
            node=self.node,
            n_nodes=n_nodes,
            interconnect_gbps=self.interconnect_gbps,
        )


CLUSTERS: dict[str, ClusterSpec] = {
    "cap3-baremetal": ClusterSpec(
        name="cap3-baremetal",
        node=NodeSpec(
            name="8core-2.5GHz",
            machine=MachineModel(
                cores=8, clock_ghz=2.5, memory_gb=16.0,
                mem_bandwidth_gbps=10.0, os="linux", disk_mbps=100.0,
            ),
        ),
        n_nodes=32,
    ),
    # DryadLINQ Cap3 runs the same hardware under Windows HPC.
    "cap3-baremetal-windows": ClusterSpec(
        name="cap3-baremetal-windows",
        node=NodeSpec(
            name="8core-2.5GHz-win",
            machine=MachineModel(
                cores=8, clock_ghz=2.5, memory_gb=16.0,
                mem_bandwidth_gbps=10.0, os="windows", disk_mbps=100.0,
            ),
        ),
        n_nodes=32,
    ),
    "idataplex": ClusterSpec(
        name="idataplex",
        node=NodeSpec(
            name="2xE5410",
            machine=MachineModel(
                cores=8, clock_ghz=2.33, memory_gb=16.0,
                mem_bandwidth_gbps=10.6, os="linux", disk_mbps=100.0,
            ),
        ),
        n_nodes=32,
        interconnect_gbps=1.0,
    ),
    "hpc-blast": ClusterSpec(
        name="hpc-blast",
        node=NodeSpec(
            name="16xOpteron2.3",
            machine=MachineModel(
                cores=16, clock_ghz=2.3, memory_gb=16.0,
                mem_bandwidth_gbps=12.8, os="windows", disk_mbps=100.0,
            ),
        ),
        n_nodes=16,
    ),
    "gtm-hadoop": ClusterSpec(
        name="gtm-hadoop",
        node=NodeSpec(
            name="24xXeon2.4",
            machine=MachineModel(
                cores=24, clock_ghz=2.4, memory_gb=48.0,
                mem_bandwidth_gbps=25.6, os="linux", disk_mbps=120.0,
            ),
            usable_cores=8,
        ),
        n_nodes=32,
    ),
    "gtm-dryad": ClusterSpec(
        name="gtm-dryad",
        node=NodeSpec(
            name="16xOpteron2.3",
            machine=MachineModel(
                cores=16, clock_ghz=2.3, memory_gb=16.0,
                mem_bandwidth_gbps=12.8, os="windows", disk_mbps=100.0,
            ),
        ),
        n_nodes=16,
    ),
    "internal-tco": ClusterSpec(
        name="internal-tco",
        node=NodeSpec(
            name="24core-48GB",
            machine=MachineModel(
                cores=24, clock_ghz=2.4, memory_gb=48.0,
                mem_bandwidth_gbps=25.6, os="linux", disk_mbps=120.0,
            ),
        ),
        n_nodes=32,
        interconnect_gbps=40.0,  # Infiniband
    ),
}


def get_cluster(name: str) -> ClusterSpec:
    """Look up a cluster by catalog name."""
    try:
        return CLUSTERS[name]
    except KeyError:
        raise KeyError(
            f"unknown cluster {name!r}; known: {sorted(CLUSTERS)}"
        ) from None
