"""Buy-vs-lease cost model for an owned cluster (paper Section 4.3).

The paper approximates the cost of a computation on an internal cluster
by depreciating the purchase price (~$500,000) over three years, adding
yearly maintenance (~$150,000, covering power, cooling and administration)
and dividing by utilization: a cluster that is busy only 60 % of the time
effectively costs each job 1/0.6 of the fully-utilized rate.

The paper's reference numbers for assembling 4096 Cap3 files:
$8.25 at 80 % utilization, $9.43 at 70 %, $11.01 at 60 %.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterTco"]

HOURS_PER_YEAR = 8760.0


@dataclass(frozen=True)
class ClusterTco:
    """Total-cost-of-ownership model for one owned cluster."""

    purchase_cost: float = 500_000.0
    depreciation_years: float = 3.0
    yearly_maintenance: float = 150_000.0

    def __post_init__(self) -> None:
        if self.purchase_cost < 0 or self.yearly_maintenance < 0:
            raise ValueError("costs must be non-negative")
        if self.depreciation_years <= 0:
            raise ValueError("depreciation period must be positive")

    @property
    def yearly_cost(self) -> float:
        """Depreciation plus maintenance per year of ownership."""
        return self.purchase_cost / self.depreciation_years + self.yearly_maintenance

    def cost_per_cluster_hour(self, utilization: float) -> float:
        """Dollars per hour of *useful* whole-cluster time.

        ``utilization`` in (0, 1] is the fraction of wall-clock hours the
        cluster spends on useful work; idle hours are overhead smeared
        across the useful ones.
        """
        if not 0 < utilization <= 1:
            raise ValueError(f"utilization must be in (0, 1], got {utilization}")
        return self.yearly_cost / (HOURS_PER_YEAR * utilization)

    def job_cost(self, wall_hours: float, utilization: float) -> float:
        """Cost attributed to a job occupying the whole cluster for
        ``wall_hours`` at the given average cluster utilization."""
        if wall_hours < 0:
            raise ValueError("wall_hours must be non-negative")
        return wall_hours * self.cost_per_cluster_hour(utilization)

    def utilization_table(
        self, wall_hours: float, utilizations: tuple[float, ...] = (0.8, 0.7, 0.6)
    ) -> list[tuple[float, float]]:
        """(utilization, job cost) rows, as in the paper's Section 4.3."""
        return [(u, self.job_cost(wall_hours, u)) for u in utilizations]
