"""The unified pleasingly-parallel framework API and analysis tools.

This package is the paper's contribution surface: one
:class:`~repro.core.application.Application` descriptor and one
:func:`~repro.core.api.run` entry point that executes the same workload on
any of the four backends (EC2 Classic Cloud, Azure Classic Cloud, Hadoop
map-only, DryadLINQ select), plus the metrics (parallel efficiency,
per-core time) and cost analyses the paper evaluates with.
"""

from repro.core.application import Application, get_application
from repro.core.metrics import (
    average_time_per_file_per_core,
    parallel_efficiency,
    speedup,
)
from repro.core.task import TaskRecord, TaskSpec

__all__ = [
    "Application",
    "TaskRecord",
    "TaskSpec",
    "average_time_per_file_per_core",
    "get_application",
    "parallel_efficiency",
    "speedup",
]
