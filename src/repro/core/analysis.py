"""Post-run analysis of task traces.

The paper's load-balancing and efficiency discussions rest on how work
spreads over workers and time; these helpers compute those views from a
:class:`~repro.core.task.RunResult`'s records:

* :func:`completion_timeline` — tasks completed over time (the classic
  progress S-curve; a long flat tail = stragglers or imbalance);
* :func:`worker_utilization` — per-worker busy fraction of the makespan;
* :func:`load_balance_index` — max/mean busy time across workers
  (1.0 = perfect balance; the paper's Hadoop-vs-DryadLINQ contrast);
* :func:`phase_breakdown` — aggregate download/compute/upload split,
  showing how much of the run the cloud services cost.
"""

from __future__ import annotations

from repro.core.task import RunResult

__all__ = [
    "completion_timeline",
    "gantt_text",
    "load_balance_index",
    "phase_breakdown",
    "worker_utilization",
]


def completion_timeline(result: RunResult) -> list[tuple[float, int]]:
    """(time, cumulative completed tasks) steps, winners only."""
    times = sorted(r.finished_at for r in result.records if r.won)
    return [(t, i + 1) for i, t in enumerate(times)]


def worker_utilization(result: RunResult) -> dict[str, float]:
    """Busy fraction per worker over the makespan (all attempts count —
    a duplicate execution is real occupancy).

    Degenerate runs are tolerated rather than rejected: with a
    non-positive makespan a worker that did record busy time reports
    ``1.0`` (it was busy the whole — instantaneous — run) and one that
    recorded none reports ``0.0``; a run with no records returns ``{}``.
    """
    busy: dict[str, float] = {}
    for record in result.records:
        busy[record.worker] = busy.get(record.worker, 0.0) + record.elapsed
    if result.makespan_seconds <= 0:
        return {
            worker: 1.0 if seconds > 0 else 0.0
            for worker, seconds in busy.items()
        }
    return {
        worker: min(1.0, seconds / result.makespan_seconds)
        for worker, seconds in busy.items()
    }


def load_balance_index(result: RunResult) -> float:
    """max/mean busy seconds across workers; 1.0 is perfect balance.

    A run with no task records (or all-zero busy time) is vacuously
    balanced and returns ``1.0``.
    """
    busy: dict[str, float] = {}
    for record in result.records:
        busy[record.worker] = busy.get(record.worker, 0.0) + record.elapsed
    if not busy:
        return 1.0
    values = list(busy.values())
    mean = sum(values) / len(values)
    if mean <= 0:
        return 1.0
    return max(values) / mean


def gantt_text(result: RunResult, width: int = 80) -> str:
    """ASCII Gantt chart: one row per worker, ``#`` where it was busy.

    Duplicate/speculative attempts render as ``x`` so wasted work is
    visible; idle time is ``.``.  The time axis spans the makespan.
    """
    if width < 10:
        raise ValueError("width must be >= 10")
    if not result.records:
        raise ValueError("run has no task records")
    span = max(result.makespan_seconds, max(r.finished_at for r in result.records))
    if span <= 0:
        raise ValueError("run has no positive duration")
    workers = sorted({r.worker for r in result.records})
    scale = width / span
    rows = []
    label_width = max(len(w) for w in workers)
    for worker in workers:
        cells = ["."] * width
        for record in result.records:
            if record.worker != worker:
                continue
            start = min(width - 1, int(record.started_at * scale))
            end = min(width, max(start + 1, int(record.finished_at * scale)))
            mark = "#" if record.won else "x"
            for i in range(start, end):
                cells[i] = mark
        rows.append(f"{worker.ljust(label_width)} |{''.join(cells)}|")
    header = (
        f"{''.ljust(label_width)} |0{' ' * (width - 8)}{span:7.0f}s"
    )
    return "\n".join([header] + rows)


def phase_breakdown(result: RunResult) -> dict[str, float]:
    """Fractions of total per-task time spent in each phase."""
    download = sum(r.download_time for r in result.records)
    compute = sum(r.compute_time for r in result.records)
    upload = sum(r.upload_time for r in result.records)
    total = download + compute + upload
    if total <= 0:
        raise ValueError("run has no recorded task time")
    return {
        "download": download / total,
        "compute": compute / total,
        "upload": upload / total,
    }
