"""The one-call public API.

::

    from repro.core.api import run
    from repro.core.application import get_application
    from repro.workloads.genome import cap3_task_specs

    app = get_application("cap3")
    tasks = cap3_task_specs(n_files=200, reads_per_file=200)
    result = run(app, tasks, backend="ec2", n_instances=2)
    print(result.makespan_seconds, result.billing.total_cost)
"""

from __future__ import annotations

from repro.core.application import Application
from repro.core.backends import Backend, make_backend
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.task import RunResult, TaskSpec

__all__ = ["evaluate", "run"]


def run(
    app: Application,
    tasks: list[TaskSpec],
    backend: "str | Backend" = "ec2",
    **backend_kwargs,
) -> RunResult:
    """Run ``tasks`` through ``app`` on the chosen backend.

    ``backend`` is a registry name (``ec2``, ``azure``, ``hadoop``,
    ``dryadlinq``, ``local``) with optional configuration kwargs, or a
    pre-built :class:`~repro.core.backends.Backend` instance.
    """
    if isinstance(backend, str):
        backend = make_backend(backend, **backend_kwargs)
    elif backend_kwargs:
        raise TypeError(
            "backend kwargs are only accepted with a backend name, "
            "not a pre-built backend instance"
        )
    return backend.run(app, tasks)


def evaluate(
    app: Application,
    tasks: list[TaskSpec],
    backend: "str | Backend" = "ec2",
    **backend_kwargs,
) -> dict[str, float]:
    """Run and compute the paper's metrics in one call.

    Returns makespan, T1, parallel efficiency (Eq. 1) and the average
    time per file per core (Eq. 2).
    """
    if isinstance(backend, str):
        backend = make_backend(backend, **backend_kwargs)
    result = backend.run(app, tasks)
    t1 = backend.estimate_sequential_time(app, tasks)
    cores = backend.total_cores
    return {
        "makespan_seconds": result.makespan_seconds,
        "t1_seconds": t1,
        "cores": float(cores),
        "parallel_efficiency": parallel_efficiency(
            t1, result.makespan_seconds, cores
        ),
        "avg_time_per_file_per_core": average_time_per_file_per_core(
            result.makespan_seconds, cores, len(tasks)
        ),
    }
