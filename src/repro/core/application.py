"""Application descriptors: what the frameworks need to know to run one.

An :class:`Application` ties together the pieces each backend consumes:

* the calibrated :class:`~repro.apps.perfmodels.TaskPerfModel` (simulated
  backends);
* a factory for the real :class:`~repro.apps.executables.Executable`
  (local backend);
* the startup *preload* — e.g. BLAST workers download and extract the
  compressed NR database to local disk before taking any task.  Per the
  paper, preload time is tracked but excluded from reported compute time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps.executables import Executable
from repro.apps.perfmodels import APP_PERF_MODELS, TaskPerfModel

__all__ = ["Application", "get_application"]

# BLAST database: 8.7 GB uncompressed, 2.9 GB compressed download.
_BLAST_DB_DOWNLOAD_BYTES = int(2.9 * 1024**3)
_BLAST_DB_EXTRACT_SECONDS = 120.0


@dataclass(frozen=True)
class Application:
    """Everything a backend needs to schedule one application."""

    name: str
    perf_model: TaskPerfModel
    executable_factory: Callable[[], Executable] | None = None
    preload_bytes: int = 0  # downloaded once per worker/node at startup
    preload_extract_seconds: float = 0.0
    threads_per_worker: int = 1  # intra-task threads (blastp -num_threads)

    def __post_init__(self) -> None:
        if self.preload_bytes < 0:
            raise ValueError("preload_bytes must be non-negative")
        if self.threads_per_worker < 1:
            raise ValueError("threads_per_worker must be >= 1")

    def with_threads(self, threads: int) -> "Application":
        """Copy of this application using ``threads`` per worker."""
        from dataclasses import replace

        return replace(self, threads_per_worker=threads)

    def make_executable(self) -> Executable:
        """Instantiate the real executable (local backend only)."""
        if self.executable_factory is None:
            raise ValueError(
                f"application {self.name!r} has no local executable; "
                "construct one with an executable_factory to run locally"
            )
        return self.executable_factory()


def get_application(
    name: str,
    executable_factory: Callable[[], Executable] | None = None,
    threads_per_worker: int = 1,
) -> Application:
    """Build the standard descriptor for ``cap3``, ``blast`` or ``gtm``.

    ``executable_factory`` is required only for local-mode execution
    (the BLAST and GTM executables need a database / trained model that
    the caller owns).
    """
    try:
        perf_model = APP_PERF_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APP_PERF_MODELS)}"
        ) from None
    preload_bytes = 0
    extract = 0.0
    if name == "blast":
        preload_bytes = _BLAST_DB_DOWNLOAD_BYTES
        extract = _BLAST_DB_EXTRACT_SECONDS
    return Application(
        name=name,
        perf_model=perf_model,
        executable_factory=executable_factory,
        preload_bytes=preload_bytes,
        preload_extract_seconds=extract,
        threads_per_worker=threads_per_worker,
    )
