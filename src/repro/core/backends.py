"""Backend registry: one interface over the four frameworks.

Every backend exposes ``run(app, tasks)`` returning a
:class:`~repro.core.task.RunResult`, ``estimate_sequential_time`` (the T1
of Equation 1) and ``total_cores`` (the P).  The four simulated backends
mirror the paper's platforms; the local backend executes for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.classiccloud.framework import ClassicCloudConfig, ClassicCloudFramework
from repro.classiccloud.local import LocalClassicCloud
from repro.cluster.spec import get_cluster
from repro.core.application import Application
from repro.core.task import RunResult, TaskSpec
from repro.dryad.dryadlinq import DryadLinqConfig, DryadLinqSimulator
from repro.hadoop.job import HadoopJobConfig, HadoopSimulator

__all__ = [
    "Backend",
    "ClassicCloudBackend",
    "DryadLinqBackend",
    "HadoopBackend",
    "LocalBackend",
    "make_backend",
]


@runtime_checkable
class Backend(Protocol):
    """The uniform execution interface."""

    name: str

    @property
    def total_cores(self) -> int: ...

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult: ...

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float: ...


@dataclass
class ClassicCloudBackend:
    """EC2 or Azure Classic Cloud (simulated)."""

    config: ClassicCloudConfig
    name: str = field(init=False)

    def __post_init__(self) -> None:
        self.name = f"classiccloud-{self.config.provider}"
        self._framework = ClassicCloudFramework(self.config)

    @property
    def total_cores(self) -> int:
        return self.config.total_cores

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        return self._framework.run(app, tasks)

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        return self._framework.estimate_sequential_time(app, tasks)


@dataclass
class HadoopBackend:
    """Hadoop map-only job on a bare-metal cluster (simulated)."""

    config: HadoopJobConfig
    name: str = "hadoop"

    def __post_init__(self) -> None:
        self._simulator = HadoopSimulator(self.config)

    @property
    def total_cores(self) -> int:
        return self.config.total_slots

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        return self._simulator.run(app, tasks)

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        return self._simulator.estimate_sequential_time(app, tasks)


@dataclass
class DryadLinqBackend:
    """DryadLINQ Select on a Windows HPC cluster (simulated)."""

    config: DryadLinqConfig
    name: str = "dryadlinq"

    def __post_init__(self) -> None:
        self._simulator = DryadLinqSimulator(self.config)

    @property
    def total_cores(self) -> int:
        return self.config.total_cores

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        return self._simulator.run(app, tasks)

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        return self._simulator.estimate_sequential_time(app, tasks)


@dataclass
class LocalBackend:
    """Real execution on local threads with Classic Cloud semantics."""

    n_workers: int = 4
    visibility_timeout_s: float = 60.0
    timeout_s: float = 600.0
    name: str = "local"

    @property
    def total_cores(self) -> int:
        return self.n_workers

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        runner = LocalClassicCloud(
            n_workers=self.n_workers,
            visibility_timeout_s=self.visibility_timeout_s,
            timeout_s=self.timeout_s,
        )
        return runner.run(app.make_executable(), tasks)

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        """Real sequential execution time (actually runs the tasks)."""
        import time

        runner = LocalClassicCloud(
            n_workers=1,
            visibility_timeout_s=self.visibility_timeout_s,
            timeout_s=self.timeout_s,
        )
        start = time.monotonic()
        runner.run(app.make_executable(), tasks)
        return time.monotonic() - start


def make_backend(name: str, **kwargs) -> Backend:
    """Build a backend from a short name.

    * ``"ec2"`` — kwargs of :class:`ClassicCloudConfig` minus provider
      (defaults: 16 HCXL instances, 8 workers each — the paper's setup);
    * ``"azure"`` — likewise (defaults: 128 Small instances, 1 worker);
    * ``"hadoop"`` — kwargs of :class:`HadoopJobConfig`; ``cluster`` may
      be a catalog name;
    * ``"dryadlinq"`` — kwargs of :class:`DryadLinqConfig`, same cluster
      convention;
    * ``"local"`` — kwargs of :class:`LocalBackend`.
    """
    if name == "ec2":
        defaults = dict(
            provider="aws",
            instance_type="HCXL",
            n_instances=16,
            workers_per_instance=8,
        )
        defaults.update(kwargs)
        return ClassicCloudBackend(ClassicCloudConfig(**defaults))
    if name == "azure":
        defaults = dict(
            provider="azure",
            instance_type="Small",
            n_instances=128,
            workers_per_instance=1,
        )
        defaults.update(kwargs)
        return ClassicCloudBackend(ClassicCloudConfig(**defaults))
    if name == "hadoop":
        kwargs = dict(kwargs)
        cluster = kwargs.pop("cluster", "cap3-baremetal")
        if isinstance(cluster, str):
            cluster = get_cluster(cluster)
        return HadoopBackend(HadoopJobConfig(cluster=cluster, **kwargs))
    if name == "dryadlinq":
        kwargs = dict(kwargs)
        cluster = kwargs.pop("cluster", "cap3-baremetal-windows")
        if isinstance(cluster, str):
            cluster = get_cluster(cluster)
        return DryadLinqBackend(DryadLinqConfig(cluster=cluster, **kwargs))
    if name == "local":
        return LocalBackend(**kwargs)
    raise KeyError(
        f"unknown backend {name!r}; known: ec2, azure, hadoop, dryadlinq, local"
    )
