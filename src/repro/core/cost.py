"""Cost analyses: the paper's Table 4 and Section 4.3 comparison.

Combines the cloud billing reports with the owned-cluster TCO model to
answer the paper's question: what does assembling 4096 FASTA files cost
on EC2, on Azure, and on a cluster you already own at various
utilizations?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.billing import BillingReport
from repro.cluster.tco import ClusterTco

__all__ = ["CostComparison", "cloud_vs_cluster"]


@dataclass(frozen=True)
class CostComparison:
    """The Table 4 + Section 4.3 bundle."""

    aws: BillingReport
    azure: BillingReport
    cluster_wall_hours: float
    cluster_costs: tuple[tuple[float, float], ...]  # (utilization, $)

    def table4_rows(self) -> list[tuple[str, str, str]]:
        """(line item, AWS $, Azure $) rows in the paper's layout."""
        rows = []
        for (label, aws_value), (_, azure_value) in zip(
            self.aws.rows(), self.azure.rows()
        ):
            rows.append((label, f"{aws_value:.2f} $", f"{azure_value:.2f} $"))
        return rows

    def cluster_rows(self) -> list[tuple[str, str]]:
        """(utilization label, $) rows for the owned cluster."""
        return [
            (f"{int(u * 100)}% utilization", f"{cost:.2f} $")
            for u, cost in self.cluster_costs
        ]


def cloud_vs_cluster(
    aws_report: BillingReport,
    azure_report: BillingReport,
    cluster_wall_hours: float,
    tco: ClusterTco | None = None,
    utilizations: tuple[float, ...] = (0.8, 0.7, 0.6),
) -> CostComparison:
    """Assemble the comparison from measured runs.

    ``cluster_wall_hours`` is the whole-cluster wall time of the same job
    on the owned cluster (e.g. from the Hadoop simulator).
    """
    tco = tco or ClusterTco()
    return CostComparison(
        aws=aws_report,
        azure=azure_report,
        cluster_wall_hours=cluster_wall_hours,
        cluster_costs=tuple(
            (u, tco.job_cost(cluster_wall_hours, u)) for u in utilizations
        ),
    )
