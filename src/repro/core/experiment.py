"""Experiment drivers: the sweeps behind every figure in the paper.

* :func:`instance_type_study` — run one workload over several deployment
  shapes of equal core count and report time + the two cost views
  (Figures 3/4, 7/8, 12/13, and the Azure Figure 9).
* :func:`scalability_study` — grow the workload with the core count and
  report parallel efficiency (Eq. 1) and per-file per-core time (Eq. 2)
  (Figures 5/6, 10/11, 14/15).

Both drivers expand their sweep into independent points and hand them to
:func:`repro.sweep.runner.run_points`, so they accept ``jobs=`` (process
parallelism; default serial) and ``cache=`` (a
:class:`~repro.sweep.cache.ResultCache`; default none).  Results are
ordered by the input sweep regardless of worker completion order, so
``jobs=4`` and ``jobs=1`` return identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.application import Application
from repro.core.backends import Backend
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.task import TaskSpec
from repro.sweep.points import point_for
from repro.sweep.runner import run_points

__all__ = [
    "InstanceStudyRow",
    "ScalingPoint",
    "instance_type_study",
    "scalability_study",
]


@dataclass(frozen=True)
class InstanceStudyRow:
    """One bar of an instance-type figure."""

    label: str  # e.g. "HCXL - 2 x 8"
    compute_time_s: float
    compute_cost: float  # full started hours (the paper's 'hour units')
    amortized_cost: float
    total_cost: float
    per_core_time_s: float

    def as_tuple(self) -> tuple:
        return (
            self.label,
            self.compute_time_s,
            self.compute_cost,
            self.amortized_cost,
        )


def instance_type_study(
    app: Application,
    backends: Sequence[Backend],
    tasks: list[TaskSpec],
    *,
    jobs: "int | None" = 1,
    cache=None,
    progress=None,
) -> list[InstanceStudyRow]:
    """Run the same task set on each deployment shape.

    The paper holds total cores at 16 and varies the instance type;
    callers are responsible for choosing backends honouring that.
    ``progress`` is forwarded to :func:`run_points` (a callable taking
    one :class:`~repro.sweep.runner.PointProgress` per event).
    """
    points = [point_for(app, backend, tasks) for backend in backends]
    results = run_points(points, jobs=jobs, cache=cache, progress=progress)
    return [
        InstanceStudyRow(
            label=r.label,
            compute_time_s=r.makespan_s,
            compute_cost=r.compute_cost,
            amortized_cost=r.amortized_cost,
            total_cost=r.total_cost,
            per_core_time_s=average_time_per_file_per_core(
                r.makespan_s, r.cores, r.n_tasks
            ),
        )
        for r in results
    ]


@dataclass(frozen=True)
class ScalingPoint:
    """One x-position of an efficiency / per-core-time figure."""

    backend: str
    cores: int
    n_tasks: int
    makespan_s: float
    t1_s: float
    efficiency: float
    per_file_per_core_s: float


def scalability_study(
    app: Application,
    backend_factory: Callable[[int], Backend],
    core_counts: Sequence[int],
    tasks_for: Callable[[int], list[TaskSpec]],
    *,
    jobs: "int | None" = 1,
    cache=None,
    progress=None,
) -> list[ScalingPoint]:
    """Weak-scaling sweep in the paper's style.

    ``backend_factory(cores)`` builds a deployment with that many cores;
    ``tasks_for(cores)`` supplies the (growing) workload — the paper
    replicates its data set so workload scales with the fleet.
    ``progress`` is forwarded to :func:`run_points`.
    """
    points = [
        point_for(app, backend_factory(cores), tasks_for(cores))
        for cores in core_counts
    ]
    results = run_points(points, jobs=jobs, cache=cache, progress=progress)
    return [
        ScalingPoint(
            backend=r.backend,
            cores=r.cores,
            n_tasks=r.n_tasks,
            makespan_s=r.makespan_s,
            t1_s=r.t1_s,
            efficiency=parallel_efficiency(r.t1_s, r.makespan_s, r.cores),
            per_file_per_core_s=average_time_per_file_per_core(
                r.makespan_s, r.cores, r.n_tasks
            ),
        )
        for r in results
    ]
