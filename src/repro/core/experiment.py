"""Experiment drivers: the sweeps behind every figure in the paper.

* :func:`instance_type_study` — run one workload over several deployment
  shapes of equal core count and report time + the two cost views
  (Figures 3/4, 7/8, 12/13, and the Azure Figure 9).
* :func:`scalability_study` — grow the workload with the core count and
  report parallel efficiency (Eq. 1) and per-file per-core time (Eq. 2)
  (Figures 5/6, 10/11, 14/15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.application import Application
from repro.core.backends import Backend
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.task import TaskSpec

__all__ = [
    "InstanceStudyRow",
    "ScalingPoint",
    "instance_type_study",
    "scalability_study",
]


@dataclass(frozen=True)
class InstanceStudyRow:
    """One bar of an instance-type figure."""

    label: str  # e.g. "HCXL - 2 x 8"
    compute_time_s: float
    compute_cost: float  # full started hours (the paper's 'hour units')
    amortized_cost: float
    total_cost: float
    per_core_time_s: float

    def as_tuple(self) -> tuple:
        return (
            self.label,
            self.compute_time_s,
            self.compute_cost,
            self.amortized_cost,
        )


def instance_type_study(
    app: Application,
    backends: Sequence[Backend],
    tasks: list[TaskSpec],
) -> list[InstanceStudyRow]:
    """Run the same task set on each deployment shape.

    The paper holds total cores at 16 and varies the instance type;
    callers are responsible for choosing backends honouring that.
    """
    rows = []
    for backend in backends:
        result = backend.run(app, tasks)
        billing = result.billing
        label = getattr(getattr(backend, "config", None), "label", backend.name)
        rows.append(
            InstanceStudyRow(
                label=label,
                compute_time_s=result.makespan_seconds,
                compute_cost=billing.compute_cost if billing else 0.0,
                amortized_cost=(
                    billing.total_amortized_cost if billing else 0.0
                ),
                total_cost=billing.total_cost if billing else 0.0,
                per_core_time_s=average_time_per_file_per_core(
                    result.makespan_seconds, backend.total_cores, len(tasks)
                ),
            )
        )
    return rows


@dataclass(frozen=True)
class ScalingPoint:
    """One x-position of an efficiency / per-core-time figure."""

    backend: str
    cores: int
    n_tasks: int
    makespan_s: float
    t1_s: float
    efficiency: float
    per_file_per_core_s: float


def scalability_study(
    app: Application,
    backend_factory: Callable[[int], Backend],
    core_counts: Sequence[int],
    tasks_for: Callable[[int], list[TaskSpec]],
) -> list[ScalingPoint]:
    """Weak-scaling sweep in the paper's style.

    ``backend_factory(cores)`` builds a deployment with that many cores;
    ``tasks_for(cores)`` supplies the (growing) workload — the paper
    replicates its data set so workload scales with the fleet.
    """
    points = []
    for cores in core_counts:
        backend = backend_factory(cores)
        tasks = tasks_for(cores)
        result = backend.run(app, tasks)
        t1 = backend.estimate_sequential_time(app, tasks)
        points.append(
            ScalingPoint(
                backend=backend.name,
                cores=backend.total_cores,
                n_tasks=len(tasks),
                makespan_s=result.makespan_seconds,
                t1_s=t1,
                efficiency=parallel_efficiency(
                    t1, result.makespan_seconds, backend.total_cores
                ),
                per_file_per_core_s=average_time_per_file_per_core(
                    result.makespan_seconds, backend.total_cores, len(tasks)
                ),
            )
        )
    return points
