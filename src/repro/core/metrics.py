"""Evaluation metrics from the paper's Section 3.

* Equation 1 — parallel efficiency on P cores::

      efficiency = T1 / (P * Tp)

  where ``Tp`` is the parallel run time and ``T1`` the best sequential
  run time on the same environment and data (measured with inputs on
  local disk, i.e. no transfer overheads).

* Equation 2 — average run time per computation per core::

      avg = Tp * P / n_computations

  "to give readers an idea of the actual performance they can obtain
  from a given environment."
"""

from __future__ import annotations

__all__ = [
    "average_time_per_file_per_core",
    "parallel_efficiency",
    "speedup",
]


def parallel_efficiency(t1_seconds: float, tp_seconds: float, cores: int) -> float:
    """Equation 1: ``T1 / (P * Tp)``."""
    if t1_seconds <= 0 or tp_seconds <= 0:
        raise ValueError("run times must be positive")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return t1_seconds / (cores * tp_seconds)


def speedup(t1_seconds: float, tp_seconds: float) -> float:
    """Classic speedup ``T1 / Tp``."""
    if t1_seconds <= 0 or tp_seconds <= 0:
        raise ValueError("run times must be positive")
    return t1_seconds / tp_seconds


def average_time_per_file_per_core(
    tp_seconds: float, cores: int, n_computations: int
) -> float:
    """Equation 2: ``Tp * P / num computations``."""
    if tp_seconds < 0:
        raise ValueError("Tp must be non-negative")
    if cores < 1 or n_computations < 1:
        raise ValueError("cores and n_computations must be >= 1")
    return tp_seconds * cores / n_computations
