"""Report rendering: the paper's tables and figure series as text.

Benchmarks print through these helpers so every table/figure regenerates
in a recognizable layout.  :data:`FEATURE_MATRIX` is the paper's Table 3
(qualitative technology comparison) as structured data.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "FEATURE_MATRIX",
    "ascii_bars",
    "feature_matrix_rows",
    "format_series",
    "format_table",
]

# Table 3: Summary of cloud technology features.
FEATURE_MATRIX: dict[str, dict[str, str]] = {
    "Programming patterns": {
        "AWS/Azure": (
            "Independent job execution; more structure possible using a "
            "client-side driver program"
        ),
        "Hadoop": "MapReduce",
        "DryadLINQ": "DAG execution, extensible to MapReduce and other patterns",
    },
    "Fault tolerance": {
        "AWS/Azure": "Task re-execution based on a configurable time out",
        "Hadoop": "Re-execution of failed and slow tasks",
        "DryadLINQ": "Re-execution of failed and slow tasks",
    },
    "Data storage and communication": {
        "AWS/Azure": "S3/Azure Storage; data retrieved through HTTP",
        "Hadoop": "HDFS parallel file system; TCP-based communication",
        "DryadLINQ": "Local files",
    },
    "Environments": {
        "AWS/Azure": "EC2/Azure virtual instances, local compute resources",
        "Hadoop": "Linux cluster, Amazon Elastic MapReduce",
        "DryadLINQ": "Windows HPCS cluster",
    },
    "Scheduling and load balancing": {
        "AWS/Azure": (
            "Dynamic scheduling through a global queue; natural load "
            "balancing"
        ),
        "Hadoop": (
            "Data locality, rack-aware dynamic task scheduling through a "
            "global queue; natural load balancing"
        ),
        "DryadLINQ": (
            "Data locality, network-topology-aware scheduling; static task "
            "partitions at the node level; suboptimal load balancing"
        ),
    },
}


def feature_matrix_rows() -> list[tuple[str, str, str, str]]:
    """Table 3 as (feature, AWS/Azure, Hadoop, DryadLINQ) rows."""
    return [
        (
            feature,
            cells["AWS/Azure"],
            cells["Hadoop"],
            cells["DryadLINQ"],
        )
        for feature, cells in FEATURE_MATRIX.items()
    ]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Plain-text table with aligned columns."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def ascii_bars(
    items: Sequence[tuple[str, float]],
    width: int = 40,
    value_format: str = "{:,.0f}",
    title: str = "",
) -> str:
    """Horizontal bar chart in plain text — the figures' bar form.

    ``items`` are (label, value) pairs; bars scale to the maximum value.
    """
    if not items:
        raise ValueError("no bars to draw")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(value for _, value in items)
    if peak < 0:
        raise ValueError("bar values must be non-negative")
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        filled = 0 if peak == 0 else round(width * value / peak)
        bar = "#" * filled
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value_format.format(value)}"
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: dict[str, dict[object, float]],
    value_format: str = "{:.3f}",
    title: str = "",
) -> str:
    """A figure's data as a table: one column per series.

    ``series`` maps series name -> {x value: y value}.
    """
    xs: list[object] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [str(x)]
        for name in series:
            value = series[name].get(x)
            row.append(value_format.format(value) if value is not None else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)
