"""Task model shared by every framework.

The paper's unit of work: "a single task comprises of a single input file
and a single output file".  A :class:`TaskSpec` describes one such task —
enough for a real worker to execute it (keys/paths) *and* for the
simulator to play it (sizes and work units).  A :class:`TaskRecord` is
the per-execution trace the frameworks emit for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskRecord", "TaskSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One independent, idempotent file-in/file-out task."""

    task_id: str
    input_key: str  # blob key (simulated) or input file path (local)
    output_key: str  # blob key or output file path
    input_size: int  # bytes
    output_size: int  # bytes (estimate used by the simulator)
    work_units: float  # application work units (see TaskPerfModel.unit)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if self.input_size < 0 or self.output_size < 0:
            raise ValueError("sizes must be non-negative")
        if self.work_units < 0:
            raise ValueError("work_units must be non-negative")


@dataclass
class TaskRecord:
    """Trace of one task *execution attempt* (duplicates get their own)."""

    task_id: str
    worker: str
    started_at: float
    finished_at: float
    download_time: float = 0.0
    compute_time: float = 0.0
    upload_time: float = 0.0
    attempt: int = 1
    was_duplicate: bool = False  # a re-execution of already-completed work
    speculative: bool = False  # launched as a backup copy (Hadoop/Dryad)
    won: bool = True  # whether this attempt's result was the one kept

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class RunResult:
    """Outcome of running a workload on some backend."""

    backend: str
    app_name: str
    n_tasks: int
    makespan_seconds: float
    records: list[TaskRecord] = field(default_factory=list)
    billing: object | None = None  # BillingReport for cloud backends
    extras: dict[str, float] = field(default_factory=dict)
    completed: set[str] = field(default_factory=set)
    # Tasks the framework gave up on (e.g. poison tasks quarantined in a
    # dead-letter queue).  Disjoint from ``completed``.
    failed: set[str] = field(default_factory=set)
    # Queue-cost accounting (QueueStats as a plain dict) for backends
    # that drive work through a MessageQueue; None elsewhere.
    queue_stats: dict | None = None
    # Where this run's exported trace lives (path/URI), if traced.
    trace_ref: str | None = None

    @property
    def completed_task_ids(self) -> set[str]:
        """Tasks whose completion the framework observed.

        Falls back to winning task records when the framework did not
        supply an explicit completion set.
        """
        if self.completed:
            return self.completed
        return {r.task_id for r in self.records if r.won}

    @property
    def duplicate_executions(self) -> int:
        return sum(1 for r in self.records if r.was_duplicate or not r.won)

    def total_compute_seconds(self) -> float:
        """Sum of compute time across all attempts (including losers)."""
        return sum(r.compute_time for r in self.records)

    def to_dict(self) -> dict:
        """JSON-serializable trace of the run (records, billing, extras).

        The round-trippable export downstream analysis tooling consumes;
        see :meth:`to_json`.
        """
        billing = None
        if self.billing is not None:
            billing = {
                "compute_hour_units": self.billing.compute_hour_units,
                "compute_cost": self.billing.compute_cost,
                "amortized_compute_cost": self.billing.amortized_compute_cost,
                "queue_cost": self.billing.queue_cost,
                "storage_cost": self.billing.storage_cost,
                "transfer_cost": self.billing.transfer_cost,
                "total_cost": self.billing.total_cost,
            }
        return {
            "backend": self.backend,
            "app_name": self.app_name,
            "n_tasks": self.n_tasks,
            "makespan_seconds": self.makespan_seconds,
            "completed": sorted(self.completed_task_ids),
            "failed": sorted(self.failed),
            "extras": dict(self.extras),
            "billing": billing,
            "queue_stats": dict(self.queue_stats) if self.queue_stats else None,
            "trace_ref": self.trace_ref,
            "records": [
                {
                    "task_id": r.task_id,
                    "worker": r.worker,
                    "started_at": r.started_at,
                    "finished_at": r.finished_at,
                    "download_time": r.download_time,
                    "compute_time": r.compute_time,
                    "upload_time": r.upload_time,
                    "attempt": r.attempt,
                    "was_duplicate": r.was_duplicate,
                    "speculative": r.speculative,
                    "won": r.won,
                }
                for r in self.records
            ],
        }

    def to_json(self, path: "str | None" = None, indent: int = 2) -> str:
        """Serialize the trace to JSON; also writes ``path`` if given."""
        import json

        text = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            from pathlib import Path

            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output.

        Billing round-trips as the raw dict (enough for analysis; the
        full BillingReport object does not survive serialization).
        """
        records = [
            TaskRecord(
                task_id=r["task_id"],
                worker=r["worker"],
                started_at=r["started_at"],
                finished_at=r["finished_at"],
                download_time=r.get("download_time", 0.0),
                compute_time=r.get("compute_time", 0.0),
                upload_time=r.get("upload_time", 0.0),
                attempt=r.get("attempt", 1),
                was_duplicate=r.get("was_duplicate", False),
                speculative=r.get("speculative", False),
                won=r.get("won", True),
            )
            for r in data.get("records", [])
        ]
        return cls(
            backend=data["backend"],
            app_name=data["app_name"],
            n_tasks=data["n_tasks"],
            makespan_seconds=data["makespan_seconds"],
            records=records,
            billing=data.get("billing"),
            extras=dict(data.get("extras", {})),
            completed=set(data.get("completed", [])),
            failed=set(data.get("failed", [])),
            queue_stats=data.get("queue_stats"),
            trace_ref=data.get("trace_ref"),
        )

    @classmethod
    def from_json(cls, path: str) -> "RunResult":
        """Load a trace previously written by :meth:`to_json`."""
        import json
        from pathlib import Path

        return cls.from_dict(json.loads(Path(path).read_text("utf-8")))
