"""Microsoft DryadLINQ substrate (simulated + local mini runtime).

Dryad expresses computations as directed acyclic dataflow graphs of
vertices; DryadLINQ compiles LINQ queries to those graphs.  The paper's
framework applies the DryadLINQ ``Select`` operator over manually
partitioned data stored in Windows shared directories.  Properties
modelled, per the paper:

* **manual data partitioning** (:mod:`repro.dryad.partitions`) — data is
  split and distributed to node-local shared directories ahead of time,
  with generated partition metadata files;
* **static node-level task partitions** (:mod:`repro.dryad.dryadlinq`) —
  each node owns its partition for the duration of the job; there is no
  cross-node work stealing, which is exactly why the paper finds
  DryadLINQ's load balancing suboptimal on inhomogeneous data;
* **failure handling** — failed vertices re-execute, slow vertices get
  duplicates.
"""

from repro.dryad.dryadlinq import (
    DryadLinqConfig,
    DryadLinqSimulator,
    DryadTable,
    LocalDryadLinq,
)
from repro.dryad.graph import DryadGraph, Vertex
from repro.dryad.partitions import PartitionSet, partition_tasks

__all__ = [
    "DryadGraph",
    "DryadLinqConfig",
    "DryadLinqSimulator",
    "DryadTable",
    "LocalDryadLinq",
    "PartitionSet",
    "Vertex",
    "partition_tasks",
]
