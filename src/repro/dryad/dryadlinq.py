"""DryadLINQ Select over partitioned tables: simulator and local runtime.

The paper's DryadLINQ implementation applies ``Select`` on a partitioned
table; DryadLINQ compiles that to one vertex per partition, each pinned
to the node holding the partition's data (Windows shared directory).
Inside a node, the vertex processes its files using the node's cores;
across nodes there is **no** re-balancing — the static-partitioning
behaviour behind the paper's load-balancing comparison.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.apps.executables import Executable
from repro.apps.perfmodels import task_runtime_seconds
from repro.cluster.spec import ClusterSpec
from repro.core.application import Application
from repro.core.task import RunResult, TaskRecord, TaskSpec
from repro.dryad.graph import DryadGraph, Vertex
from repro.dryad.partitions import PartitionSet, partition_tasks
from repro.obs.context import current as _current_obs
from repro.sim.engine import make_environment
from repro.sim.rng import RngRegistry

__all__ = [
    "DryadLinqConfig",
    "DryadLinqSimulator",
    "DryadTable",
    "LocalDryadLinq",
]


class DryadTable:
    """A partitioned table: the object LINQ queries run against."""

    def __init__(self, partition_set: PartitionSet):
        self.partition_set = partition_set

    @classmethod
    def from_tasks(cls, tasks: list[TaskSpec], n_partitions: int) -> "DryadTable":
        return cls(partition_tasks(tasks, n_partitions))

    def select(self, operation_name: str = "select") -> DryadGraph:
        """Compile ``Select`` into the Dryad graph: one vertex per
        partition, pinned to its data's node."""
        graph = DryadGraph()
        for node, partition in enumerate(self.partition_set.partitions):
            graph.add_vertex(
                Vertex(
                    vertex_id=f"{operation_name}-{node:03d}",
                    kind=operation_name,
                    payload=partition,
                    preferred_node=node,
                )
            )
        return graph


@dataclass(frozen=True)
class DryadLinqConfig:
    """One Windows HPC cluster deployment."""

    cluster: ClusterSpec
    workers_per_node: int | None = None  # default: schedulable cores
    vertex_failure_probability: float = 0.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 5.0
    max_attempts: int = 4
    job_startup_seconds: float = 5.0  # graph compilation + vertex dispatch
    seed: int = 0

    def __post_init__(self) -> None:
        if self.cluster.node.machine.os != "windows":
            raise ValueError(
                "DryadLINQ can be used only with Microsoft Windows HPC "
                f"clusters; {self.cluster.name} runs "
                f"{self.cluster.node.machine.os}"
            )
        if self.slots_per_node < 1:
            raise ValueError("workers_per_node must be >= 1")
        if self.slots_per_node > self.cluster.node.machine.cores:
            raise ValueError("workers_per_node exceeds node cores")

    @property
    def slots_per_node(self) -> int:
        if self.workers_per_node is not None:
            return self.workers_per_node
        return self.cluster.node.cores_for_scheduling

    @property
    def total_cores(self) -> int:
        return self.slots_per_node * self.cluster.n_nodes


class DryadLinqSimulator:
    """Play a Select job over the simulated Windows HPC cluster."""

    def __init__(self, config: DryadLinqConfig):
        self.config = config

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        if not tasks:
            raise ValueError("no tasks to run")
        table = DryadTable.from_tasks(tasks, self.config.cluster.n_nodes)
        graph = table.select(operation_name=app.name)
        return _DryadRun(self.config, app, tasks, table, graph).execute()

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        """T1: one uncontended worker, data on the local shared dir."""
        machine = self.config.cluster.node.machine
        return sum(
            task_runtime_seconds(
                app.perf_model, t.work_units, machine, concurrent_workers=1
            )
            for t in tasks
        )


class _DryadRun:
    def __init__(self, config, app, tasks, table, graph):
        self.config = config
        self.app = app
        self.tasks = tasks
        self.table = table
        self.graph = graph
        self.env = make_environment()
        self.rng = RngRegistry(config.seed)
        self.records: list[TaskRecord] = []
        self.completed: set[str] = set()
        self.obs = _current_obs()
        self.tracer = self.obs.tracer
        self._m_dispatches = self.obs.metrics.counter("scheduler.dispatches")

    def execute(self) -> RunResult:
        # Manual sidecar distribution (paper Section 5): "we manually
        # distributed the database to each node using Windows-shared
        # directories" — every node copies from the head node's share,
        # so the head's uplink serializes the transfers.  Excluded from
        # the measured window like the paper excludes distribution time.
        preload_seconds = 0.0
        if self.app.preload_bytes:
            nic_bps = self.config.cluster.interconnect_gbps * 1e9 / 8.0
            preload_seconds = (
                self.config.cluster.n_nodes * self.app.preload_bytes / nic_bps
                + self.app.preload_extract_seconds
            )
        vertex_processes = []
        for vertex in self.graph.vertices():
            process = self.env.process(
                self._vertex(vertex), name=vertex.vertex_id
            )
            vertex_processes.append(process)
        barrier = self.env.all_of(vertex_processes)
        self.env.run(until=barrier)
        makespan = self.env.now
        self.obs.metrics.counter("sim.events").inc(self.env.events_scheduled)
        return RunResult(
            backend="dryadlinq",
            app_name=self.app.name,
            n_tasks=len(self.tasks),
            makespan_seconds=makespan,
            records=self.records,
            extras={
                "partition_imbalance": self.table.partition_set.imbalance(),
                "n_vertices": float(len(self.graph)),
                "preload_seconds": preload_seconds,
            },
            completed=set(self.completed),
        )

    def _vertex(self, vertex: Vertex):
        """One partition's execution on its pinned node.

        The vertex fans its partition's files across the node's worker
        slots (dynamic *within* the node, static across nodes).  Vertex
        failure re-executes the failed file with bounded attempts.
        """
        config = self.config
        node = vertex.preferred_node
        yield self.env.timeout(config.job_startup_seconds)
        self._m_dispatches.inc()
        self.tracer.instant(
            "scheduler.dispatch",
            track=vertex.vertex_id,
            ts=self.env.now,
            node=node,
            n_tasks=len(vertex.payload),
        )
        partition: tuple[TaskSpec, ...] = vertex.payload
        queue = list(partition)
        slots = []
        for slot in range(config.slots_per_node):
            name = f"{vertex.vertex_id}-w{slot}"
            slots.append(
                self.env.process(self._node_worker(queue, node, name), name=name)
            )
        yield self.env.all_of(slots)

    def _node_worker(self, queue: list[TaskSpec], node: int, name: str):
        config = self.config
        machine = config.cluster.node.machine
        fail_rng = self.rng.stream(f"{name}-fail")
        straggle_rng = self.rng.stream(f"{name}-straggle")
        noise_rng = self.rng.stream(f"{name}-noise")
        disk_bps = machine.disk_mbps * 1e6
        while queue:
            task = queue.pop(0)
            attempts = 0
            while True:
                attempts += 1
                started = self.env.now
                read_time = task.input_size / disk_bps
                service = task_runtime_seconds(
                    self.app.perf_model,
                    task.work_units,
                    machine,
                    concurrent_workers=config.slots_per_node,
                )
                if (
                    config.straggler_probability
                    and straggle_rng.random() < config.straggler_probability
                ):
                    service *= config.straggler_slowdown
                service *= float(noise_rng.uniform(0.98, 1.02))
                write_time = task.output_size / disk_bps
                if (
                    config.vertex_failure_probability
                    and fail_rng.random() < config.vertex_failure_probability
                ):
                    yield self.env.timeout(
                        read_time + service * float(fail_rng.uniform(0.1, 0.9))
                    )
                    if attempts >= config.max_attempts:
                        raise RuntimeError(
                            f"task {task.task_id} failed {attempts} attempts"
                        )
                    continue
                yield self.env.timeout(read_time + service + write_time)
                self.completed.add(task.task_id)
                if self.obs.enabled:
                    # Timeline sample: job progress over sim time.
                    self.obs.timeline.sample(
                        "scheduler.tasks_completed",
                        self.env.now,
                        len(self.completed),
                    )
                if self.tracer.enabled:
                    tid = task.task_id
                    self.tracer.add(
                        "task.download", track=name,
                        start=started, end=started + read_time, task_id=tid,
                    )
                    self.tracer.add(
                        "task.compute", track=name,
                        start=started + read_time,
                        end=started + read_time + service,
                        task_id=tid,
                    )
                    self.tracer.add(
                        "task.upload", track=name,
                        start=started + read_time + service,
                        end=self.env.now, task_id=tid,
                    )
                self.records.append(
                    TaskRecord(
                        task_id=task.task_id,
                        worker=name,
                        started_at=started,
                        finished_at=self.env.now,
                        download_time=read_time,
                        compute_time=service,
                        upload_time=write_time,
                        attempt=attempts,
                    )
                )
                break


class LocalDryadLinq:
    """Real-execution Select with static node partitions.

    ``n_nodes`` independent worker pools each own one partition of the
    input files; no pool steals from another — wall time is the slowest
    pool, demonstrating the static-partitioning behaviour on real work.
    """

    def __init__(self, n_nodes: int = 2, workers_per_node: int = 2):
        if n_nodes < 1 or workers_per_node < 1:
            raise ValueError("nodes and workers must be >= 1")
        self.n_nodes = n_nodes
        self.workers_per_node = workers_per_node

    def run(self, executable: Executable, tasks: list[TaskSpec]) -> RunResult:
        if not tasks:
            raise ValueError("no tasks to run")
        partition_set = partition_tasks(tasks, self.n_nodes)
        records: list[TaskRecord] = []
        # Captured on the driving thread; pool threads close over it.
        tracer = _current_obs().tracer
        start = time.monotonic()  # repro: noqa[RPR001] real runtime

        def run_partition(node: int) -> list[TaskRecord]:
            partition = partition_set.partition_for_node(node)
            out: list[TaskRecord] = []

            def one(task: TaskSpec) -> TaskRecord:
                Path(task.output_key).parent.mkdir(parents=True, exist_ok=True)
                t0 = time.monotonic()  # repro: noqa[RPR001] real runtime
                executable.run(task.input_key, task.output_key)
                t1 = time.monotonic()  # repro: noqa[RPR001] real runtime
                tracer.add(
                    "task.compute",
                    track=f"node{node}",
                    start=t0 - start,
                    end=t1 - start,
                    domain="wall",
                    task_id=task.task_id,
                )
                return TaskRecord(
                    task_id=task.task_id,
                    worker=f"node{node}",
                    started_at=t0 - start,
                    finished_at=t1 - start,
                    compute_time=t1 - t0,
                )

            if not partition:
                return out
            with ThreadPoolExecutor(max_workers=self.workers_per_node) as pool:
                out = list(pool.map(one, partition))
            return out

        with ThreadPoolExecutor(max_workers=self.n_nodes) as nodes:
            for batch in nodes.map(run_partition, range(self.n_nodes)):
                records.extend(batch)
        return RunResult(
            backend="dryadlinq-local",
            app_name=executable.name,
            n_tasks=len(tasks),
            makespan_seconds=time.monotonic() - start,  # repro: noqa[RPR001] real runtime
            records=records,
            extras={"partition_imbalance": partition_set.imbalance()},
            completed={r.task_id for r in records},
        )
