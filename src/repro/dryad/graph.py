"""Dryad computation graphs: vertices, channels, staging.

A Dryad job is a DAG whose vertices are sequential programs and whose
edges are communication channels.  The pleasingly parallel Select use
case only needs single-stage graphs, but the model is general: stages
are computed by topological layering, and cycles are rejected — the
properties any Dryad scheduler relies on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

__all__ = ["DryadGraph", "Vertex"]


@dataclass
class Vertex:
    """One vertex: a sequential computation bound to a node's data."""

    vertex_id: str
    kind: str = "select"
    payload: Any = None
    preferred_node: int | None = None  # data-locality hint


class DryadGraph:
    """A directed acyclic graph of vertices and channels."""

    def __init__(self):
        self._vertices: dict[str, Vertex] = {}
        self._out: dict[str, list[str]] = {}
        self._in: dict[str, list[str]] = {}

    def add_vertex(self, vertex: Vertex) -> Vertex:
        if vertex.vertex_id in self._vertices:
            raise ValueError(f"duplicate vertex {vertex.vertex_id!r}")
        self._vertices[vertex.vertex_id] = vertex
        self._out[vertex.vertex_id] = []
        self._in[vertex.vertex_id] = []
        return vertex

    def add_channel(self, src: str, dst: str) -> None:
        """A communication edge from ``src`` to ``dst``."""
        if src not in self._vertices or dst not in self._vertices:
            raise KeyError("both endpoints must exist")
        if src == dst:
            raise ValueError("self-channels are not allowed")
        self._out[src].append(dst)
        self._in[dst].append(src)

    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vertex_id: str) -> bool:
        return vertex_id in self._vertices

    def vertex(self, vertex_id: str) -> Vertex:
        return self._vertices[vertex_id]

    def vertices(self) -> list[Vertex]:
        return list(self._vertices.values())

    def predecessors(self, vertex_id: str) -> list[str]:
        return list(self._in[vertex_id])

    def successors(self, vertex_id: str) -> list[str]:
        return list(self._out[vertex_id])

    def stages(self) -> list[list[Vertex]]:
        """Topological layers (vertices with no remaining inputs first).

        Raises ``ValueError`` if the graph has a cycle.
        """
        in_degree = {v: len(self._in[v]) for v in self._vertices}
        frontier = deque(
            sorted(v for v, d in in_degree.items() if d == 0)
        )
        layers: list[list[Vertex]] = []
        seen = 0
        while frontier:
            layer = sorted(frontier)
            frontier.clear()
            layers.append([self._vertices[v] for v in layer])
            seen += len(layer)
            for v in layer:
                for succ in self._out[v]:
                    in_degree[succ] -= 1
                    if in_degree[succ] == 0:
                        frontier.append(succ)
        if seen != len(self._vertices):
            raise ValueError("graph contains a cycle")
        return layers
