"""Manual data partitioning for DryadLINQ (paper Section 2.3).

"Data for the computations need to be partitioned manually and stored
beforehand in the local disks of the computational nodes via Windows
shared directories.  Data partitioning, distribution and the generation
of metadata files for the data partitions is implemented as part of our
pleasingly parallel application framework."

:func:`partition_tasks` is that partitioner: contiguous, near-equal *by
file count* (the static policy whose load imbalance the paper measures),
and :func:`PartitionSet.write_metadata` emits the per-partition metadata
files a DryadLINQ partitioned table requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.task import TaskSpec

__all__ = ["PartitionSet", "partition_tasks"]


@dataclass(frozen=True)
class PartitionSet:
    """Tasks statically divided across nodes."""

    partitions: tuple[tuple[TaskSpec, ...], ...]

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def partition_for_node(self, node: int) -> tuple[TaskSpec, ...]:
        return self.partitions[node]

    def sizes(self) -> list[int]:
        """File counts per partition."""
        return [len(p) for p in self.partitions]

    def work_per_partition(self) -> list[float]:
        """Total work units per partition — the imbalance diagnostic."""
        return [sum(t.work_units for t in p) for p in self.partitions]

    def imbalance(self) -> float:
        """max/mean work ratio (1.0 = perfectly balanced)."""
        work = self.work_per_partition()
        mean = sum(work) / len(work)
        return max(work) / mean if mean > 0 else 1.0

    def write_metadata(self, directory: str | Path) -> list[Path]:
        """Write one ``partition.NNN.pt`` metadata file per partition.

        Format (one line per file): ``<task id>\\t<input path>\\t<bytes>``,
        with a header naming the partition — the shape DryadLINQ's
        partitioned-table loader consumes.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = []
        for i, partition in enumerate(self.partitions):
            lines = [f"#partition\t{i}\t{len(partition)}"]
            lines.extend(
                f"{t.task_id}\t{t.input_key}\t{t.input_size}" for t in partition
            )
            path = directory / f"partition.{i:03d}.pt"
            path.write_text("\n".join(lines) + "\n", encoding="utf-8")
            paths.append(path)
        return paths


def partition_tasks(tasks: list[TaskSpec], n_partitions: int) -> PartitionSet:
    """Split ``tasks`` into contiguous near-equal partitions by count.

    This is deliberately count-based, not work-based: the real system
    partitions files without knowing their processing cost, which is
    precisely why inhomogeneous workloads unbalance DryadLINQ.
    """
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    if not tasks:
        raise ValueError("no tasks to partition")
    n = len(tasks)
    base, extra = divmod(n, n_partitions)
    partitions = []
    start = 0
    for i in range(n_partitions):
        count = base + (1 if i < extra else 0)
        partitions.append(tuple(tasks[start : start + count]))
        start += count
    return PartitionSet(partitions=tuple(partitions))
