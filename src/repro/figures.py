"""Programmatic regeneration of the paper's figures.

One function per evaluation artifact, each returning the printable table
text.  The benchmark suite asserts shapes on the same underlying
studies; this module is the lightweight CLI/table surface
(``python -m repro figures <id>``).

Every figure is a sweep of independent simulation points, so they all
route through :mod:`repro.sweep`: points fan out over worker processes
(``REPRO_JOBS`` / ``--jobs``) and completed points are served from the
content-addressed cache under ``.repro-cache/`` (``REPRO_NO_CACHE=1``
disables it).  Result ordering is fixed by the sweep definition, never
by worker completion order, so the tables are identical at any job
count.
"""

from __future__ import annotations

from typing import Callable

from repro.cloud.failures import FaultPlan
from repro.cluster import get_cluster
from repro.core.application import get_application
from repro.core.backends import make_backend
from repro.core.experiment import instance_type_study, scalability_study
from repro.core.metrics import average_time_per_file_per_core, parallel_efficiency
from repro.core.report import format_series, format_table
from repro.sweep import default_cache, point_for, run_points

__all__ = ["FIGURES", "available_figures", "render_figure"]

# The paper's 16-core EC2 deployment shapes.
_EC2_SHAPES = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]


def _quiet(backend: str, **kwargs):
    kwargs.setdefault("fault_plan", FaultPlan.none())
    kwargs.setdefault("seed", 17)
    return make_backend(backend, **kwargs)


def _ec2_16core_backends():
    return [
        _quiet(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=w,
        )
        for itype, n, w in _EC2_SHAPES
    ]


def _instance_figure(app_name: str, tasks, title: str) -> str:
    app = get_application(app_name)
    rows = instance_type_study(
        app, _ec2_16core_backends(), tasks, jobs=None, cache=default_cache()
    )
    return format_table(
        ["deployment", "compute time (s)", "cost $ (hour units)",
         "amortized $"],
        [
            [r.label, f"{r.compute_time_s:,.0f}", f"{r.compute_cost:.2f}",
             f"{r.amortized_cost:.2f}"]
            for r in rows
        ],
        title=title,
    )


def fig3_4() -> str:
    """Cap3 cost/time across EC2 instance types."""
    from repro.workloads.genome import cap3_task_specs

    return _instance_figure(
        "cap3",
        cap3_task_specs(200, reads_per_file=200),
        "Figures 3+4: Cap3 on EC2 instance types",
    )


def fig5_6() -> str:
    """Cap3 parallel efficiency and per-file time, four frameworks."""
    from repro.workloads.genome import cap3_task_specs

    app = get_application("cap3")
    core_counts = [32, 64, 128]
    factories: dict[str, Callable] = {
        "EC2": lambda cores: _quiet("ec2", n_instances=cores // 8),
        "Azure": lambda cores: _quiet("azure", n_instances=cores),
        "Hadoop": lambda cores: make_backend(
            "hadoop", cluster=get_cluster("cap3-baremetal").subset(cores // 8)
        ),
        "DryadLINQ": lambda cores: make_backend(
            "dryadlinq",
            cluster=get_cluster("cap3-baremetal-windows").subset(cores // 8),
        ),
    }

    def tasks_for(cores):
        return cap3_task_specs(cores * 4, reads_per_file=458)

    cache = default_cache()
    efficiency, per_file = {}, {}
    for name, factory in factories.items():
        points = scalability_study(
            app, factory, core_counts, tasks_for, jobs=None, cache=cache
        )
        efficiency[name] = {p.cores: p.efficiency for p in points}
        per_file[name] = {p.cores: p.per_file_per_core_s for p in points}
    return (
        format_series("cores", efficiency,
                      title="Figure 5: Cap3 parallel efficiency")
        + "\n\n"
        + format_series("cores", per_file, value_format="{:.1f}",
                        title="Figure 6: Cap3 per-file per-core time (s)")
    )


def fig7_8() -> str:
    """BLAST cost/time across EC2 instance types."""
    from repro.workloads.protein import blast_task_specs

    return _instance_figure(
        "blast",
        blast_task_specs(64, inhomogeneous_base=False, seed=3),
        "Figures 7+8: BLAST on EC2 instance types",
    )


def fig9() -> str:
    """BLAST across Azure instance types, workers x threads."""
    from repro.workloads.protein import blast_task_specs

    app = get_application("blast")
    tasks = blast_task_specs(8, inhomogeneous_base=False, seed=4)
    shapes = [
        ("Small", 8, 1, 1), ("Medium", 4, 2, 1), ("Large", 2, 4, 1),
        ("Large", 2, 1, 4), ("ExtraLarge", 1, 8, 1), ("ExtraLarge", 1, 1, 8),
    ]
    points = [
        point_for(
            app.with_threads(threads),
            _quiet(
                "azure",
                instance_type=itype,
                n_instances=n,
                workers_per_instance=workers,
                threads_per_worker=threads,
            ),
            tasks,
        )
        for itype, n, workers, threads in shapes
    ]
    results = run_points(points, jobs=None, cache=default_cache())
    rows = [
        [f"{itype} {workers}x{threads}", f"{r.makespan_s:,.0f}"]
        for (itype, _, workers, threads), r in zip(shapes, results)
    ]
    return format_table(
        ["shape (workers x threads)", "time (s)"], rows,
        title="Figure 9: BLAST on Azure instance types",
    )


def fig10_11() -> str:
    """BLAST scalability across the four platforms."""
    from repro.workloads.protein import blast_task_specs

    app = get_application("blast")
    backends = {
        "EC2": _quiet("ec2", n_instances=16),
        "Azure": _quiet(
            "azure", instance_type="Large", n_instances=16,
            workers_per_instance=4,
        ),
        "Hadoop": make_backend(
            "hadoop", cluster=get_cluster("idataplex").subset(16)
        ),
        "DryadLINQ": make_backend(
            "dryadlinq", cluster=get_cluster("hpc-blast").subset(8)
        ),
    }
    file_counts = (128, 256, 384)
    tasks_by = {n: blast_task_specs(n, seed=6) for n in file_counts}
    sweep = [
        (name, n_files)
        for name in backends
        for n_files in file_counts
    ]
    points = [
        point_for(app, backends[name], tasks_by[n_files])
        for name, n_files in sweep
    ]
    results = run_points(points, jobs=None, cache=default_cache())
    efficiency, per_file = {}, {}
    for (name, n_files), r in zip(sweep, results):
        efficiency.setdefault(name, {})[n_files] = parallel_efficiency(
            r.t1_s, r.makespan_s, r.cores
        )
        per_file.setdefault(name, {})[n_files] = (
            average_time_per_file_per_core(r.makespan_s, r.cores, n_files)
        )
    return (
        format_series("query files", efficiency,
                      title="Figure 10: BLAST parallel efficiency")
        + "\n\n"
        + format_series("query files", per_file, value_format="{:.1f}",
                        title="Figure 11: BLAST per-file per-core time (s)")
    )


def fig12_13() -> str:
    """GTM cost/time across EC2 instance types."""
    from repro.workloads.pubchem import gtm_task_specs

    return _instance_figure(
        "gtm",
        gtm_task_specs(64),
        "Figures 12+13: GTM Interpolation on EC2 instance types",
    )


def fig14_15() -> str:
    """GTM efficiency across platforms."""
    from repro.workloads.pubchem import gtm_task_specs

    app = get_application("gtm")
    tasks = gtm_task_specs(264)
    backends = {
        "Azure Small": _quiet("azure", n_instances=64),
        "EC2 Large": _quiet(
            "ec2", instance_type="L", n_instances=32, workers_per_instance=2
        ),
        "EC2 HCXL": _quiet("ec2", n_instances=8),
        "Hadoop": make_backend(
            "hadoop", cluster=get_cluster("gtm-hadoop").subset(8)
        ),
        "DryadLINQ": make_backend(
            "dryadlinq", cluster=get_cluster("gtm-dryad").subset(4)
        ),
    }
    points = [
        point_for(app, backend, tasks) for backend in backends.values()
    ]
    results = run_points(points, jobs=None, cache=default_cache())
    rows = [
        [name, r.cores,
         f"{parallel_efficiency(r.t1_s, r.makespan_s, r.cores):.3f}",
         f"{average_time_per_file_per_core(r.makespan_s, r.cores, r.n_tasks):.1f}"]
        for name, r in zip(backends, results)
    ]
    return format_table(
        ["platform", "cores", "efficiency", "s/file/core"], rows,
        title="Figures 14+15: GTM Interpolation across platforms",
    )


def fig_autoscale() -> str:
    """Elastic pools: the cost-vs-makespan frontier (new study).

    Not a figure from the paper — the autoscaling extension's frontier:
    for each application and scaling policy, how spot-heavy pools trade
    cost against makespan (and preemption noise) versus pure on-demand.
    """
    from repro.autoscale.study import (
        autoscale_study,
        render_frontier,
    )

    rows = autoscale_study(
        n_files=64, jobs=None, cache=default_cache()
    )
    return render_frontier(rows)


def fig_serve() -> str:
    """The serving extension's sustained-load frontier (new study).

    Not a figure from the paper — the :mod:`repro.serve` extension's
    surface: per-tenant latency percentiles against SLOs, and dollars
    per thousand completed jobs, across fleet sizes under the default
    three-tenant traffic mix.
    """
    from repro.serve import render_frontier, serve_study

    rows, _ = serve_study(duration_s=300.0, seed=42, jobs=None)
    return render_frontier(rows)


def fig_chaos() -> str:
    """The chaos extension's resilience surface (new study).

    Not a figure from the paper — the :mod:`repro.chaos` campaign:
    makespan inflation, MTTR, redundant-work fraction and goodput
    across fault intensity and mitigation settings.
    """
    from repro.chaos import chaos_study, render_resilience

    rows = chaos_study(n_files=48, jobs=None, cache=default_cache())
    return render_resilience(rows)


FIGURES: dict[str, Callable[[], str]] = {
    "autoscale": fig_autoscale,
    "chaos": fig_chaos,
    "serve": fig_serve,
    "fig3_4": fig3_4,
    "fig5_6": fig5_6,
    "fig7_8": fig7_8,
    "fig9": fig9,
    "fig10_11": fig10_11,
    "fig12_13": fig12_13,
    "fig14_15": fig14_15,
}


def available_figures() -> list[str]:
    """Figure identifiers accepted by :func:`render_figure`."""
    return sorted(FIGURES)


def render_figure(figure_id: str) -> str:
    """Regenerate one figure's table text."""
    try:
        renderer = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {available_figures()}"
        ) from None
    return renderer()
