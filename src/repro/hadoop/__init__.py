"""Apache Hadoop MapReduce substrate (simulated + local mini runtime).

Models the properties the paper leans on:

* **HDFS** (:mod:`repro.hadoop.hdfs`) — files stored as replicated blocks
  across the compute nodes' local disks, exposing block locations so the
  scheduler can compute near the data;
* **map-only jobs** (:mod:`repro.hadoop.job`) — the paper's pleasingly
  parallel framework on Hadoop: a global task queue, data-locality-aware
  dynamic scheduling (natural load balancing), speculative execution of
  slow tasks and re-execution of failed ones;
* **custom input format** (:mod:`repro.hadoop.inputformat`) — the paper's
  InputFormat/RecordReader pair that hands the *file name and path* to the
  map function instead of file contents, so legacy executables can be
  driven;
* **MiniHadoop** (:class:`repro.hadoop.job.MiniHadoop`) — a local
  thread-pool runtime executing real map functions over real files with
  the same scheduling contract.
"""

from repro.hadoop.hdfs import HdfsClient, HdfsFile
from repro.hadoop.inputformat import FileNameInputFormat, FileNameRecordReader
from repro.hadoop.job import HadoopJobConfig, HadoopSimulator, MiniHadoop

__all__ = [
    "FileNameInputFormat",
    "FileNameRecordReader",
    "HadoopJobConfig",
    "HadoopSimulator",
    "HdfsClient",
    "HdfsFile",
    "MiniHadoop",
]
