"""HDFS model: replicated block placement with locality metadata.

The pieces Hadoop's scheduler needs: which nodes hold a copy of each
file's data (the paper's task files are far below the 64 MB block size,
so one file = one block), how fast a local read is (node disk) versus a
remote read (network + remote disk), and rebalancing on placement.

Placement follows HDFS's default policy shape for external writes: the
replicas land on randomly chosen distinct nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HdfsClient", "HdfsFile"]


@dataclass(frozen=True)
class HdfsFile:
    """One stored file (single block) and its replica locations."""

    key: str
    size: int
    replicas: tuple[int, ...]  # node indices


@dataclass
class HdfsStats:
    local_reads: int = 0
    remote_reads: int = 0
    bytes_read_local: int = 0
    bytes_read_remote: int = 0


class HdfsClient:
    """A simulated HDFS namespace over ``n_nodes`` datanodes."""

    def __init__(
        self,
        n_nodes: int,
        rng: np.random.Generator,
        replication: int = 3,
        disk_mbps: float = 100.0,
        network_gbps: float = 1.0,
    ):
        if n_nodes < 1:
            raise ValueError("need at least one datanode")
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.n_nodes = n_nodes
        self.replication = min(replication, n_nodes)
        self.rng = rng
        self.disk_bps = disk_mbps * 1e6
        self.network_bps = network_gbps * 1e9 / 8.0
        self.files: dict[str, HdfsFile] = {}
        self.stats = HdfsStats()
        self._node_bytes = np.zeros(n_nodes, dtype=np.int64)

    # -- namespace -----------------------------------------------------------
    def put(self, key: str, size: int) -> HdfsFile:
        """Store a file; replicas placed on distinct random nodes."""
        if size < 0:
            raise ValueError("size must be non-negative")
        if key in self.files:
            raise FileExistsError(key)
        replicas = tuple(
            int(i)
            for i in self.rng.choice(
                self.n_nodes, size=self.replication, replace=False
            )
        )
        hdfs_file = HdfsFile(key=key, size=size, replicas=replicas)
        self.files[key] = hdfs_file
        for node in replicas:
            self._node_bytes[node] += size
        return hdfs_file

    def locations(self, key: str) -> tuple[int, ...]:
        """Nodes holding a replica of ``key``."""
        return self.files[key].replicas

    def is_local(self, key: str, node: int) -> bool:
        """Whether ``node`` holds a replica of ``key``."""
        return node in self.files[key].replicas

    def node_utilization(self) -> np.ndarray:
        """Bytes stored per node (placement-balance diagnostics)."""
        return self._node_bytes.copy()

    # -- timing ---------------------------------------------------------------
    def read_seconds(self, key: str, node: int) -> float:
        """Time for ``node`` to read the file — local disk if a replica
        is present, otherwise network transfer from a replica holder
        (plus the remote disk read)."""
        hdfs_file = self.files[key]
        if node in hdfs_file.replicas:
            self.stats.local_reads += 1
            self.stats.bytes_read_local += hdfs_file.size
            return hdfs_file.size / self.disk_bps
        self.stats.remote_reads += 1
        self.stats.bytes_read_remote += hdfs_file.size
        return hdfs_file.size / self.disk_bps + hdfs_file.size / self.network_bps

    def write_seconds(self, size: int) -> float:
        """Time to write a file (local disk; the replication pipeline
        streams to other nodes concurrently, so the local write paces)."""
        if size < 0:
            raise ValueError("size must be non-negative")
        return size / self.disk_bps

    @property
    def locality_fraction(self) -> float:
        """Fraction of reads served from local disk."""
        total = self.stats.local_reads + self.stats.remote_reads
        return self.stats.local_reads / total if total else 1.0
