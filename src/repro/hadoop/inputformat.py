"""The paper's custom InputFormat and RecordReader (real code).

Hadoop's built-in input formats hand map functions the *contents* of a
data split, but "most of the legacy data processing applications expect a
file path as the input instead of the contents".  The paper implements an
InputFormat/RecordReader pair that yields the file name as the key and
the file's (HDFS) path as the value, one record per split, while leaving
data-locality scheduling intact.  This module is that pair, used by
:class:`~repro.hadoop.job.MiniHadoop` to drive executables.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["FileNameInputFormat", "FileNameRecordReader", "FileSplit"]


@dataclass(frozen=True)
class FileSplit:
    """One input split: a whole (small) file."""

    path: str
    size: int


class FileNameRecordReader:
    """Yields exactly one (file name, file path) record per split."""

    def __init__(self, split: FileSplit):
        self.split = split
        self._consumed = False

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return self

    def __next__(self) -> tuple[str, str]:
        if self._consumed:
            raise StopIteration
        self._consumed = True
        path = Path(self.split.path)
        return path.name, str(path)

    @property
    def progress(self) -> float:
        """Fraction of the split consumed (Hadoop reports this)."""
        return 1.0 if self._consumed else 0.0


class FileNameInputFormat:
    """Splits a directory (or explicit file list) one file per split."""

    def __init__(self, pattern: str = "*"):
        self.pattern = pattern

    def get_splits(self, input_dir: str | Path) -> list[FileSplit]:
        """One split per matching file, sorted for determinism."""
        directory = Path(input_dir)
        if not directory.is_dir():
            raise NotADirectoryError(str(directory))
        splits = [
            FileSplit(path=str(p), size=p.stat().st_size)
            for p in sorted(directory.glob(self.pattern))
            if p.is_file()
        ]
        if not splits:
            raise ValueError(
                f"no input files matching {self.pattern!r} in {directory}"
            )
        return splits

    def create_record_reader(self, split: FileSplit) -> FileNameRecordReader:
        return FileNameRecordReader(split)
