"""Map-only Hadoop jobs: the simulator and the local mini runtime.

The simulated :class:`HadoopSimulator` implements the scheduling policies
the paper credits for Hadoop's behaviour:

* a **global task queue** consumed by per-node map slots — dynamic
  scheduling, "achieving natural load balancing among the tasks";
* **data locality**: a free slot prefers a pending task whose input block
  resides on its node (non-local tasks pay a network read);
* **speculative execution**: when the queue drains, free slots launch
  backup copies of the slowest running tasks; the first finisher wins;
* **failure handling**: failed attempts are re-queued (bounded retries).

:class:`MiniHadoop` is the real-execution counterpart: a thread pool of
map slots drives executables through the paper's custom
InputFormat/RecordReader over real files.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.apps.executables import Executable
from repro.apps.perfmodels import task_runtime_seconds
from repro.cluster.spec import ClusterSpec
from repro.core.application import Application
from repro.core.task import RunResult, TaskRecord, TaskSpec
from repro.hadoop.hdfs import HdfsClient
from repro.hadoop.inputformat import FileNameInputFormat
from repro.obs.context import current as _current_obs
from repro.sim.engine import make_environment
from repro.sim.rng import RngRegistry

__all__ = ["HadoopJobConfig", "HadoopSimulator", "MiniHadoop"]


@dataclass(frozen=True)
class HadoopJobConfig:
    """One Hadoop deployment + job tuning."""

    cluster: ClusterSpec
    map_slots_per_node: int | None = None  # default: schedulable cores
    replication: int = 3
    locality_aware: bool = True
    speculative_execution: bool = True
    speculative_progress_threshold: float = 0.8
    task_failure_probability: float = 0.0
    straggler_probability: float = 0.0
    straggler_slowdown: float = 5.0
    max_attempts: int = 4
    seed: int = 0
    # "fifo" is Hadoop's order-of-submission scheduling; "lpt" (longest
    # processing time first) is an extension that needs per-task work
    # estimates — it shortens the tail on heavy-tailed workloads.
    scheduling_policy: str = "fifo"

    def __post_init__(self) -> None:
        if self.scheduling_policy not in ("fifo", "lpt"):
            raise ValueError(
                f"unknown scheduling_policy {self.scheduling_policy!r}"
            )
        slots = self.slots_per_node
        if slots < 1:
            raise ValueError("map_slots_per_node must be >= 1")
        if slots > self.cluster.node.machine.cores:
            raise ValueError(
                f"{slots} slots exceed the node's "
                f"{self.cluster.node.machine.cores} cores"
            )
        if not 0 <= self.task_failure_probability < 1:
            raise ValueError("task_failure_probability must be in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    @property
    def slots_per_node(self) -> int:
        if self.map_slots_per_node is not None:
            return self.map_slots_per_node
        return self.cluster.node.cores_for_scheduling

    @property
    def total_slots(self) -> int:
        return self.slots_per_node * self.cluster.n_nodes


class HadoopSimulator:
    """Play a map-only job over the simulated cluster."""

    def __init__(self, config: HadoopJobConfig):
        self.config = config

    def run(self, app: Application, tasks: list[TaskSpec]) -> RunResult:
        if not tasks:
            raise ValueError("no tasks to run")
        return _HadoopRun(self.config, app, tasks).execute()

    def estimate_sequential_time(
        self, app: Application, tasks: list[TaskSpec]
    ) -> float:
        """T1: one uncontended slot, inputs on local disk."""
        machine = self.config.cluster.node.machine
        return sum(
            task_runtime_seconds(
                app.perf_model, t.work_units, machine, concurrent_workers=1
            )
            for t in tasks
        )


@dataclass
class _Running:
    """JobTracker's view of one in-flight attempt."""

    task: TaskSpec
    node: int
    started: float
    expected_end: float
    speculative: bool
    has_backup: bool = False


class _HadoopRun:
    def __init__(
        self, config: HadoopJobConfig, app: Application, tasks: list[TaskSpec]
    ):
        self.config = config
        self.app = app
        self.tasks = tasks
        self.obs = _current_obs()
        self.tracer = self.obs.tracer
        self._m_dispatches = self.obs.metrics.counter("scheduler.dispatches")
        self._m_speculative = self.obs.metrics.counter(
            "scheduler.speculative_dispatches"
        )
        self.env = make_environment()
        self.rng = RngRegistry(config.seed)
        node = config.cluster.node
        self.hdfs = HdfsClient(
            config.cluster.n_nodes,
            self.rng.stream("placement"),
            replication=config.replication,
            disk_mbps=node.machine.disk_mbps,
            network_gbps=config.cluster.interconnect_gbps,
        )
        for task in tasks:
            self.hdfs.put(task.input_key, task.input_size)
        self.pending: list[TaskSpec] = list(tasks)
        self.running: dict[str, list[_Running]] = {}
        self.completed: set[str] = set()
        self.attempts_used: dict[str, int] = {t.task_id: 0 for t in tasks}
        self.records: list[TaskRecord] = []
        self.done = self.env.event()

    # -- orchestration -------------------------------------------------------
    def execute(self) -> RunResult:
        # Distributed-cache preload (paper Section 5): every node pulls
        # the application's sidecar data (e.g. the compressed BLAST
        # database) from HDFS in parallel, each bounded by its own NIC.
        # Excluded from the measured window, as the paper excludes
        # database distribution times.
        preload_seconds = 0.0
        if self.app.preload_bytes:
            nic_bps = self.config.cluster.interconnect_gbps * 1e9 / 8.0
            preload_seconds = (
                self.app.preload_bytes / nic_bps
                + self.app.preload_extract_seconds
            )
        for node in range(self.config.cluster.n_nodes):
            for slot in range(self.config.slots_per_node):
                name = f"node{node}-slot{slot}"
                self.env.process(self._slot(node, name), name=name)
        makespan = self.env.run(until=self.done)
        self.obs.metrics.counter("sim.events").inc(self.env.events_scheduled)
        return RunResult(
            backend="hadoop",
            app_name=self.app.name,
            n_tasks=len(self.tasks),
            makespan_seconds=makespan,
            records=self.records,
            extras={
                "locality_fraction": self.hdfs.locality_fraction,
                "local_reads": float(self.hdfs.stats.local_reads),
                "remote_reads": float(self.hdfs.stats.remote_reads),
                "speculative_attempts": float(
                    sum(1 for r in self.records if r.speculative)
                ),
                "preload_seconds": preload_seconds,
            },
            completed=set(self.completed),
        )

    # -- JobTracker ------------------------------------------------------------
    def _next_assignment(self, node: int) -> tuple[TaskSpec, bool] | None:
        """(task, speculative?) for a free slot on ``node``, or None."""
        if self.pending:
            if self.config.scheduling_policy == "lpt":
                # Longest-processing-time first, still preferring local
                # candidates among the heavy tasks.
                local = [
                    i
                    for i, task in enumerate(self.pending)
                    if self.config.locality_aware
                    and self.hdfs.is_local(task.input_key, node)
                ]
                pool = local if local else range(len(self.pending))
                heaviest = max(pool, key=lambda i: self.pending[i].work_units)
                return self.pending.pop(heaviest), False
            if self.config.locality_aware:
                for i, task in enumerate(self.pending):
                    if self.hdfs.is_local(task.input_key, node):
                        return self.pending.pop(i), False
            return self.pending.pop(0), False
        if not self.config.speculative_execution:
            return None
        # Queue drained: back up the running attempt with the latest
        # expected finish whose progress is below the threshold.
        candidates = []
        now = self.env.now
        for attempts in self.running.values():
            primary = attempts[0]
            if primary.has_backup or primary.task.task_id in self.completed:
                continue
            duration = primary.expected_end - primary.started
            progress = (now - primary.started) / duration if duration > 0 else 1.0
            if progress < self.config.speculative_progress_threshold:
                candidates.append(primary)
        if not candidates:
            return None
        victim = max(candidates, key=lambda r: r.expected_end)
        victim.has_backup = True
        return victim.task, True

    # -- the map slot ------------------------------------------------------------
    def _slot(self, node: int, name: str):
        config = self.config
        machine = config.cluster.node.machine
        fail_rng = self.rng.stream(f"{name}-fail")
        straggle_rng = self.rng.stream(f"{name}-straggle")
        noise_rng = self.rng.stream(f"{name}-noise")
        while len(self.completed) < len(self.tasks):
            assignment = self._next_assignment(node)
            if assignment is None:
                yield self.env.timeout(1.0)
                continue
            task, speculative = assignment
            if task.task_id in self.completed:
                continue  # completed while we were deciding
            started = self.env.now
            self._m_dispatches.inc()
            if speculative:
                self._m_speculative.inc()
            self.tracer.instant(
                "scheduler.dispatch",
                track=name,
                ts=started,
                task_id=task.task_id,
                speculative=speculative,
                node=node,
            )
            self.attempts_used[task.task_id] += 1
            attempt_no = self.attempts_used[task.task_id]

            read_time = self.hdfs.read_seconds(task.input_key, node)
            service = task_runtime_seconds(
                self.app.perf_model,
                task.work_units,
                machine,
                concurrent_workers=config.slots_per_node,
            )
            if (
                config.straggler_probability
                and straggle_rng.random() < config.straggler_probability
                and not speculative
            ):
                service *= config.straggler_slowdown
            service *= float(noise_rng.uniform(0.98, 1.02))
            write_time = self.hdfs.write_seconds(task.output_size)
            total = read_time + service + write_time

            info = _Running(
                task=task,
                node=node,
                started=started,
                expected_end=started + total,
                speculative=speculative,
            )
            self.running.setdefault(task.task_id, []).append(info)
            self._sample_running()

            fails = (
                config.task_failure_probability
                and fail_rng.random() < config.task_failure_probability
            )
            if fails:
                # Die partway through the compute phase; re-queue.
                yield self.env.timeout(
                    read_time + service * float(fail_rng.uniform(0.1, 0.9))
                )
                self._attempt_over(task, info)
                if task.task_id not in self.completed:
                    if self.attempts_used[task.task_id] >= config.max_attempts:
                        raise RuntimeError(
                            f"task {task.task_id} failed "
                            f"{config.max_attempts} attempts"
                        )
                    self.pending.append(task)
                continue

            yield self.env.timeout(total)
            won = task.task_id not in self.completed
            if won:
                self.completed.add(task.task_id)
            self._attempt_over(task, info)
            if self.tracer.enabled:
                tid = task.task_id
                self.tracer.add(
                    "task.download", track=name,
                    start=started, end=started + read_time, task_id=tid,
                )
                self.tracer.add(
                    "task.compute", track=name,
                    start=started + read_time,
                    end=started + read_time + service,
                    task_id=tid, speculative=speculative,
                )
                self.tracer.add(
                    "task.upload", track=name,
                    start=started + read_time + service,
                    end=started + total, task_id=tid,
                )
            self.records.append(
                TaskRecord(
                    task_id=task.task_id,
                    worker=name,
                    started_at=started,
                    finished_at=self.env.now,
                    download_time=read_time,
                    compute_time=service,
                    upload_time=write_time,
                    attempt=attempt_no,
                    was_duplicate=not won,
                    speculative=speculative,
                    won=won,
                )
            )
            if len(self.completed) == len(self.tasks) and not self.done.triggered:
                self.done.succeed(self.env.now)

    def _attempt_over(self, task: TaskSpec, info: _Running) -> None:
        attempts = self.running.get(task.task_id, [])
        if info in attempts:
            attempts.remove(info)
        if not attempts:
            self.running.pop(task.task_id, None)
        self._sample_running()

    def _sample_running(self) -> None:
        """Timeline sample: in-flight attempts over sim time."""
        if self.obs.enabled:
            self.obs.timeline.sample(
                "scheduler.running_tasks",
                self.env.now,
                sum(len(a) for a in self.running.values()),
            )


class MiniHadoop:
    """Local thread-pool runtime for real map-only jobs.

    Uses the paper's FileNameInputFormat: the map function receives the
    file name (key) and path (value), mirroring how the real Hadoop
    implementation drives legacy executables.  Like Hadoop, failed map
    attempts re-execute up to ``max_attempts`` times before the job
    fails.
    """

    def __init__(self, n_slots: int = 4, max_attempts: int = 4):
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.n_slots = n_slots
        self.max_attempts = max_attempts

    def run_job(
        self,
        executable: Executable,
        input_dir: str | Path,
        output_dir: str | Path,
        pattern: str = "*",
    ) -> RunResult:
        """Map every file in ``input_dir`` through the executable.

        Raises the final attempt's exception if any split exhausts its
        retries (the Hadoop "job failed" condition).
        """
        import time

        input_format = FileNameInputFormat(pattern)
        splits = input_format.get_splits(input_dir)
        output_dir = Path(output_dir)
        output_dir.mkdir(parents=True, exist_ok=True)
        # Captured on the driving thread; pool threads close over it.
        tracer = _current_obs().tracer
        start = time.monotonic()  # repro: noqa[RPR001] real runtime

        def map_task(split) -> TaskRecord:
            reader = input_format.create_record_reader(split)
            (name, path), = list(reader)
            last_error: Exception | None = None
            for attempt in range(1, self.max_attempts + 1):
                t0 = time.monotonic()  # repro: noqa[RPR001] real runtime
                try:
                    executable.run(path, output_dir / name)
                except Exception as exc:  # re-execute failed attempts
                    last_error = exc
                    continue
                t1 = time.monotonic()  # repro: noqa[RPR001] real runtime
                tracer.add(
                    "task.compute",
                    track="minihadoop",
                    start=t0 - start,
                    end=t1 - start,
                    domain="wall",
                    task_id=name,
                    attempt=attempt,
                )
                return TaskRecord(
                    task_id=name,
                    worker="minihadoop",
                    started_at=t0 - start,
                    finished_at=t1 - start,
                    compute_time=t1 - t0,
                    attempt=attempt,
                )
            raise RuntimeError(
                f"map task {name!r} failed {self.max_attempts} attempts"
            ) from last_error

        with ThreadPoolExecutor(max_workers=self.n_slots) as pool:
            records = list(pool.map(map_task, splits))
        return RunResult(
            backend="minihadoop",
            app_name=executable.name,
            n_tasks=len(splits),
            makespan_seconds=time.monotonic() - start,  # repro: noqa[RPR001] real runtime
            records=records,
            completed={r.task_id for r in records},
        )
