"""Determinism tooling for the reproduction: static lint + runtime sanitizers.

Two halves, both enforcing the DES kernel's contract (see
``repro.sim.engine``: events at the same simulated time fire in
scheduling order; no wall-clock or global-RNG access in simulation
code) and the threaded runtimes' independence story:

* **static pass** — an AST-based checker (stdlib ``ast`` only) with a
  small rule framework.  Per-file rules carry codes ``RPR0xx``;
  whole-program rules (``RPR1xx``) parse every linted file once into a
  :class:`ProjectModel` with a call graph and check unlocked shared
  state on threaded paths, lock-order cycles, sim purity, process-pool
  pickling and tracer span leaks.  Violations can be suppressed per
  line with ``# repro: noqa[RPR001]`` or per file with
  ``# repro: noqa-file[RPR001]: reason``; a committed baseline
  (``--baseline``) accepts known findings.  Run it with
  ``python -m repro lint --rules all src/repro``.
* **runtime sanitizers** — :class:`SanitizedEnvironment`, an opt-in
  instrumented event loop (``REPRO_SANITIZE=1`` or construct it
  directly) that records a deterministic event trace and detects
  double-triggered events, same-timestamp ordering ties, processes that
  never consume their pending event, and leaked in-flight queue
  messages; and :class:`ThreadSanitizer` (``REPRO_SANITIZE=threads`` /
  ``pytest --repro-sanitize-threads``), which wraps the threaded
  runtimes' locks and shared containers to catch lock-order inversions
  and unsynchronized cross-thread writes at test time.
"""

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.checker import LintResult, ParsedFile, lint_file, lint_paths
from repro.lint.docscheck import (
    DocProblem,
    DocsCheckResult,
    check_docs,
    cli_subcommands,
    lint_rule_codes,
)
from repro.lint.project import ProjectModel
from repro.lint.report import format_human, format_json
from repro.lint.rules import (
    RULE_REGISTRY,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
)
from repro.lint.sanitizer import (
    SanitizedEnvironment,
    SanitizerError,
    SanitizerReport,
)
from repro.lint.threadsan import (
    ThreadSanitizer,
    ThreadSanReport,
    monitor,
    monitor_lock,
)

__all__ = [
    "DocProblem",
    "DocsCheckResult",
    "LintResult",
    "ParsedFile",
    "ProjectModel",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "SanitizedEnvironment",
    "SanitizerError",
    "SanitizerReport",
    "ThreadSanReport",
    "ThreadSanitizer",
    "Violation",
    "all_rules",
    "apply_baseline",
    "check_docs",
    "cli_subcommands",
    "format_human",
    "format_json",
    "lint_file",
    "lint_paths",
    "lint_rule_codes",
    "load_baseline",
    "monitor",
    "monitor_lock",
    "write_baseline",
]
