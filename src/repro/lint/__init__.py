"""Determinism tooling for the reproduction: static lint + runtime sanitizer.

Two halves, both enforcing the DES kernel's contract (see
``repro.sim.engine``: events at the same simulated time fire in
scheduling order; no wall-clock or global-RNG access in simulation
code):

* **static pass** — an AST-based checker (stdlib ``ast`` only) with a
  small rule framework.  Rules carry codes ``RPR001``…; violations can
  be suppressed per line with ``# repro: noqa[RPR001]`` or per file
  with ``# repro: noqa-file[RPR001]: reason``.  Run it with
  ``python -m repro lint src/repro``.
* **runtime sanitizer** — :class:`SanitizedEnvironment`, an opt-in
  instrumented event loop (``REPRO_SANITIZE=1`` or construct it
  directly) that records a deterministic event trace and detects
  double-triggered events, same-timestamp ordering ties, processes that
  never consume their pending event, and leaked in-flight queue
  messages.
"""

from repro.lint.checker import LintResult, lint_file, lint_paths
from repro.lint.docscheck import DocProblem, DocsCheckResult, check_docs
from repro.lint.report import format_human, format_json
from repro.lint.rules import RULE_REGISTRY, Rule, Violation, all_rules
from repro.lint.sanitizer import (
    SanitizedEnvironment,
    SanitizerError,
    SanitizerReport,
)

__all__ = [
    "DocProblem",
    "DocsCheckResult",
    "LintResult",
    "RULE_REGISTRY",
    "Rule",
    "SanitizedEnvironment",
    "SanitizerError",
    "SanitizerReport",
    "Violation",
    "all_rules",
    "check_docs",
    "format_human",
    "format_json",
    "lint_file",
    "lint_paths",
]
