"""Lint baselines: accept known findings, fail only on new ones.

A baseline is a JSON file listing fingerprints of accepted violations.
Fingerprints are ``(path, code, message)`` — line and column are left
out on purpose, so unrelated edits that shift a known finding by a few
lines do not resurrect it.  Two *identical* findings in one file share
one fingerprint; the baseline stores a count so adding a second
occurrence of an already-baselined hazard still fails.

Usage::

    python -m repro lint --baseline lint-baseline.json src/
    python -m repro lint --write-baseline lint-baseline.json src/
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.checker import LintResult
from repro.lint.rules import Violation

__all__ = ["apply_baseline", "load_baseline", "write_baseline"]

_SCHEMA = "repro-lint-baseline/1"


def _fingerprint(violation: Violation) -> str:
    return f"{violation.path}::{violation.code}::{violation.message}"


def load_baseline(path: Path) -> dict[str, int]:
    """Fingerprint -> accepted occurrence count."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != _SCHEMA:
        raise ValueError(
            f"{path}: not a lint baseline (schema={data.get('schema')!r})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError(f"{path}: malformed baseline entries")
    return {str(k): int(v) for k, v in entries.items()}


def write_baseline(path: Path, result: LintResult) -> None:
    """Record the run's violations (plus already-baselined ones) as
    accepted, so the next run fails only on findings newer than now."""
    entries: dict[str, int] = {}
    for violation in list(result.violations) + list(result.baselined):
        key = _fingerprint(violation)
        entries[key] = entries.get(key, 0) + 1
    payload = {"schema": _SCHEMA, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(result: LintResult, baseline: dict[str, int]) -> None:
    """Move baselined violations out of the failing set, in place.

    The first N occurrences of a fingerprint (N = accepted count) are
    treated as pre-existing; any excess stays a hard violation.
    """
    budget = dict(baseline)
    remaining: list[Violation] = []
    for violation in result.violations:
        key = _fingerprint(violation)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            result.baselined.append(violation)
        else:
            remaining.append(violation)
    result.violations = remaining
