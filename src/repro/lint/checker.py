"""Lint driver: parse each file once, run per-file and project passes.

Suppression syntax:

* line:  ``x = time.time()  # repro: noqa[RPR001] real-runtime timer``
* file:  ``# repro: noqa-file[RPR001]: this module measures wall clock``
  (a comment-only line anywhere in the file, conventionally at the top)

Unparsable files produce a single, unsuppressible ``RPR000`` violation.

Every file is read and parsed exactly once per invocation: the
:class:`ParsedFile` built here (AST + import aliases + suppression
tables) is shared by all per-file rules *and* by the whole-program pass
(:mod:`repro.lint.project`), which previously would have forced a
second parse.  Project-rule findings are routed through the owning
file's ``noqa`` tables exactly like per-file findings.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

# Import for the side effect of registering the rules.
import repro.lint.checks  # noqa: F401
import repro.lint.project_checks  # noqa: F401
from repro.lint.project import ProjectModel
from repro.lint.rules import (
    SYNTAX_ERROR_CODE,
    ParsedModule,
    Violation,
    applicable_rules,
    project_rules,
)

__all__ = ["LintResult", "ParsedFile", "lint_file", "lint_paths", "parse_file"]

_NOQA_LINE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")
_NOQA_FILE = re.compile(r"^\s*#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")


@dataclass
class LintResult:
    """Aggregate outcome of one lint invocation."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    #: Pre-existing findings matched against a ``--baseline`` file; they
    #: do not fail the run (see :mod:`repro.lint.baseline`).
    baselined: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "LintResult") -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)
        self.baselined.extend(other.baselined)
        self.files_checked += other.files_checked


@dataclass
class ParsedFile:
    """One file, parsed once, with its suppression tables."""

    path: Path
    module: ParsedModule | None  # None iff the file failed to parse
    error: Violation | None = None  # the RPR000, when module is None
    file_suppressed: set[str] = field(default_factory=set)
    line_suppressed: dict[int, set[str]] = field(default_factory=dict)

    def route(self, violation: Violation, result: LintResult) -> None:
        """File findings honour this file's noqa tables."""
        if violation.code in self.file_suppressed or violation.code in (
            self.line_suppressed.get(violation.line, ())
        ):
            result.suppressed.append(violation)
        else:
            result.violations.append(violation)


def _codes(match: re.Match) -> set[str]:
    return {code.strip() for code in match.group(1).split(",") if code.strip()}


def _build_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to dotted origins for every import in the module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `a.b`.
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def parse_file(path: Path) -> ParsedFile:
    """Read and parse ``path`` exactly once, building suppression tables."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return ParsedFile(
            path=path,
            module=None,
            error=Violation(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code=SYNTAX_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}",
            ),
        )
    lines = source.splitlines()
    parsed = ParsedFile(
        path=path,
        module=ParsedModule(
            path=path, tree=tree, lines=lines, aliases=_build_aliases(tree)
        ),
    )
    for lineno, line in enumerate(lines, start=1):
        file_match = _NOQA_FILE.search(line)
        if file_match:
            parsed.file_suppressed |= _codes(file_match)
            continue
        line_match = _NOQA_LINE.search(line)
        if line_match:
            parsed.line_suppressed[lineno] = _codes(line_match)
    return parsed


def _run_file_pass(
    parsed: ParsedFile,
    result: LintResult,
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> None:
    if parsed.module is None:
        assert parsed.error is not None
        result.violations.append(parsed.error)
        return
    for rule in applicable_rules(parsed.path, select=select, ignore=ignore):
        for violation in rule.check(parsed.module):
            parsed.route(violation, result)


def _run_project_pass(
    parsed_files: Sequence[ParsedFile],
    result: LintResult,
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> None:
    rules = project_rules(select=select, ignore=ignore)
    if not rules:
        return
    by_path = {str(p.path): p for p in parsed_files}
    model = ProjectModel.build(
        [p.module for p in parsed_files if p.module is not None]
    )
    for rule in rules:
        for violation in rule.check_project(model):
            owner = by_path.get(violation.path)
            if owner is not None:
                owner.route(violation, result)
            else:
                result.violations.append(violation)


def _lint_parsed(
    parsed_files: Sequence[ParsedFile],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    project_pass: bool = True,
    file_pass: bool = True,
) -> LintResult:
    result = LintResult(files_checked=len(parsed_files))
    if file_pass:
        for parsed in parsed_files:
            _run_file_pass(parsed, result, select, ignore)
    if project_pass:
        _run_project_pass(parsed_files, result, select, ignore)
    result.violations.sort()
    return result


def lint_file(
    path: Path,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Lint one file (both passes, with a single-file project model)."""
    return _lint_parsed([parse_file(Path(path))], select=select, ignore=ignore)


def collect_files(
    paths: Sequence[str | Path],
    exclude: Iterable[str] | None = None,
) -> list[Path]:
    """Expand files/directories into a deduplicated, ordered file list.

    ``exclude`` names directories skipped during recursion (a file given
    explicitly is always linted, even under an excluded directory).
    """
    excluded = set(exclude or ())
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = [
                f
                for f in sorted(path.rglob("*.py"))
                if not excluded.intersection(f.parts)
            ]
        elif path.exists():
            candidates = [path]
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
        for file in candidates:
            key = file.resolve()
            if key not in seen:
                seen.add(key)
                files.append(file)
    return files


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    exclude: Iterable[str] | None = None,
    rules: str = "all",
) -> LintResult:
    """Lint files and/or directories (recursing into ``*.py``).

    ``rules`` picks the pass: ``"file"`` (RPR0xx only), ``"project"``
    (RPR1xx only) or ``"all"`` (both, the default).
    """
    if rules not in ("file", "project", "all"):
        raise ValueError(f"rules must be file|project|all, got {rules!r}")
    parsed_files = [parse_file(f) for f in collect_files(paths, exclude)]
    return _lint_parsed(
        parsed_files,
        select=select,
        ignore=ignore,
        file_pass=rules in ("file", "all"),
        project_pass=rules in ("project", "all"),
    )
