"""File runner: parse, apply rules, honour ``# repro: noqa`` pragmas.

Suppression syntax:

* line:  ``x = time.time()  # repro: noqa[RPR001] real-runtime timer``
* file:  ``# repro: noqa-file[RPR001]: this module measures wall clock``
  (a comment-only line anywhere in the file, conventionally at the top)

Unparsable files produce a single, unsuppressible ``RPR000`` violation.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

# Import for the side effect of registering the rules.
import repro.lint.checks  # noqa: F401
from repro.lint.rules import (
    SYNTAX_ERROR_CODE,
    ParsedModule,
    Violation,
    applicable_rules,
)

__all__ = ["LintResult", "lint_file", "lint_paths"]

_NOQA_LINE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")
_NOQA_FILE = re.compile(r"^\s*#\s*repro:\s*noqa-file\[([A-Z0-9,\s]+)\]")


@dataclass
class LintResult:
    """Aggregate outcome of one lint invocation."""

    violations: list[Violation] = field(default_factory=list)
    suppressed: list[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def merge(self, other: "LintResult") -> None:
        self.violations.extend(other.violations)
        self.suppressed.extend(other.suppressed)
        self.files_checked += other.files_checked


def _codes(match: re.Match) -> set[str]:
    return {code.strip() for code in match.group(1).split(",") if code.strip()}


def _build_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to dotted origins for every import in the module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`; `import a.b as c` binds `a.b`.
                aliases[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def lint_file(
    path: Path,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Lint one file."""
    result = LintResult(files_checked=1)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        result.violations.append(
            Violation(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code=SYNTAX_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}",
            )
        )
        return result
    lines = source.splitlines()
    module = ParsedModule(
        path=path, tree=tree, lines=lines, aliases=_build_aliases(tree)
    )

    file_suppressed: set[str] = set()
    line_suppressed: dict[int, set[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        file_match = _NOQA_FILE.search(line)
        if file_match:
            file_suppressed |= _codes(file_match)
            continue
        line_match = _NOQA_LINE.search(line)
        if line_match:
            line_suppressed[lineno] = _codes(line_match)

    for rule in applicable_rules(path, select=select, ignore=ignore):
        for violation in rule.check(module):
            if violation.code in file_suppressed or violation.code in (
                line_suppressed.get(violation.line, ())
            ):
                result.suppressed.append(violation)
            else:
                result.violations.append(violation)
    result.violations.sort()
    return result


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintResult:
    """Lint files and/or directories (recursing into ``*.py``)."""
    result = LintResult()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    for file in files:
        result.merge(lint_file(file, select=select, ignore=ignore))
    result.violations.sort()
    return result
