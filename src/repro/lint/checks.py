"""The determinism rules (RPR001–RPR007).

Each rule enforces one invariant the DES kernel's reproducibility
promise rests on (see ``repro.sim.engine``'s module docstring and
``docs/LINT.md`` for bad/good examples).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.rules import ParsedModule, Rule, Violation, register

__all__ = [
    "FloatTimeEqualityRule",
    "GlobalRngRule",
    "HeapTiebreakRule",
    "MutableDefaultRule",
    "SetIterationRule",
    "SpanWallClockRule",
    "WallClockRule",
]

#: Packages whose code runs *inside* the simulated clock.  Real
#: (threaded) runtimes living alongside them suppress RPR001 with a
#: justified ``# repro: noqa-file[RPR001]`` instead.
SIM_SCOPE = ("sim", "cloud", "hadoop", "dryad", "twister", "classiccloud")

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random attributes that are part of the sanctioned seeded-stream
#: pattern (``sim/rng.py``); everything else on the module is the
#: legacy *global* RNG.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}


@register
class WallClockRule(Rule):
    code = "RPR001"
    name = "no-wall-clock"
    rationale = (
        "Simulation code must read time only from Environment.now; a "
        "wall-clock call makes results depend on host speed and load."
    )
    scope = SIM_SCOPE

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = module.resolve(node.func)
            if path in _WALL_CLOCK_CALLS:
                yield self.violation(
                    module,
                    node,
                    f"wall-clock call {path}() in simulation code; "
                    "use Environment.now",
                )


@register
class GlobalRngRule(Rule):
    code = "RPR002"
    name = "no-global-rng"
    rationale = (
        "Global RNG state is shared across the whole process, so any new "
        "draw perturbs every other stream; thread a seeded "
        "np.random.default_rng / RngRegistry stream instead (sim/rng.py)."
    )

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = module.resolve(node.func)
            if path is None:
                continue
            if path == "random" or path.startswith("random."):
                yield self.violation(
                    module,
                    node,
                    f"stdlib global RNG call {path}(); use a seeded "
                    "numpy Generator from RngRegistry",
                )
            elif path == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.violation(
                        module,
                        node,
                        "unseeded np.random.default_rng() draws entropy "
                        "from the OS; pass an explicit seed",
                    )
            elif path.startswith("numpy.random."):
                tail = path.split(".", 2)[2]
                if tail.split(".")[0] not in _NP_RANDOM_ALLOWED:
                    yield self.violation(
                        module,
                        node,
                        f"global numpy RNG call {path}(); use a seeded "
                        "Generator instance",
                    )


@register
class SetIterationRule(Rule):
    code = "RPR003"
    name = "no-set-iteration"
    rationale = (
        "Set iteration order depends on insertion history and hash "
        "randomization; feeding it into event scheduling or task "
        "ordering makes runs irreproducible.  Iterate a sorted() view."
    )

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(module, it):
                    yield self.violation(
                        module,
                        it,
                        "iteration over a set has no deterministic order; "
                        "wrap in sorted(...) before scheduling work from it",
                    )

    @staticmethod
    def _is_set_expr(module: ParsedModule, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False


@register
class MutableDefaultRule(Rule):
    code = "RPR004"
    name = "no-mutable-default"
    rationale = (
        "A mutable default is shared across calls, so state from one run "
        "leaks into the next — hidden cross-run coupling the replay "
        "tests cannot see."
    )

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if self._is_mutable(default):
                        yield self.violation(
                            module,
                            default,
                            f"mutable default argument in {node.name}(); "
                            "use None and construct inside the body",
                        )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False


@register
class FloatTimeEqualityRule(Rule):
    code = "RPR005"
    name = "no-float-time-equality"
    rationale = (
        "Simulated times are accumulated floats; == / != on them flips "
        "with summation order.  Compare with <=, >= or an explicit "
        "tolerance."
    )

    _TIME_SUFFIXES = ("_at", "_time", "_seconds")

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                timey = next(
                    (o for o in (left, right) if self._is_time_like(o)), None
                )
                if timey is None:
                    continue
                other = right if timey is left else left
                if isinstance(other, ast.Constant) and other.value is None:
                    continue
                if self._is_approx(other):
                    # x == pytest.approx(y) is the sanctioned tolerance
                    # comparison, not a raw float equality.
                    continue
                name = self._symbol(timey)
                yield self.violation(
                    module,
                    node,
                    f"float equality on simulated-time value {name!r}; "
                    "use ordering comparisons or a tolerance",
                )

    @staticmethod
    def _is_approx(node: ast.expr) -> bool:
        func = node.func if isinstance(node, ast.Call) else None
        if isinstance(func, ast.Attribute):
            return func.attr == "approx"
        if isinstance(func, ast.Name):
            return func.id == "approx"
        return False

    @classmethod
    def _is_time_like(cls, node: ast.expr) -> bool:
        name = cls._symbol(node)
        if name is None:
            return False
        return name == "now" or name.endswith(cls._TIME_SUFFIXES)

    @staticmethod
    def _symbol(node: ast.expr) -> str | None:
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None


@register
class SpanWallClockRule(Rule):
    code = "RPR007"
    name = "no-wall-clock-in-span"
    rationale = (
        "Tracer.span() stamps wall time; inside simulation code the span "
        "body mixing in its own wall-clock reads puts host-dependent "
        "numbers on the simulated timeline.  Sim-scoped code must record "
        "spans with Tracer.add() and Environment.now timestamps."
    )
    scope = SIM_SCOPE

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            if not any(
                self._is_span_call(item.context_expr) for item in node.items
            ):
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if not isinstance(inner, ast.Call):
                        continue
                    path = module.resolve(inner.func)
                    if path in _WALL_CLOCK_CALLS:
                        yield self.violation(
                            module,
                            inner,
                            f"wall-clock call {path}() inside a tracer "
                            "span body in simulation code; record the "
                            "span with Tracer.add() and Environment.now "
                            "timestamps instead",
                        )

    @staticmethod
    def _is_span_call(node: ast.expr) -> bool:
        """True for ``<anything>.span(...)`` context expressions."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
        )


@register
class HeapTiebreakRule(Rule):
    code = "RPR006"
    name = "heap-needs-tiebreaker"
    rationale = (
        "A (time, payload) heap entry compares payloads when times tie — "
        "a crash for Events, nondeterminism for anything else.  Push "
        "(time, sequence, payload) like Environment._enqueue does."
    )

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            path = module.resolve(node.func)
            if path != "heapq.heappush" or len(node.args) < 2:
                continue
            entry = node.args[1]
            if isinstance(entry, ast.Tuple) and len(entry.elts) < 3:
                yield self.violation(
                    module,
                    entry,
                    f"heappush of a {len(entry.elts)}-tuple lacks a "
                    "monotonic sequence tiebreaker; push "
                    "(key, sequence, payload)",
                )
