"""``python -m repro lint`` — the determinism linter subcommand."""

from __future__ import annotations

import argparse

from repro.lint.checker import lint_paths
from repro.lint.report import format_human, format_json, format_rule_listing
from repro.lint.rules import RULE_REGISTRY

__all__ = ["add_lint_parser", "cmd_lint"]


def add_lint_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "lint",
        help="statically check determinism invariants (RPR001...)",
        description=(
            "AST-based determinism linter for the simulation code: "
            "wall-clock access, global RNG, set iteration, mutable "
            "defaults, float time equality, heap tiebreakers."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its scope and rationale, then exit",
    )
    return parser


def _split(codes: str | None) -> list[str] | None:
    if codes is None:
        return None
    return [code.strip() for code in codes.split(",") if code.strip()]


def cmd_lint(args, out) -> int:
    """Run the linter; exit 0 iff no violations."""
    if args.list_rules:
        print(format_rule_listing(), file=out)
        return 0
    # A typo'd code must not silently select nothing and report clean.
    for option in (args.select, args.ignore):
        for code in _split(option) or []:
            if code not in RULE_REGISTRY:
                known = ", ".join(sorted(RULE_REGISTRY))
                print(
                    f"error: unknown rule code {code!r} (known: {known})",
                    file=out,
                )
                return 2
    try:
        result = lint_paths(
            args.paths, select=_split(args.select), ignore=_split(args.ignore)
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.format == "json":
        print(format_json(result), file=out)
    else:
        print(format_human(result), file=out)
    return 0 if result.ok else 1
