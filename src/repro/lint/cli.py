"""``python -m repro lint`` — the determinism linter subcommand."""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.checker import lint_paths
from repro.lint.report import format_human, format_json, format_rule_listing
from repro.lint.rules import RULE_REGISTRY

__all__ = ["add_lint_parser", "cmd_lint"]


def add_lint_parser(sub) -> argparse.ArgumentParser:
    parser = sub.add_parser(
        "lint",
        help="statically check determinism invariants (RPR001...)",
        description=(
            "AST-based determinism linter for the simulation code. "
            "Per-file rules (RPR0xx) check wall-clock access, global "
            "RNG, set iteration, mutable defaults, float time equality "
            "and heap tiebreakers; whole-program rules (RPR1xx) build a "
            "call graph over every linted file and check unlocked "
            "shared state on threaded paths, lock-order cycles, sim "
            "purity, process-pool pickling and tracer span leaks."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to check (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format",
    )
    parser.add_argument(
        "--rules", choices=("file", "project", "all"), default="all",
        help=(
            "which pass to run: per-file rules, whole-program rules, "
            "or both (default: all)"
        ),
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None,
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="DIRNAME",
        help=(
            "directory name to skip while recursing (repeatable); "
            "explicitly listed files are always linted"
        ),
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "accept findings recorded in FILE; only findings not in the "
            "baseline fail the run"
        ),
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="record the current findings into FILE and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its scope and rationale, then exit",
    )
    return parser


def _split(codes: str | None) -> list[str] | None:
    if codes is None:
        return None
    return [code.strip() for code in codes.split(",") if code.strip()]


def cmd_lint(args, out) -> int:
    """Run the linter; exit 0 iff no (non-baselined) violations."""
    if args.list_rules:
        print(format_rule_listing(), file=out)
        return 0
    # A typo'd code must not silently select nothing and report clean.
    for option in (args.select, args.ignore):
        for code in _split(option) or []:
            if code not in RULE_REGISTRY:
                known = ", ".join(sorted(RULE_REGISTRY))
                print(
                    f"error: unknown rule code {code!r} (known: {known})",
                    file=out,
                )
                return 2
    try:
        result = lint_paths(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
            exclude=args.exclude,
            rules=args.rules,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=out)
            return 2
        apply_baseline(result, baseline)
    if args.write_baseline is not None:
        write_baseline(Path(args.write_baseline), result)
        total = len(result.violations) + len(result.baselined)
        print(
            f"wrote baseline with {total} finding"
            f"{'' if total == 1 else 's'} to {args.write_baseline}",
            file=out,
        )
        return 0
    if args.format == "json":
        print(format_json(result), file=out)
    else:
        print(format_human(result), file=out)
    return 0 if result.ok else 1
