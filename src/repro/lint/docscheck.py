"""Documentation checker: links must resolve, code blocks must run.

Markdown rots in two ways this module catches mechanically:

* **broken links** — every relative link target must exist on disk, and
  a ``#fragment`` must match a heading in the target file (GitHub slug
  rules).  ``http(s)``/``mailto`` links are skipped — no network.
* **stale code** — every fenced ```` ```python ```` block is executed.
  Blocks in one file share a namespace (later blocks may use names an
  earlier block defined, the way a tutorial reads) and run in a
  throwaway working directory so artifacts never land in the repo.
  A fence directly preceded by an ``<!-- no-run -->`` comment line is
  skipped — for deliberately-broken examples (``docs/LINT.md``).

* **coverage drift** — when checking the default doc tree, every CLI
  subcommand must be mentioned somewhere in the docs as ``repro
  <command>``, and every lint rule code (``RPR001``–``RPR202``) must
  appear verbatim.  A feature that ships without documentation fails
  the check the same way a broken link does.

``python -m repro docs`` drives this over ``README.md`` + ``docs/``;
CI runs it as the ``docs`` job.
"""

from __future__ import annotations

import os
import re
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "DocProblem",
    "DocsCheckResult",
    "NO_RUN_MARKER",
    "check_docs",
    "cli_subcommands",
    "default_doc_paths",
    "lint_rule_codes",
]

NO_RUN_MARKER = "<!-- no-run -->"

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_SKIP_SCHEMES = ("http://", "https://", "mailto:")


@dataclass(frozen=True)
class DocProblem:
    """One broken link, failed code block, or coverage miss."""

    path: str
    line: int
    kind: str  # "link" | "anchor" | "code" | "coverage"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.kind}] {self.message}"


@dataclass
class DocsCheckResult:
    checked_files: list = field(default_factory=list)
    links_checked: int = 0
    fences_run: int = 0
    fences_skipped: int = 0
    coverage_checked: int = 0  # CLI subcommands + rule codes verified
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def render(self) -> str:
        lines = [p.render() for p in self.problems]
        lines.append(
            f"docs: {len(self.checked_files)} files, "
            f"{self.links_checked} links, {self.fences_run} code blocks run "
            f"({self.fences_skipped} marked no-run), "
            f"{self.coverage_checked} coverage facts, "
            f"{len(self.problems)} problem(s)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Fence:
    language: str
    start_line: int  # 1-based line of the opening ```
    code: str
    no_run: bool


def default_doc_paths(root: Path) -> list:
    """README plus everything under docs/, sorted for stable output."""
    paths = []
    readme = root / "README.md"
    if readme.is_file():
        paths.append(readme)
    docs_dir = root / "docs"
    if docs_dir.is_dir():
        paths.extend(sorted(docs_dir.glob("*.md")))
    return paths


def _github_slug(heading: str) -> str:
    text = heading.strip().lower().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _parse(path: Path):
    """Split a markdown file into (headings, links, fences).

    Links and headings inside fenced blocks are ignored; fence contents
    are collected verbatim.
    """
    headings = set()
    links = []  # (line_number, target)
    fences = []
    in_fence = False
    language = ""
    fence_start = 0
    fence_lines = []
    previous_meaningful = ""
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        stripped = line.strip()
        if stripped.startswith("```"):
            if in_fence:
                fences.append(
                    _Fence(
                        language=language,
                        start_line=fence_start,
                        code="\n".join(fence_lines),
                        no_run=previous_meaningful == NO_RUN_MARKER,
                    )
                )
                in_fence = False
                previous_meaningful = ""
            else:
                in_fence = True
                language = stripped[3:].strip().lower()
                fence_start = lineno
                fence_lines = []
            continue
        if in_fence:
            fence_lines.append(line)
            continue
        if stripped.startswith("#"):
            headings.add(_github_slug(stripped.lstrip("#")))
        for match in _LINK_RE.finditer(line):
            links.append((lineno, match.group(1)))
        if stripped:
            previous_meaningful = stripped
    return headings, links, fences


def _check_link(path, lineno, target, headings_cache, problems):
    if target.startswith(_SKIP_SCHEMES):
        return
    raw_target, _, fragment = target.partition("#")
    if raw_target:
        resolved = (path.parent / raw_target).resolve()
        if not resolved.exists():
            problems.append(
                DocProblem(
                    str(path), lineno, "link", f"target does not exist: {target}"
                )
            )
            return
    else:
        resolved = path.resolve()
    if fragment and resolved.suffix == ".md":
        if resolved not in headings_cache:
            headings_cache[resolved] = _parse(resolved)[0]
        if fragment.lower() not in headings_cache[resolved]:
            problems.append(
                DocProblem(
                    str(path),
                    lineno,
                    "anchor",
                    f"no heading for anchor #{fragment} in {resolved.name}",
                )
            )


def _run_fences(path, fences, result):
    """Execute a file's python fences in one shared namespace."""
    runnable = [f for f in fences if f.language == "python" and not f.no_run]
    result.fences_skipped += sum(
        1 for f in fences if f.language == "python" and f.no_run
    )
    if not runnable:
        return
    namespace = {"__name__": f"docscheck:{path.name}"}
    original_cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as workdir:
        os.chdir(workdir)
        try:
            for fence in runnable:
                source = compile(
                    fence.code, f"{path}:{fence.start_line}", "exec"
                )
                try:
                    exec(source, namespace)  # noqa: S102 - the whole point
                except Exception:
                    last = traceback.format_exc().strip().splitlines()[-1]
                    result.problems.append(
                        DocProblem(
                            str(path),
                            fence.start_line,
                            "code",
                            f"python block failed: {last}",
                        )
                    )
                    # Later fences in this file likely depend on this
                    # one's names; stop rather than cascade errors.
                    return
                result.fences_run += 1
        finally:
            os.chdir(original_cwd)


def cli_subcommands() -> list:
    """Every ``python -m repro`` subcommand name, from the live parser."""
    import argparse

    from repro.cli import build_parser

    commands = []
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            commands.extend(action.choices)
    return sorted(set(commands))


def lint_rule_codes() -> list:
    """Every lint rule code: static rules plus the runtime sanitizers."""
    from repro.lint.rules import RULE_REGISTRY
    from repro.lint.threadsan import LOCK_ORDER_CODE, RACE_CODE

    return sorted(set(RULE_REGISTRY) | {LOCK_ORDER_CODE, RACE_CODE})


def _check_coverage(doc_texts: "dict[str, str]", problems: list) -> int:
    """Every subcommand and rule code must appear in the docs tree.

    Matching is deliberately literal: ``repro <command>`` (the way every
    doc writes invocations) and the bare ``RPR###`` code.  Returns the
    number of coverage facts checked.
    """
    corpus = "\n".join(doc_texts.values())
    tree = ", ".join(sorted(os.path.basename(p) for p in doc_texts)) or "-"
    checked = 0
    for command in cli_subcommands():
        checked += 1
        if not re.search(rf"\brepro {re.escape(command)}\b", corpus):
            problems.append(
                DocProblem(
                    "docs",
                    0,
                    "coverage",
                    f"CLI subcommand 'repro {command}' is documented "
                    f"nowhere in the checked tree ({tree})",
                )
            )
    for code in lint_rule_codes():
        checked += 1
        if code not in corpus:
            problems.append(
                DocProblem(
                    "docs",
                    0,
                    "coverage",
                    f"lint rule code {code} is documented nowhere in the "
                    f"checked tree ({tree})",
                )
            )
    return checked


def check_docs(
    paths=None, root=None, execute=True, coverage=None
) -> DocsCheckResult:
    """Check links (always), run python fences (unless ``execute=False``),
    and — when checking the default doc tree — require every CLI
    subcommand and lint rule code to be documented somewhere in it.

    ``coverage`` overrides the default: ``None`` enables the coverage
    pass exactly when ``paths`` is not given (a partial file list cannot
    satisfy a whole-tree requirement).
    """
    root = Path(root) if root is not None else Path.cwd()
    doc_paths = (
        [Path(p) for p in paths] if paths else default_doc_paths(root)
    )
    if coverage is None:
        coverage = paths is None
    result = DocsCheckResult()
    headings_cache = {}
    doc_texts: dict[str, str] = {}
    for path in doc_paths:
        if not path.is_file():
            result.problems.append(
                DocProblem(str(path), 0, "link", "file does not exist")
            )
            continue
        result.checked_files.append(str(path))
        doc_texts[str(path)] = path.read_text(encoding="utf-8")
        _, links, fences = _parse(path)
        for lineno, target in links:
            result.links_checked += 1
            _check_link(path, lineno, target, headings_cache, result.problems)
        if execute:
            _run_fences(path, fences, result)
    if coverage:
        result.coverage_checked = _check_coverage(doc_texts, result.problems)
    return result
