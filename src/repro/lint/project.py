"""Whole-program model for the interprocedural lint rules (RPR1xx).

The per-file rules (``repro.lint.checks``) see one AST at a time; the
concurrency and purity hazards that actually bite — shared module state
mutated from a thread three calls away, a lock-order cycle split across
two methods, ``time.sleep`` hiding below a simulation process — only
show up when the linted files are read *together*.  This module builds
that joint view:

* every file is parsed **once** (the same :class:`ParsedModule` objects
  the per-file pass already produced are reused verbatim);
* every function and method gets a :class:`FunctionInfo` carrying the
  facts rules need — resolved call edges, impure call sites, mutations
  of module-level state, lock acquisitions and their nesting;
* a project-wide call graph with forward/reverse adjacency plus
  reachability helpers (:meth:`ProjectModel.reachable`,
  :meth:`ProjectModel.chain`).

Resolution is deliberately best-effort and *conservative*: a call is
linked only when the target is unambiguous — a lexically visible
function, ``self.method`` on the enclosing class, an import-aliased
project function, or a method name defined exactly once in the whole
project.  Anything else stays unresolved rather than guessing (a lint
pass must not hallucinate edges into unrelated code).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.rules import ParsedModule

__all__ = [
    "CallSite",
    "FunctionInfo",
    "LockSite",
    "ModuleInfo",
    "Mutation",
    "PoolSubmission",
    "ProjectModel",
    "module_name_for",
]

#: Wall-clock reads plus real-time sleeps: host-dependent in sim code.
WALL_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random attributes sanctioned by the seeded-stream pattern.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Dotted-prefix matches that count as I/O for the sim-purity rule.
IO_PREFIXES = (
    "os.remove",
    "os.unlink",
    "os.replace",
    "os.rename",
    "os.mkdir",
    "os.makedirs",
    "os.rmdir",
    "os.listdir",
    "os.fdopen",
    "os.close",
    "subprocess.",
    "shutil.",
    "socket.",
    "tempfile.",
    "urllib.request.",
    "requests.",
)

#: Method names whose call on a container mutates it in place.
MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "extendleft",
    "insert",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "update",
}

#: Constructors whose module-level result is shared mutable state.
_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}


def module_name_for(path: Path) -> str:
    """Dotted module name for a file: ``src/repro/sim/engine.py`` →
    ``repro.sim.engine``; files outside a ``repro`` tree use the stem."""
    parts = list(path.parts)
    if "repro" in parts:
        start = parts.index("repro")
        tail = parts[start:-1]
        if path.stem != "__init__":
            tail.append(path.stem)
        return ".".join(tail)
    return path.stem


def _is_lockish(node: ast.expr) -> str | None:
    """Terminal symbol of a lock-looking Name/Attribute chain, or None.

    ``self._lock``, ``registry_lock``, ``MUTEX`` all qualify; a
    ``lock_for(key)`` call qualifies through its function name.
    """
    if isinstance(node, ast.Call):
        return _is_lockish(node.func)
    if isinstance(node, ast.Attribute):
        symbol = node.attr
    elif isinstance(node, ast.Name):
        symbol = node.id
    else:
        return None
    lowered = symbol.lower()
    if "lock" in lowered or "mutex" in lowered:
        return symbol
    return None


def _attr_chain(node: ast.expr) -> str | None:
    """``self._lock`` → ``"self._lock"``; None for non-trivial exprs."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, with the locks lexically held at it."""

    callee: str  # qualname of the target
    node: ast.AST
    locks_held: tuple[str, ...]


@dataclass(frozen=True)
class LockSite:
    """One lock acquisition (``with lock:`` or ``.acquire()``)."""

    key: str  # project-wide lock identity
    node: ast.AST
    held: tuple[str, ...]  # locks already held when this one is taken


@dataclass(frozen=True)
class Mutation:
    """An in-place mutation of a module-level mutable binding."""

    target: str  # "module.NAME" of the mutated global
    node: ast.AST
    locked: bool  # lexically inside a with-lock block


@dataclass(frozen=True)
class ImpureCall:
    """A wall-clock / RNG / I/O call site (for the sim-purity rule)."""

    kind: str  # "wall-clock" | "rng" | "io"
    dotted: str
    node: ast.AST


@dataclass(frozen=True)
class PoolSubmission:
    """Work shipped to a process pool (submit/map/submit_chunk).

    ``fn_arg`` is the callable expression for submit/map style calls
    and ``None`` for chunked submissions, where only the payload
    crosses the process boundary.  ``payload_args`` are the pickled
    arguments — for a chunked submission that is the chunk itself.
    """

    fn_arg: "ast.expr | None"  # the callable expression being shipped
    node: ast.AST  # the submit/map/submit_chunk call, for location
    payload_args: tuple = ()  # pickled argument expressions


@dataclass
class FunctionInfo:
    """Everything the project rules know about one function or method."""

    qualname: str
    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: str | None = None  # enclosing class name, if a method
    parent: "FunctionInfo | None" = None  # lexically enclosing function
    local_defs: dict[str, str] = field(default_factory=dict)
    local_names: set[str] = field(default_factory=set)
    calls: list[CallSite] = field(default_factory=list)
    impure_calls: list[ImpureCall] = field(default_factory=list)
    mutations: list[Mutation] = field(default_factory=list)
    lock_sites: list[LockSite] = field(default_factory=list)
    pool_submissions: list[PoolSubmission] = field(default_factory=list)
    is_thread_entry: bool = False
    is_sim_entry: bool = False

    @property
    def path(self) -> Path:
        return self.module.parsed.path


@dataclass
class ModuleInfo:
    """One parsed file inside the project model."""

    name: str
    parsed: ParsedModule
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    toplevel: dict[str, str] = field(default_factory=dict)  # name -> qualname
    mutable_globals: dict[str, ast.AST] = field(default_factory=dict)


class ProjectModel:
    """The linted files as one program: functions, edges, reachability."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: method/function *simple* name -> qualnames defining it.
        self._by_name: dict[str, list[str]] = {}
        self._forward: dict[str, set[str]] | None = None
        self._reverse: dict[str, set[str]] | None = None

    # -- construction -----------------------------------------------------
    @classmethod
    def build(cls, parsed_modules: Iterable[ParsedModule]) -> "ProjectModel":
        project = cls()
        infos = []
        for parsed in parsed_modules:
            name = module_name_for(parsed.path)
            # Two files mapping to one dotted name (e.g. same-stem
            # fixtures) keep the first; rules only need self-consistency.
            if name in project.modules:
                name = f"{name}@{len(project.modules)}"
            info = ModuleInfo(name=name, parsed=parsed)
            project.modules[name] = info
            infos.append(info)
        for info in infos:
            project._index_module(info)
        for info in infos:
            for fn in info.functions.values():
                _FunctionAnalyzer(project, fn).run()
        return project

    def _index_module(self, info: ModuleInfo) -> None:
        _Indexer(self, info).visit(info.parsed.tree)
        for stmt in info.parsed.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_mutable_literal(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    info.mutable_globals[target.id] = stmt

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in _MUTABLE_CONSTRUCTORS
        return False

    def _register(self, fn: FunctionInfo) -> None:
        self.functions[fn.qualname] = fn
        simple = fn.qualname.rsplit(".", 1)[-1]
        self._by_name.setdefault(simple, []).append(fn.qualname)

    # -- resolution helpers ----------------------------------------------
    def unique_by_name(self, simple: str) -> str | None:
        """The single project function with this simple name, if unique.

        Class-hierarchy-analysis lite: when exactly one function in the
        whole linted set is called ``receive``, an unresolvable
        ``obj.receive()`` can only mean it.  Two candidates → no edge.
        """
        hits = self._by_name.get(simple)
        if hits and len(hits) == 1:
            return hits[0]
        return None

    def resolve_ref(self, fn: FunctionInfo, node: ast.expr) -> str | None:
        """Resolve a function *reference* (not a call) to a qualname."""
        if isinstance(node, ast.Name):
            scope: FunctionInfo | None = fn
            while scope is not None:
                if node.id in scope.local_defs:
                    return scope.local_defs[node.id]
                scope = scope.parent
            hit = fn.module.toplevel.get(node.id)
            if hit is not None:
                return hit
            dotted = fn.module.parsed.aliases.get(node.id)
            if dotted is not None:
                return self._lookup_dotted(dotted)
            return None
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("self", "cls")
                and fn.cls is not None
            ):
                candidate = f"{fn.module.name}.{fn.cls}.{node.attr}"
                if candidate in self.functions:
                    return candidate
            dotted = fn.module.parsed.resolve(node)
            if dotted is not None:
                return self._lookup_dotted(dotted)
            return self.unique_by_name(node.attr)
        return None

    def _lookup_dotted(self, dotted: str) -> str | None:
        if dotted in self.functions:
            return dotted
        # "from repro.sweep.points import run_point" gives the dotted
        # path straight away; "from repro.sweep import points" then
        # "points.run_point" resolves through the alias chain above.
        return None

    # -- graph views ------------------------------------------------------
    def _ensure_graph(self) -> None:
        if self._forward is not None:
            return
        forward: dict[str, set[str]] = {q: set() for q in self.functions}
        reverse: dict[str, set[str]] = {q: set() for q in self.functions}
        for fn in self.functions.values():
            for call in fn.calls:
                if call.callee in self.functions:
                    forward[fn.qualname].add(call.callee)
                    reverse[call.callee].add(fn.qualname)
        self._forward = forward
        self._reverse = reverse

    @property
    def call_graph(self) -> dict[str, set[str]]:
        self._ensure_graph()
        assert self._forward is not None
        return self._forward

    def callers_of(self, qualname: str) -> set[str]:
        self._ensure_graph()
        assert self._reverse is not None
        return self._reverse.get(qualname, set())

    def reachable(self, seeds: Iterable[str]) -> dict[str, str | None]:
        """BFS closure over the call graph.

        Returns ``{qualname: parent}`` for every reachable function
        (seeds map to ``None``), so rules can rebuild the witness chain.
        """
        self._ensure_graph()
        assert self._forward is not None
        parents: dict[str, str | None] = {}
        queue: list[str] = []
        for seed in seeds:
            if seed in self.functions and seed not in parents:
                parents[seed] = None
                queue.append(seed)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self._forward.get(current, ())):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    @staticmethod
    def chain(parents: dict[str, str | None], qualname: str) -> list[str]:
        """Witness path entry → … → ``qualname`` from a BFS parent map."""
        path = [qualname]
        seen = {qualname}
        while True:
            parent = parents.get(path[-1])
            if parent is None or parent in seen:
                break
            path.append(parent)
            seen.add(parent)
        return list(reversed(path))

    def thread_entries(self) -> list[str]:
        return sorted(
            fn.qualname for fn in self.functions.values() if fn.is_thread_entry
        )

    def sim_entries(self) -> list[str]:
        return sorted(
            fn.qualname for fn in self.functions.values() if fn.is_sim_entry
        )

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]


class _Indexer(ast.NodeVisitor):
    """First pass: register every function/method with its qualname."""

    def __init__(self, project: ProjectModel, module: ModuleInfo):
        self.project = project
        self.module = module
        self._class_stack: list[str] = []
        self._fn_stack: list[FunctionInfo] = []

    def _qualname(self, name: str) -> str:
        parts = [self.module.name]
        if self._fn_stack:
            # Nested function: qualify by the enclosing chain.
            parts = [self._fn_stack[-1].qualname]
        elif self._class_stack:
            parts.append(".".join(self._class_stack))
        parts.append(name)
        return ".".join(parts)

    def _handle_function(self, node) -> None:
        qualname = self._qualname(node.name)
        fn = FunctionInfo(
            qualname=qualname,
            module=self.module,
            node=node,
            cls=self._class_stack[-1] if self._class_stack else None,
            parent=self._fn_stack[-1] if self._fn_stack else None,
        )
        if fn.parent is not None:
            fn.parent.local_defs[node.name] = qualname
            fn.cls = fn.parent.cls
        elif not self._class_stack:
            self.module.toplevel[node.name] = qualname
        self.module.functions[qualname] = fn
        self.project._register(fn)
        self._fn_stack.append(fn)
        self.generic_visit(node)
        self._fn_stack.pop()

    visit_FunctionDef = _handle_function
    visit_AsyncFunctionDef = _handle_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._fn_stack:
            # Classes inside functions: skip the extra qualname layer.
            self.generic_visit(node)
            return
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()


class _FunctionAnalyzer:
    """Second pass over one function's *own* statements.

    Nested function definitions are skipped (they are analyzed as their
    own :class:`FunctionInfo`); lambdas are attributed to the enclosing
    function.  The walk threads a lexical lock stack so every recorded
    fact carries the locks held at that point.
    """

    def __init__(self, project: ProjectModel, fn: FunctionInfo):
        self.project = project
        self.fn = fn
        self.module = fn.module
        self.parsed = fn.module.parsed
        self._lock_stack: list[str] = []

    def run(self) -> None:
        fn_node = self.fn.node
        self.fn.local_names.update(self._parameter_names(fn_node))
        self._collect_local_names(fn_node)
        for stmt in fn_node.body:
            self._walk(stmt)

    @staticmethod
    def _parameter_names(fn_node) -> list[str]:
        args = fn_node.args
        all_args = (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        )
        return [a.arg for a in all_args]

    def _collect_local_names(self, fn_node) -> None:
        """Names assigned in this function without a ``global`` decl."""
        globals_declared: set[str] = set()
        for node in self._own_nodes(fn_node):
            if isinstance(node, ast.Global):
                globals_declared.update(node.names)
        for node in self._own_nodes(fn_node):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                targets = [
                    item.optional_vars
                    for item in node.items
                    if item.optional_vars is not None
                ]
            for target in targets:
                for bound in self._binding_names(target):
                    if bound not in globals_declared:
                        self.fn.local_names.add(bound)

    @classmethod
    def _binding_names(cls, target: ast.expr) -> Iterator[str]:
        """Names a target expression *binds*.  ``x[0] = ...`` and
        ``x.attr = ...`` mutate ``x`` without binding it, so Subscript
        and Attribute targets contribute nothing."""
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from cls._binding_names(element)
        elif isinstance(target, ast.Starred):
            yield from cls._binding_names(target.value)

    def _own_nodes(self, root) -> Iterator[ast.AST]:
        """ast.walk that does not descend into nested def/class bodies."""
        stack = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- lock identity ----------------------------------------------------
    def _lock_key(self, node: ast.expr) -> str:
        if isinstance(node, ast.Call):
            node = node.func
        chain = _attr_chain(node)
        if chain is None:
            return f"{self.fn.qualname}.<lock>"
        root, _, rest = chain.partition(".")
        if root in ("self", "cls") and self.fn.cls is not None:
            return f"{self.module.name}.{self.fn.cls}.{rest or chain}"
        if not rest:
            # Bare name: find the defining scope (closure-captured locks
            # in nested workers must share the outer function's key).
            scope: FunctionInfo | None = self.fn
            while scope is not None:
                if root in scope.local_names:
                    return f"{scope.qualname}.{root}"
                scope = scope.parent
            return f"{self.module.name}.{root}"
        return f"{self.module.name}.{chain}"

    # -- the walk ---------------------------------------------------------
    def _walk(self, node: ast.AST) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._walk_with(node)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node)
        self._check_mutation(node)
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _walk_with(self, node) -> None:
        lock_keys: list[str] = []
        for item in node.items:
            if _is_lockish(item.context_expr) is not None:
                key = self._lock_key(item.context_expr)
                self.fn.lock_sites.append(
                    LockSite(
                        key=key,
                        node=item.context_expr,
                        held=tuple(self._lock_stack + lock_keys),
                    )
                )
                lock_keys.append(key)
            # The context expression itself may contain calls.
            self._walk(item.context_expr)
        self._lock_stack.extend(lock_keys)
        for stmt in node.body:
            self._walk(stmt)
        for _ in lock_keys:
            self._lock_stack.pop()

    def _handle_call(self, node: ast.Call) -> None:
        func = node.func
        # .acquire() outside a with-statement is a lock site too.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "acquire"
            and _is_lockish(func.value) is not None
        ):
            self.fn.lock_sites.append(
                LockSite(
                    key=self._lock_key(func.value),
                    node=node,
                    held=tuple(self._lock_stack),
                )
            )
        self._record_call_edge(node)
        self._record_impurity(node)
        self._detect_thread_entry(node)
        self._detect_sim_entry(node)

    def _record_call_edge(self, node: ast.Call) -> None:
        callee = self.project.resolve_ref(self.fn, node.func)
        if callee is not None:
            self.fn.calls.append(
                CallSite(
                    callee=callee,
                    node=node,
                    locks_held=tuple(self._lock_stack),
                )
            )

    def _record_impurity(self, node: ast.Call) -> None:
        func = node.func
        dotted = self.parsed.resolve(func)
        if dotted is None:
            if (
                isinstance(func, ast.Name)
                and func.id == "open"
                and func.id not in self.fn.local_names
                and func.id not in self.module.toplevel
            ):
                self.fn.impure_calls.append(ImpureCall("io", "open", node))
            return
        if dotted in WALL_CALLS:
            self.fn.impure_calls.append(ImpureCall("wall-clock", dotted, node))
        elif dotted == "random" or dotted.startswith("random."):
            self.fn.impure_calls.append(ImpureCall("rng", dotted, node))
        elif dotted == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                self.fn.impure_calls.append(ImpureCall("rng", dotted, node))
        elif dotted.startswith("numpy.random."):
            tail = dotted.split(".", 2)[2].split(".")[0]
            if tail not in _NP_RANDOM_ALLOWED:
                self.fn.impure_calls.append(ImpureCall("rng", dotted, node))
        elif any(dotted.startswith(prefix) for prefix in IO_PREFIXES):
            self.fn.impure_calls.append(ImpureCall("io", dotted, node))

    def _mark_entry(self, ref: ast.expr | None, attr: str) -> None:
        if ref is None:
            return
        if isinstance(ref, ast.Call):
            ref = ref.func
        target = self.project.resolve_ref(self.fn, ref)
        if target is not None and target in self.project.functions:
            setattr(self.project.functions[target], attr, True)

    def _detect_thread_entry(self, node: ast.Call) -> None:
        dotted = self.parsed.resolve(node.func)
        if dotted == "threading.Thread" or (
            dotted is not None and dotted.endswith(".Thread")
        ):
            for keyword in node.keywords:
                if keyword.arg == "target":
                    self._mark_entry(keyword.value, "is_thread_entry")
            return
        # Thread pools: pool.submit(fn, ...) / pool.map(fn, items).
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("submit", "map")
            and node.args
        ):
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if self._bound_to_executor(
                    receiver.id, ("ThreadPoolExecutor",)
                ):
                    self._mark_entry(node.args[0], "is_thread_entry")
                elif self._bound_to_executor(
                    receiver.id, ("ProcessPoolExecutor",)
                ):
                    self.fn.pool_submissions.append(
                        PoolSubmission(
                            fn_arg=node.args[0],
                            node=node,
                            payload_args=tuple(node.args[1:])
                            + tuple(kw.value for kw in node.keywords),
                        )
                    )
        # Chunked submissions: pool.submit_chunk(specs) ships the whole
        # chunk through pickle, so its elements must be picklable too.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "submit_chunk"
            and node.args
        ):
            receiver = func.value
            if isinstance(receiver, ast.Name) and self._bound_to_executor(
                receiver.id, ("SweepPool", "shared_pool")
            ):
                self.fn.pool_submissions.append(
                    PoolSubmission(
                        fn_arg=None,
                        node=node,
                        payload_args=tuple(node.args)
                        + tuple(kw.value for kw in node.keywords),
                    )
                )

    def _bound_to_executor(self, name: str, kinds: tuple[str, ...]) -> bool:
        """Is ``name`` bound from ``<kind>(...)`` in this function (via
        ``with ... as name`` or plain assignment)?"""
        for node in self._own_nodes(self.fn.node):
            value: ast.expr | None = None
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id == name
                    ):
                        value = item.context_expr
            elif isinstance(node, ast.Assign):
                if any(
                    isinstance(t, ast.Name) and t.id == name
                    for t in node.targets
                ):
                    value = node.value
            if value is None or not isinstance(value, ast.Call):
                continue
            dotted = self.parsed.resolve(value.func) or ""
            simple = dotted.rsplit(".", 1)[-1] if dotted else (
                value.func.id if isinstance(value.func, ast.Name) else ""
            )
            if simple in kinds:
                return True
        return False

    def _detect_sim_entry(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr == "process":
            # <...>.env.process(target(...)) — the environment objects
            # in this codebase are uniformly called env/_env.
            value = func.value
            terminal = (
                value.id
                if isinstance(value, ast.Name)
                else value.attr if isinstance(value, ast.Attribute) else None
            )
            if terminal in ("env", "_env") and node.args:
                self._mark_entry(node.args[0], "is_sim_entry")
        elif func.attr == "append":
            # event.callbacks.append(fn): fn runs inside the event loop.
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "callbacks"
                and node.args
            ):
                self._mark_entry(node.args[0], "is_sim_entry")

    def _check_mutation(self, node: ast.AST) -> None:
        target_expr: ast.expr | None = None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._record_mutation_if_global(target.value, node)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Subscript):
                self._record_mutation_if_global(node.target.value, node)
            elif isinstance(node.target, ast.Name):
                # `global X; X += ...` rebinds shared state in place.
                if node.target.id not in self.fn.local_names:
                    self._record_mutation_if_global(node.target, node)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
            ):
                self._record_mutation_if_global(func.value, node)
        elif isinstance(node, (ast.Delete,)):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    self._record_mutation_if_global(target.value, node)
        del target_expr

    def _record_mutation_if_global(
        self, expr: ast.expr, node: ast.AST
    ) -> None:
        resolved = self._resolve_global(expr)
        if resolved is None:
            return
        self.fn.mutations.append(
            Mutation(
                target=resolved,
                node=node,
                locked=bool(self._lock_stack),
            )
        )

    def _resolve_global(self, expr: ast.expr) -> str | None:
        """``module.NAME`` if ``expr`` denotes a module-level mutable."""
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in self.fn.local_names:
                return None
            scope = self.fn.parent
            while scope is not None:
                if name in scope.local_names:
                    return None  # closure over an enclosing local
                scope = scope.parent
            if name in self.module.mutable_globals:
                return f"{self.module.name}.{name}"
            dotted = self.parsed.aliases.get(name)
            if dotted is not None:
                mod_name, _, attr = dotted.rpartition(".")
                other = self.project.modules.get(mod_name)
                if other is not None and attr in other.mutable_globals:
                    return dotted
            return None
        if isinstance(expr, ast.Attribute):
            dotted = self.parsed.resolve(expr)
            if dotted is None:
                return None
            mod_name, _, attr = dotted.rpartition(".")
            other = self.project.modules.get(mod_name)
            if other is not None and attr in other.mutable_globals:
                return dotted
        return None
