"""Whole-program rules RPR101–RPR106.

Each rule receives the :class:`~repro.lint.project.ProjectModel` built
from every linted file and reasons across call boundaries.  Violations
are anchored at the concrete offending node (the mutation, the lock
acquisition, the impure call) and, where a call chain is the evidence,
the message spells the chain out so the finding is actionable without
re-running the analysis.

Approximation stance (shared by all six rules): only *resolved* call
edges exist, so a chain through ``getattr`` or duck-typed dispatch is
invisible — these rules under-report rather than guess.  The runtime
:class:`~repro.lint.threadsan.ThreadSanitizer` covers the dynamic side
of the same hazards.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.project import FunctionInfo, ProjectModel
from repro.lint.rules import ProjectRule, Violation, register

__all__ = [
    "LockOrderRule",
    "PoolCaptureRule",
    "RetryBackoffRule",
    "SharedStateRule",
    "SimPurityRule",
    "SpanLeakRule",
]


def _fmt_chain(chain: list[str]) -> str:
    return " -> ".join(chain)


def _held_lock_fixpoint(
    project: ProjectModel, reachable: dict[str, str | None]
) -> dict[str, frozenset[str]]:
    """Locks *guaranteed* held on entry to each reachable function.

    Entry points start with nothing held; every other function gets the
    intersection over all in-closure call sites of (caller's guaranteed
    set ∪ locks lexically held at the site).  Standard decreasing
    fixpoint: initialise non-entries to the full lock universe.
    """
    universe = frozenset(
        site.key
        for fn in project.functions.values()
        for site in fn.lock_sites
    )
    held: dict[str, frozenset[str]] = {}
    for qualname, parent in reachable.items():
        held[qualname] = frozenset() if parent is None else universe
    changed = True
    while changed:
        changed = False
        for qualname in reachable:
            fn = project.functions[qualname]
            for call in fn.calls:
                if call.callee not in held:
                    continue
                incoming = held[qualname] | frozenset(call.locks_held)
                narrowed = held[call.callee] & incoming
                if narrowed != held[call.callee]:
                    held[call.callee] = narrowed
                    changed = True
    return held


@register
class SharedStateRule(ProjectRule):
    code = "RPR101"
    name = "unlocked-shared-module-state"
    rationale = (
        "Module-level mutable state mutated on a path reachable from a "
        "thread entry point without any lock held is a data race: "
        "worker interleavings make runs non-reproducible."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        reachable = project.reachable(project.thread_entries())
        if not reachable:
            return
        held = _held_lock_fixpoint(project, reachable)
        for qualname in sorted(reachable):
            fn = project.functions[qualname]
            for mutation in fn.mutations:
                if mutation.locked or held.get(qualname):
                    continue
                chain = _fmt_chain(ProjectModel.chain(reachable, qualname))
                yield self.project_violation(
                    fn.path,
                    mutation.node,
                    f"module state '{mutation.target}' mutated without a "
                    f"lock on a threaded path ({chain})",
                )


@register
class LockOrderRule(ProjectRule):
    code = "RPR102"
    name = "lock-order-inconsistency"
    rationale = (
        "Two locks acquired in opposite orders on different paths can "
        "deadlock; the acquire-order graph must stay acyclic."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        # Locks each function acquires directly or via resolved callees.
        acquired: dict[str, frozenset[str]] = {
            q: frozenset(site.key for site in fn.lock_sites)
            for q, fn in project.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname, fn in project.functions.items():
                union = acquired[qualname]
                for call in fn.calls:
                    union = union | acquired.get(call.callee, frozenset())
                if union != acquired[qualname]:
                    acquired[qualname] = union
                    changed = True

        # edge (a, b): b acquired while a held; keep one witness site.
        edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}

        def add_edge(a: str, b: str, fn: FunctionInfo, node: ast.AST):
            if a != b:  # self-nesting may be a legal RLock re-entry
                edges.setdefault((a, b), (fn, node))

        for fn in project.iter_functions():
            for site in fn.lock_sites:
                for outer in site.held:
                    add_edge(outer, site.key, fn, site.node)
            for call in fn.calls:
                if not call.locks_held:
                    continue
                for inner in sorted(acquired.get(call.callee, ())):
                    for outer in call.locks_held:
                        add_edge(outer, inner, fn, call.node)

        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())

        for cycle in _cycles(graph):
            # Anchor the finding at the witness site of the cycle's
            # lexicographically first edge, so output is stable.
            pairs = [
                (cycle[i], cycle[(i + 1) % len(cycle)])
                for i in range(len(cycle))
            ]
            witness = min(p for p in pairs if p in edges)
            fn, node = edges[witness]
            order = " -> ".join(cycle + [cycle[0]])
            yield self.project_violation(
                fn.path,
                node,
                f"inconsistent lock acquisition order (cycle {order}); "
                f"witnessed in {fn.qualname}",
            )


def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Cycles in the acquire-order graph, one per strongly connected
    component with more than one node, canonically rotated."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    out: list[list[str]] = []

    def strongconnect(v: str) -> None:
        # Iterative Tarjan (recursion depth is unbounded on long chains).
        work = [(v, iter(sorted(graph[v])))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for child in it:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    # Rotate so the smallest lock leads; order members
                    # along actual edges where possible for readability.
                    component.sort()
                    out.append(component)

    for vertex in sorted(graph):
        if vertex not in index:
            strongconnect(vertex)
    return out


@register
class SimPurityRule(ProjectRule):
    code = "RPR103"
    name = "sim-impure-reachable"
    rationale = (
        "Functions reachable from simulation event callbacks must be "
        "pure w.r.t. the host: wall-clock reads, unseeded RNG or I/O "
        "there makes simulated results machine-dependent."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        reachable = project.reachable(project.sim_entries())
        for qualname in sorted(reachable):
            fn = project.functions[qualname]
            for impure in fn.impure_calls:
                chain = _fmt_chain(ProjectModel.chain(reachable, qualname))
                yield self.project_violation(
                    fn.path,
                    impure.node,
                    f"{impure.kind} call {impure.dotted}() reachable from "
                    f"sim event callback ({chain})",
                )


@register
class PoolCaptureRule(ProjectRule):
    code = "RPR104"
    name = "non-picklable-pool-capture"
    rationale = (
        "Lambdas and nested functions cannot be pickled; shipping one "
        "to a ProcessPoolExecutor or embedding one in a PointSpec "
        "fails only at runtime, on the worker."
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for fn in project.iter_functions():
            for sub in fn.pool_submissions:
                if sub.fn_arg is not None:
                    problem = self._unpicklable(fn, sub.fn_arg)
                    if problem:
                        yield self.project_violation(
                            fn.path,
                            sub.node,
                            f"{problem} submitted to a ProcessPoolExecutor "
                            f"in {fn.qualname} cannot be pickled",
                        )
                for arg in sub.payload_args:
                    for expr in self._payload_exprs(arg):
                        problem = self._unpicklable(fn, expr)
                        if problem:
                            yield self.project_violation(
                                fn.path,
                                sub.node,
                                f"{problem} in a chunk submitted to a "
                                f"worker pool in {fn.qualname} cannot "
                                f"be pickled",
                            )
            for call in self._pointspec_calls(fn):
                for arg in list(call.args) + [
                    kw.value for kw in call.keywords
                ]:
                    problem = self._unpicklable(fn, arg)
                    if problem:
                        yield self.project_violation(
                            fn.path,
                            call,
                            f"{problem} embedded in a PointSpec in "
                            f"{fn.qualname} cannot be pickled",
                        )

    @staticmethod
    def _payload_exprs(arg: ast.expr) -> Iterator[ast.expr]:
        """The argument itself plus the elements of literal containers
        (a chunk is typically a list of specs built in place; a worker
        payload is a dict literal; capture flags ride as conditionals)."""
        yield arg
        if isinstance(arg, (ast.List, ast.Tuple, ast.Set)):
            yield from arg.elts
        elif isinstance(arg, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            yield arg.elt
        elif isinstance(arg, ast.Dict):
            yield from (key for key in arg.keys if key is not None)
            yield from arg.values
        elif isinstance(arg, ast.DictComp):
            yield arg.key
            yield arg.value
        elif isinstance(arg, ast.IfExp):
            yield from PoolCaptureRule._payload_exprs(arg.body)
            yield from PoolCaptureRule._payload_exprs(arg.orelse)

    @staticmethod
    def _pointspec_calls(fn: FunctionInfo) -> Iterator[ast.Call]:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.id if isinstance(func, ast.Name) else (
                    func.attr if isinstance(func, ast.Attribute) else None
                )
                if name == "PointSpec":
                    yield node

    @staticmethod
    def _unpicklable(fn: FunctionInfo, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Lambda):
            return "lambda"
        if isinstance(expr, ast.Name):
            scope: FunctionInfo | None = fn
            while scope is not None:
                if expr.id in scope.local_defs:
                    return f"nested function '{expr.id}'"
                scope = scope.parent
        return None


@register
class SpanLeakRule(ProjectRule):
    code = "RPR105"
    name = "obs-span-leak"
    rationale = (
        "A tracer span opened outside a with-statement never closes on "
        "an exception path, so the trace silently loses the span and "
        "every duration derived from it."
    )

    #: Receiver terminal names that identify a tracer object.
    _TRACER_NAMES = ("tracer", "_tracer", "obs")

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for fn in project.iter_functions():
            yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Violation]:
        with_exprs: set[int] = set()
        with_names: set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_exprs.add(id(item.context_expr))
                    if isinstance(item.context_expr, ast.Name):
                        with_names.add(item.context_expr.id)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "span"):
                continue
            value = func.value
            terminal = (
                value.id
                if isinstance(value, ast.Name)
                else value.attr if isinstance(value, ast.Attribute) else None
            )
            if terminal is None or not any(
                name in terminal.lower() for name in self._TRACER_NAMES
            ):
                continue
            if id(node) in with_exprs:
                continue
            # `handle = tracer.span(...)` then `with handle:` is fine,
            # as is a handle deterministically closed in a finally —
            # the pattern worker-side capture uses when a span must
            # cross a dispatch boundary a with-block cannot straddle.
            assigned = self._assigned_name(fn.node, node)
            if assigned is not None and (
                assigned in with_names
                or assigned in self._finally_closed(fn.node)
            ):
                continue
            yield self.project_violation(
                fn.path,
                node,
                f"span opened in {fn.qualname} outside a with-statement; "
                f"an exception before close loses the span",
            )

    @staticmethod
    def _assigned_name(root: ast.AST, call: ast.Call) -> str | None:
        for node in ast.walk(root):
            if isinstance(node, ast.Assign) and node.value is call:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    return target.id
        return None

    @staticmethod
    def _finally_closed(root: ast.AST) -> set[str]:
        """Names whose ``.close()`` / ``.__exit__()`` runs in a
        ``finally`` block — closed on every path, exception included."""
        closed: set[str] = set()
        for node in ast.walk(root):
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    func = call.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in ("close", "__exit__")
                        and isinstance(func.value, ast.Name)
                    ):
                        closed.add(func.value.id)
        return closed


@register
class RetryBackoffRule(ProjectRule):
    code = "RPR106"
    name = "retry-without-backoff"
    rationale = (
        "A bare while-True try/except around a queue or storage call "
        "with neither backoff nor an attempt budget hammers the "
        "service in a hot loop: every transient error becomes a retry "
        "storm.  Wrap the call in a RetryPolicy (exponential backoff, "
        "budget-capped) or sleep between attempts."
    )

    #: Client methods whose immediate unbounded retry we flag.
    _CLIENT_METHODS = frozenset(
        ("receive", "send", "send_batch", "delete", "get", "put", "head",
         "list_keys")
    )
    #: Receiver terminal-name fragments that identify a remote client.
    _CLIENT_NAMES = ("queue", "storage", "store", "blob", "bucket", "client")
    #: Calls that pace a retry loop (simulated or real sleeps, or a
    #: policy-computed delay).
    _BACKOFF_NAMES = frozenset(("timeout", "sleep", "backoff_s"))

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        for fn in project.iter_functions():
            yield from self._check_function(fn)

    def _check_function(self, fn: FunctionInfo) -> Iterator[Violation]:
        for loop in ast.walk(fn.node):
            if not isinstance(loop, ast.While):
                continue
            test = loop.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            if self._has_backoff(loop):
                continue
            for handler_try in ast.walk(loop):
                if not isinstance(handler_try, ast.Try):
                    continue
                if self._handlers_escape(handler_try):
                    continue
                call = self._client_call(handler_try)
                if call is None:
                    continue
                yield self.project_violation(
                    fn.path,
                    call,
                    f"unbounded immediate retry of "
                    f"{self._describe(call)} in {fn.qualname}: while-True "
                    f"retry loop with no backoff and no attempt budget",
                )

    def _client_call(self, handler_try: ast.Try) -> ast.Call | None:
        """The first queue/storage client call in the try body."""
        for stmt in handler_try.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._CLIENT_METHODS
                ):
                    continue
                value = func.value
                terminal = (
                    value.id
                    if isinstance(value, ast.Name)
                    else value.attr
                    if isinstance(value, ast.Attribute)
                    else None
                )
                if terminal is not None and any(
                    fragment in terminal.lower()
                    for fragment in self._CLIENT_NAMES
                ):
                    return node
        return None

    def _has_backoff(self, loop: ast.While) -> bool:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if name in self._BACKOFF_NAMES:
                return True
        return False

    @staticmethod
    def _handlers_escape(handler_try: ast.Try) -> bool:
        """True when some handler raises, returns or breaks — i.e. the
        loop has *an* attempt budget, however it is implemented."""
        for handler in handler_try.handlers:
            for stmt in handler.body:
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.Raise, ast.Return, ast.Break)):
                        return True
        return False

    @staticmethod
    def _describe(call: ast.Call) -> str:
        func = call.func
        value = func.value
        terminal = (
            value.id
            if isinstance(value, ast.Name)
            else value.attr if isinstance(value, ast.Attribute) else "?"
        )
        return f"{terminal}.{func.attr}()"

