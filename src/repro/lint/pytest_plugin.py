"""Pytest integration for the runtime sanitizer.

Registered from ``tests/conftest.py``.  Two entry points:

* ``pytest --repro-sanitize`` sets ``REPRO_SANITIZE=1`` for the whole
  session, so every simulated backend that builds its event loop through
  :func:`repro.sim.engine.make_environment` runs on a
  :class:`~repro.lint.sanitizer.SanitizedEnvironment`;
* the ``sanitized_env`` fixture hands a test an instrumented
  environment and fails the test at teardown if the sanitizer caught a
  kernel-contract violation or a queue leak.
"""

from __future__ import annotations

import os

import pytest

from repro.lint.sanitizer import SanitizedEnvironment

__all__ = ["sanitized_env"]

_OPTION = "--repro-sanitize"


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro")
    group.addoption(
        _OPTION,
        action="store_true",
        default=False,
        help="run simulated backends under the determinism sanitizer "
        "(sets REPRO_SANITIZE=1)",
    )


def pytest_configure(config) -> None:
    if config.getoption(_OPTION):
        os.environ["REPRO_SANITIZE"] = "1"


def pytest_report_header(config) -> str:
    enabled = config.getoption(_OPTION) or bool(os.environ.get("REPRO_SANITIZE"))
    return f"repro sanitizer: {'on' if enabled else 'off'}"


@pytest.fixture
def sanitized_env():
    """A strict SanitizedEnvironment; leaks fail the test at teardown."""
    env = SanitizedEnvironment(strict=True)
    yield env
    report = env.sanitizer_report()
    if report.issues:
        pytest.fail(
            "sanitizer caught issues:\n" + report.summary(), pytrace=False
        )
