"""Pytest integration for the runtime sanitizers.

Registered from ``tests/conftest.py``.  Entry points:

* ``pytest --repro-sanitize`` sets ``REPRO_SANITIZE=1`` for the whole
  session, so every simulated backend that builds its event loop through
  :func:`repro.sim.engine.make_environment` runs on a
  :class:`~repro.lint.sanitizer.SanitizedEnvironment`;
* ``pytest --repro-sanitize-threads`` installs a fresh
  :class:`~repro.lint.threadsan.ThreadSanitizer` around every test (and
  exports ``REPRO_SANITIZE=threads`` for worker subprocesses); a test
  whose threaded runtimes produce lock-order inversions or
  unsynchronized cross-thread writes fails at teardown with the
  findings formatted by :mod:`repro.lint.report`;
* the ``sanitized_env`` fixture hands a test an instrumented
  environment and fails the test at teardown if the sanitizer caught a
  kernel-contract violation or a queue leak.
"""

from __future__ import annotations

import os

import pytest

from repro.lint import threadsan
from repro.lint.sanitizer import SanitizedEnvironment

__all__ = ["sanitized_env"]

_OPTION = "--repro-sanitize"
_THREADS_OPTION = "--repro-sanitize-threads"


def pytest_addoption(parser) -> None:
    group = parser.getgroup("repro")
    group.addoption(
        _OPTION,
        action="store_true",
        default=False,
        help="run simulated backends under the determinism sanitizer "
        "(sets REPRO_SANITIZE=1)",
    )
    group.addoption(
        _THREADS_OPTION,
        action="store_true",
        default=False,
        help="run threaded runtimes under the thread sanitizer; tests "
        "fail on lock-order inversions or unsynchronized writes "
        "(sets REPRO_SANITIZE=threads)",
    )


def _add_token(token: str) -> None:
    tokens = threadsan.sanitize_tokens(os.environ.get("REPRO_SANITIZE"))
    tokens.add(token)
    os.environ["REPRO_SANITIZE"] = ",".join(sorted(tokens))


def pytest_configure(config) -> None:
    if config.getoption(_OPTION):
        _add_token("1")
    if config.getoption(_THREADS_OPTION):
        _add_token("threads")


def pytest_report_header(config) -> str:
    tokens = threadsan.sanitize_tokens(os.environ.get("REPRO_SANITIZE"))
    enabled = config.getoption(_OPTION) or bool(tokens - {"threads"})
    threads = config.getoption(_THREADS_OPTION) or bool(
        tokens & {"threads", "all"}
    )
    return (
        f"repro sanitizer: {'on' if enabled else 'off'} "
        f"(threads: {'on' if threads else 'off'})"
    )


@pytest.fixture(autouse=True)
def _thread_sanitizer(request):
    """Per-test ThreadSanitizer when ``--repro-sanitize-threads`` is on.

    A fresh sanitizer per test keeps acquisition-order graphs and
    object states from leaking across tests; findings fail the test at
    teardown.  Without the option this fixture is inert.
    """
    if not request.config.getoption(_THREADS_OPTION):
        yield None
        return
    sanitizer = threadsan.install(threadsan.ThreadSanitizer())
    yield sanitizer
    threadsan.uninstall()
    report = sanitizer.report()
    if report.issues:
        pytest.fail(
            "thread sanitizer caught issues:\n" + report.summary(),
            pytrace=False,
        )


@pytest.fixture
def sanitized_env():
    """A strict SanitizedEnvironment; leaks fail the test at teardown."""
    env = SanitizedEnvironment(strict=True)
    yield env
    report = env.sanitizer_report()
    if report.issues:
        pytest.fail(
            "sanitizer caught issues:\n" + report.summary(), pytrace=False
        )
