"""Output formats for lint results: human text and machine JSON."""

from __future__ import annotations

import json

from repro.lint.checker import LintResult
from repro.lint.rules import all_rules

__all__ = ["format_human", "format_json", "format_rule_listing"]


def format_human(result: LintResult) -> str:
    """flake8-style one-line-per-violation text plus a summary."""
    lines = [violation.format() for violation in result.violations]
    baseline_note = (
        f", {len(result.baselined)} baselined" if result.baselined else ""
    )
    summary = (
        f"{len(result.violations)} violation"
        f"{'' if len(result.violations) == 1 else 's'} "
        f"({len(result.suppressed)} suppressed{baseline_note}) "
        f"in {result.files_checked} file"
        f"{'' if result.files_checked == 1 else 's'}"
    )
    lines.append(summary)
    return "\n".join(lines)


def _violation_dicts(violations) -> list[dict]:
    return [
        {
            "path": v.path,
            "line": v.line,
            "col": v.col,
            "code": v.code,
            "message": v.message,
        }
        for v in violations
    ]


def format_json(result: LintResult) -> str:
    """Stable JSON document for CI and tooling (schema v2).

    v2 adds ``schema`` and the ``baselined`` list; ``ok``,
    ``files_checked``, ``suppressed`` and ``violations`` keep their v1
    shape so existing consumers keep working.
    """
    payload = {
        "schema": "repro-lint/2",
        "ok": result.ok,
        "files_checked": result.files_checked,
        "suppressed": len(result.suppressed),
        "baselined": _violation_dicts(result.baselined),
        "violations": _violation_dicts(result.violations),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def format_rule_listing() -> str:
    """``repro lint --list-rules`` output."""
    lines = []
    for rule in all_rules():
        scope = ", ".join(rule.scope) if rule.scope else "everywhere"
        lines.append(f"{rule.code} {rule.name} [{scope}]")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)
