"""Rule framework for the determinism linter.

A rule is a small object with a stable code (``RPR001``…), a scope (the
package directories it applies to, or everywhere) and a ``check``
method that yields :class:`Violation` objects for one parsed module.
Rules register themselves into :data:`RULE_REGISTRY` via the
:func:`register` decorator so the checker, the CLI and the docs all
enumerate the same set.

Two rule kinds share the registry:

* per-file rules (:class:`Rule`, codes ``RPR0xx``) see one
  :class:`ParsedModule` at a time;
* whole-program rules (:class:`ProjectRule`, codes ``RPR1xx``) see a
  :class:`repro.lint.project.ProjectModel` — every linted file parsed
  once, with a call graph — and reason across call boundaries.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "ParsedModule",
    "ProjectRule",
    "RULE_REGISTRY",
    "Rule",
    "SYNTAX_ERROR_CODE",
    "Violation",
    "all_rules",
    "applicable_rules",
    "file_rules",
    "project_rules",
    "register",
]

#: Pseudo-code attached to unparsable files; not a registered rule and
#: deliberately not suppressible.
SYNTAX_ERROR_CODE = "RPR000"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


@dataclass
class ParsedModule:
    """A source file plus everything rules need to inspect it."""

    path: Path
    tree: ast.Module
    lines: list[str]
    #: local name -> fully dotted origin, e.g. ``np`` -> ``numpy`` or
    #: ``perf_counter`` -> ``time.perf_counter`` (built by the checker).
    aliases: dict[str, str] = field(default_factory=dict)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of a Name/Attribute chain through import aliases.

        ``np.random.default_rng`` with ``import numpy as np`` resolves to
        ``numpy.random.default_rng``; returns ``None`` for anything that
        is not a plain dotted chain rooted in a known import.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclass, set the class attributes, implement check."""

    code: str = ""
    name: str = ""
    rationale: str = ""
    #: Directory names the rule is restricted to (any match in the file's
    #: path parts activates it); ``None`` applies everywhere.
    scope: tuple[str, ...] | None = None

    def applies_to(self, path: Path) -> bool:
        if self.scope is None:
            return True
        return any(part in self.scope for part in path.parts)

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, module: ParsedModule, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


class ProjectRule(Rule):
    """Base for whole-program rules: implement ``check_project``.

    A project rule never runs per file; the checker hands it the full
    :class:`~repro.lint.project.ProjectModel` once per lint invocation
    and routes the resulting violations through each file's ``noqa``
    suppression tables, exactly like per-file findings.
    """

    def check(self, module: ParsedModule) -> Iterator[Violation]:
        raise NotImplementedError(
            f"{self.code} is a project rule; use check_project"
        )

    def check_project(self, project) -> Iterator[Violation]:
        raise NotImplementedError

    def project_violation(
        self, path, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=str(path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


RULE_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and index the rule by its code."""
    instance = cls()
    if not instance.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if instance.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {instance.code}")
    RULE_REGISTRY[instance.code] = instance
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    return [RULE_REGISTRY[code] for code in sorted(RULE_REGISTRY)]


def file_rules() -> list[Rule]:
    """Registered per-file rules only."""
    return [r for r in all_rules() if not isinstance(r, ProjectRule)]


def project_rules(
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Registered whole-program rules after select/ignore filtering."""
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    return [
        rule
        for rule in all_rules()
        if isinstance(rule, ProjectRule)
        and (selected is None or rule.code in selected)
        and rule.code not in ignored
    ]


def applicable_rules(
    path: Path,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Rule]:
    """Per-file rules active for ``path`` after --select / --ignore
    filtering (project rules run once per invocation, not per file)."""
    selected = set(select) if select else None
    ignored = set(ignore) if ignore else set()
    return [
        rule
        for rule in file_rules()
        if rule.applies_to(path)
        and (selected is None or rule.code in selected)
        and rule.code not in ignored
    ]
