"""Runtime simulation sanitizer: an instrumented DES environment.

:class:`SanitizedEnvironment` is a drop-in :class:`~repro.sim.engine.
Environment` that, while the simulation runs,

* records a **deterministic event trace** (time, scheduling sequence,
  event type, process name) — two runs with the same seed must produce
  byte-identical traces;
* detects events fired or re-enqueued **twice** (a kernel-contract
  violation; raises in strict mode);
* counts **same-timestamp ties**, i.e. places where only the
  scheduling-order guarantee keeps the run deterministic;
* tracks processes so a post-run report can list those that ended the
  run **still waiting** on an event nobody triggered;
* hooks every :class:`~repro.cloud.queue.MessageQueue` built on it (the
  queue registers itself via ``env.register_queue``) and reports
  **leaked in-flight messages**: receipts that went stale — the
  visibility timeout passed — without the reappearance accounting ever
  running, which breaks the at-least-once delivery story.

Opt in either by constructing :class:`SanitizedEnvironment` directly or
by setting ``REPRO_SANITIZE=1`` and building environments through
:func:`repro.sim.engine.make_environment` (the simulated backends do).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.context import current as _current_obs
from repro.obs.tracer import Tracer
from repro.sim.engine import Environment, Event, Process, SimulationError

__all__ = ["SanitizedEnvironment", "SanitizerError", "SanitizerReport"]


class SanitizerError(SimulationError):
    """A kernel-contract violation caught by the sanitizer."""


@dataclass
class SanitizerReport:
    """Post-run findings.  ``issues`` is empty for a healthy run."""

    events_fired: int = 0
    same_time_ties: int = 0
    double_triggers: list[str] = field(default_factory=list)
    pending_processes: list[str] = field(default_factory=list)
    queue_leaks: list[str] = field(default_factory=list)

    @property
    def issues(self) -> list[str]:
        return self.double_triggers + self.queue_leaks

    def summary(self) -> str:
        lines = [
            f"events fired: {self.events_fired}",
            f"same-time ties (order held by scheduling sequence): "
            f"{self.same_time_ties}",
        ]
        for label, findings in (
            ("double triggers", self.double_triggers),
            ("processes still waiting at end of run", self.pending_processes),
            ("leaked in-flight queue messages", self.queue_leaks),
        ):
            lines.append(f"{label}: {len(findings)}")
            lines.extend(f"  - {finding}" for finding in findings)
        return "\n".join(lines)


class SanitizedEnvironment(Environment):
    """Instrumented event loop.  ``strict=True`` raises on violations
    (double triggers / re-enqueues); the trace and the statistical
    findings are always collected."""

    # Route every scheduling action through _enqueue and the heap (no
    # same-time fast lane) so the overrides below observe all of them.
    # The kernel materializes lane entries as traceable _Call events on
    # this path; the (time, sequence) firing order is identical.
    _use_lane = False

    #: Track name under which kernel events are recorded in the tracer.
    KERNEL_TRACK = "kernel"

    def __init__(self, initial_time: float = 0.0, strict: bool = True):
        super().__init__(initial_time)
        self.strict = strict
        # The event trace is recorded as instants on a Tracer — the same
        # span stream repro.obs exports.  If an observe() context is
        # active, events land in that run's trace (and surface in the
        # Chrome export); otherwise the sanitizer owns a private tracer.
        ambient = _current_obs().tracer
        self.tracer = ambient if ambient.enabled else Tracer(label="sanitizer")
        self.same_time_ties = 0
        self._double_triggers: list[str] = []
        self._processes: list[Process] = []
        self._queues: list = []

    # -- hooks ------------------------------------------------------------
    def register_queue(self, queue) -> None:
        """Called by MessageQueue.__init__ to enrol in leak detection."""
        self._queues.append(queue)

    def process(self, generator, name: str | None = None) -> Process:
        proc = super().process(generator, name=name)
        self._processes.append(proc)
        return proc

    def _enqueue(self, event: Event, delay: float) -> None:
        if event.processed:
            self._flag(
                f"{type(event).__name__} re-enqueued after its callbacks "
                f"already ran (t={self.now!r})"
            )
        super()._enqueue(event, delay)

    def step(self) -> None:
        if not self._heap:
            raise SimulationError("no events to step")
        time, seq, event = self._heap[0]
        if event.processed:
            self._flag(
                f"{type(event).__name__} fired twice (t={time!r}, seq={seq})"
            )
        label = getattr(event, "name", None) or type(event).__name__
        self.tracer.instant(
            label, track=self.KERNEL_TRACK, ts=time, seq=seq
        )
        super().step()
        if self._heap and self._heap[0][0] == time:
            self.same_time_ties += 1

    def _flag(self, message: str) -> None:
        self._double_triggers.append(message)
        if self.strict:
            raise SanitizerError(message)

    # -- reporting --------------------------------------------------------
    @property
    def trace(self) -> list[str]:
        """The deterministic event trace, derived from the tracer's
        instant stream (``time #seq label`` per fired event).

        Kept as a derived view so the trace format stays byte-stable
        while the underlying records feed the same exporters as every
        other span/instant.
        """
        return [
            f"{instant.ts!r} #{instant.args['seq']} {instant.name}"
            for instant in self.tracer.instants
            if instant.track == self.KERNEL_TRACK
        ]

    def trace_text(self) -> str:
        """The event trace as one newline-joined string (replay tests
        compare this byte-for-byte across same-seed runs)."""
        return "\n".join(self.trace)

    def sanitizer_report(self) -> SanitizerReport:
        """Findings as of now; call after the run has finished."""
        report = SanitizerReport(
            events_fired=len(self.trace),
            same_time_ties=self.same_time_ties,
            double_triggers=list(self._double_triggers),
        )
        report.pending_processes = [
            f"process {proc.name!r} never finished: it is still waiting "
            "on an event nobody triggered"
            for proc in self._processes
            if proc.is_alive
        ]
        for queue in self._queues:
            report.queue_leaks.extend(self._queue_leaks(queue))
        return report

    def _queue_leaks(self, queue) -> list[str]:
        leaks = []
        for message_id in sorted(queue._inflight):
            message = queue._messages.get(message_id)
            if message is None:
                # delete() retires the receipt; an orphan entry means the
                # bookkeeping itself broke.
                leaks.append(
                    f"queue {queue.name!r}: in-flight entry for deleted "
                    f"message {message_id} was never retired"
                )
            elif message.visible_at <= self.now:
                leaks.append(
                    f"queue {queue.name!r}: message {message_id} receipt "
                    f"{queue._inflight[message_id]} went stale at "
                    f"t={message.visible_at!r} but the reappearance was "
                    "never accounted (at-least-once delivery broken)"
                )
        return leaks
