"""Runtime thread sanitizer: lock-order and write-race detection.

The static RPR1xx rules reason about the threaded runtimes from the
outside; :class:`ThreadSanitizer` watches them from the inside.  It is
the threads sibling of :class:`~repro.lint.sanitizer.SanitizedEnvironment`
(which instruments the *simulated* event loop) and is opt-in the same
way: ``REPRO_SANIZE`` is never consulted on the hot path unless the
runtime asked for monitored structures.

Two detectors, both classic:

* **lock-order inversions** — every :class:`MonitoredLock` acquisition
  records held-lock → acquired-lock edges in an acquisition-order
  graph; acquiring ``B`` while holding ``A`` after the graph already
  shows a ``B`` →* ``A`` path is a potential deadlock, flagged at the
  acquire site.
* **unsynchronized cross-thread writes** — an Eraser-style *write*
  lockset per shared object: while a single thread writes, the object
  is in its exclusive phase; once a second thread writes, the lockset
  becomes the intersection of monitored locks held across all
  subsequent writes.  An empty lockset with two or more writer threads
  is a data race.  Reads are deliberately not tracked: the shipped
  runtimes read results from the driving thread *after* ``join()``,
  which is safe but would empty a read-write lockset.

Activation: install a sanitizer explicitly (the pytest plugin does,
per test), or set ``REPRO_SANITIZE=threads`` (or ``all``) and the
first :func:`active` call creates an ambient one.  Runtimes opt their
structures in via :func:`monitor_lock` / :func:`monitor`, which return
plain unwrapped objects whenever no sanitizer is active — zero
overhead in normal runs.

Findings are :class:`~repro.lint.rules.Violation` objects with runtime
codes ``RPR201`` (inversion) and ``RPR202`` (race), anchored at the
caller's source line, so they flow through the same
:mod:`repro.lint.report` formatting as static findings.
"""

from __future__ import annotations

import collections
import os
import re
import sys
import threading
from dataclasses import dataclass, field

from repro.lint.checker import LintResult
from repro.lint.rules import Violation

__all__ = [
    "LOCK_ORDER_CODE",
    "RACE_CODE",
    "MonitoredLock",
    "ThreadSanitizer",
    "ThreadSanReport",
    "active",
    "install",
    "monitor",
    "monitor_lock",
    "sanitize_tokens",
    "uninstall",
]

LOCK_ORDER_CODE = "RPR201"
RACE_CODE = "RPR202"

_THIS_FILE = __file__


def sanitize_tokens(value: str | None) -> set[str]:
    """Parse ``REPRO_SANITIZE`` into lowercase tokens.

    The variable grew from a boolean into a token list: ``1``/``true``/
    ``sim`` enable the DES sanitizer, ``threads`` enables this one,
    ``all`` enables both; tokens are comma- or space-separated.
    """
    if not value:
        return set()
    return {t for t in re.split(r"[,\s]+", value.strip().lower()) if t}


def _call_site() -> tuple[str, int]:
    """(path, line) of the nearest caller outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == _THIS_FILE:
        frame = frame.f_back
    if frame is None:
        return "<unknown>", 0
    return frame.f_code.co_filename, frame.f_lineno


@dataclass
class ThreadSanReport:
    """Post-run findings.  ``issues`` is empty for a healthy run."""

    lock_inversions: list[Violation] = field(default_factory=list)
    races: list[Violation] = field(default_factory=list)
    locks_tracked: int = 0
    objects_tracked: int = 0
    writes_observed: int = 0

    @property
    def violations(self) -> list[Violation]:
        return sorted(self.lock_inversions + self.races)

    @property
    def issues(self) -> list[str]:
        return [v.format() for v in self.violations]

    def to_lint_result(self) -> LintResult:
        """Adapt to the static linter's result type so the standard
        formatters (``format_human`` / ``format_json``) apply."""
        return LintResult(violations=self.violations, files_checked=0)

    def summary(self) -> str:
        lines = [
            f"locks tracked: {self.locks_tracked}",
            f"shared objects tracked: {self.objects_tracked}",
            f"writes observed: {self.writes_observed}",
            f"lock-order inversions: {len(self.lock_inversions)}",
            f"unsynchronized cross-thread writes: {len(self.races)}",
        ]
        lines.extend(f"  - {issue}" for issue in self.issues)
        return "\n".join(lines)


class _ObjectState:
    """Eraser-style write-lockset state for one shared object."""

    __slots__ = ("owner", "shared", "lockset", "reported")

    def __init__(self) -> None:
        self.owner: int | None = None
        self.shared = False
        self.lockset: frozenset[str] | None = None
        self.reported = False


class ThreadSanitizer:
    """Collects lock-order and race findings from monitored objects."""

    def __init__(self) -> None:
        # Guards the graphs below; a plain lock, itself unmonitored.
        self._internal = threading.Lock()
        self._held = threading.local()  # per-thread stack of lock keys
        #: acquisition-order edges: lock key -> keys acquired under it.
        self._order: dict[str, set[str]] = collections.defaultdict(set)
        self._objects: dict[str, _ObjectState] = {}
        self._lock_serial = 0
        self._lock_names: dict[str, str] = {}  # key -> display name
        self._report = ThreadSanReport()

    # -- lock bookkeeping -------------------------------------------------
    def _next_lock_key(self, name: str) -> str:
        with self._internal:
            self._lock_serial += 1
            self._report.locks_tracked += 1
            key = f"{name}#{self._lock_serial}"
            self._lock_names[key] = name
            return key

    def _held_stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def _path_exists(self, src: str, dst: str) -> bool:
        """Reachability in the acquisition-order graph (caller holds
        ``_internal``)."""
        seen = {src}
        queue = [src]
        while queue:
            node = queue.pop()
            if node == dst:
                return True
            for nxt in self._order.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def _on_acquired(self, key: str, name: str) -> None:
        stack = self._held_stack()
        if stack:
            path, line = _call_site()
            with self._internal:
                for held in stack:
                    if held == key:
                        continue  # re-entrant acquire of the same lock
                    if self._path_exists(key, held):
                        held_name = self._lock_names.get(held, held)
                        self._report.lock_inversions.append(
                            Violation(
                                path=path,
                                line=line,
                                col=0,
                                code=LOCK_ORDER_CODE,
                                message=(
                                    f"lock-order inversion: acquired "
                                    f"{name!r} while holding "
                                    f"{held_name!r}, but the opposite "
                                    f"order was observed earlier "
                                    f"(potential deadlock)"
                                ),
                            )
                        )
                    self._order[held].add(key)
        stack.append(key)

    def _on_released(self, key: str) -> None:
        stack = self._held_stack()
        # Locks are normally released LIFO; tolerate out-of-order.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == key:
                del stack[index]
                break

    # -- write bookkeeping ------------------------------------------------
    def register_object(self, name: str) -> str:
        """Unique key for one monitored container instance.

        Identity is per instance, not per name: two queues may each
        name their dict ``LocalQueue._bodies`` without sharing race
        state (their writers hold *different* lock instances)."""
        with self._internal:
            self._lock_serial += 1
            self._report.objects_tracked += 1
            self._objects[f"{name}#{self._lock_serial}"] = _ObjectState()
            return f"{name}#{self._lock_serial}"

    def on_write(self, object_key: str, display_name: str) -> None:
        """Record a mutation of a monitored shared object."""
        thread_id = threading.get_ident()
        held = frozenset(self._held_stack())
        path, line = _call_site()
        with self._internal:
            self._report.writes_observed += 1
            state = self._objects.get(object_key)
            if state is None:
                state = _ObjectState()
                self._objects[object_key] = state
                self._report.objects_tracked += 1
            if state.owner is None:
                state.owner = thread_id
            if thread_id == state.owner and not state.shared:
                return  # exclusive phase: single-threaded so far
            if not state.shared:
                # Second thread: begin intersecting locksets from here;
                # the exclusive phase (e.g. unlocked setup on the main
                # thread before workers start) is deliberately amnestied.
                state.shared = True
                state.lockset = held
            else:
                assert state.lockset is not None
                state.lockset &= held
            if not state.lockset and not state.reported:
                state.reported = True
                self._report.races.append(
                    Violation(
                        path=path,
                        line=line,
                        col=0,
                        code=RACE_CODE,
                        message=(
                            f"unsynchronized cross-thread write to "
                            f"{display_name!r}: no common lock held "
                            f"across writer threads"
                        ),
                    )
                )

    # -- reporting --------------------------------------------------------
    def report(self) -> ThreadSanReport:
        with self._internal:
            return ThreadSanReport(
                lock_inversions=list(self._report.lock_inversions),
                races=list(self._report.races),
                locks_tracked=self._report.locks_tracked,
                objects_tracked=self._report.objects_tracked,
                writes_observed=self._report.writes_observed,
            )


class MonitoredLock:
    """A ``threading.Lock`` that reports acquisitions to a sanitizer."""

    def __init__(self, sanitizer: ThreadSanitizer, name: str):
        self._lock = threading.Lock()
        self._san = sanitizer
        self.name = name
        self._key = sanitizer._next_lock_key(name)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._san._on_acquired(self._key, self.name)
        return acquired

    def release(self) -> None:
        self._san._on_released(self._key)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def _monitored_container(base, mutators):
    """Build a ``base`` subclass whose mutators report to the sanitizer."""

    def make_method(op_name):
        base_op = getattr(base, op_name)

        def method(self, *args, **kwargs):
            self._san.on_write(self._key, self._name)
            return base_op(self, *args, **kwargs)

        method.__name__ = op_name
        return method

    namespace = {op: make_method(op) for op in mutators}

    def __init__(self, san, name, *args, **kwargs):  # noqa: N807
        base.__init__(self, *args, **kwargs)
        self._san = san
        self._name = name
        self._key = san.register_object(name)

    namespace["__init__"] = __init__
    namespace["__reduce__"] = lambda self: (base, (base(self),))
    return type(f"Monitored{base.__name__.capitalize()}", (base,), namespace)


MonitoredDict = _monitored_container(
    dict,
    (
        "__setitem__",
        "__delitem__",
        "clear",
        "pop",
        "popitem",
        "setdefault",
        "update",
    ),
)
MonitoredList = _monitored_container(
    list,
    (
        "__setitem__",
        "__delitem__",
        "append",
        "clear",
        "extend",
        "insert",
        "pop",
        "remove",
        "sort",
    ),
)
MonitoredSet = _monitored_container(
    set,
    ("add", "clear", "discard", "pop", "remove", "update",
     "difference_update", "intersection_update", "symmetric_difference_update"),
)
MonitoredDeque = _monitored_container(
    collections.deque,
    (
        "append",
        "appendleft",
        "clear",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "remove",
        "rotate",
    ),
)

_WRAPPERS = {
    dict: MonitoredDict,
    list: MonitoredList,
    set: MonitoredSet,
    collections.deque: MonitoredDeque,
}


# -- activation -----------------------------------------------------------
_active: ThreadSanitizer | None = None
_active_guard = threading.Lock()


def install(sanitizer: ThreadSanitizer) -> ThreadSanitizer:
    """Make ``sanitizer`` the process-wide active sanitizer."""
    global _active
    with _active_guard:
        _active = sanitizer
    return sanitizer


def uninstall() -> None:
    global _active
    with _active_guard:
        _active = None


def active() -> ThreadSanitizer | None:
    """The active sanitizer, creating an ambient one if the environment
    asks for thread sanitizing (``REPRO_SANITIZE=threads`` / ``all``)."""
    global _active
    if _active is not None:
        return _active
    tokens = sanitize_tokens(os.environ.get("REPRO_SANITIZE"))
    if tokens & {"threads", "all"}:
        with _active_guard:
            if _active is None:
                _active = ThreadSanitizer()
        return _active
    return None


def monitor_lock(name: str):
    """A lock for runtime shared state: monitored when sanitizing,
    otherwise a plain ``threading.Lock`` (zero overhead)."""
    sanitizer = active()
    if sanitizer is None:
        return threading.Lock()
    return MonitoredLock(sanitizer, name)


def monitor(obj, name: str):
    """Wrap a fresh container for write tracking when sanitizing;
    returns ``obj`` unchanged otherwise.  Supported: dict, list, set,
    deque (exact types only — subclasses are returned unwrapped)."""
    sanitizer = active()
    if sanitizer is None:
        return obj
    wrapper = _WRAPPERS.get(type(obj))
    if wrapper is None:
        return obj
    # Seed via the *base* mutators so initial contents don't count as
    # monitored writes.
    wrapped = wrapper(sanitizer, name)
    if isinstance(obj, dict):
        dict.update(wrapped, obj)
    elif isinstance(obj, list):
        list.extend(wrapped, obj)
    elif isinstance(obj, set):
        set.update(wrapped, obj)
    else:
        collections.deque.extend(wrapped, obj)
    return wrapped
