"""repro.obs — unified tracing + metrics for every backend.

Opt in around any run::

    from repro.obs import observe, write_chrome_trace

    with observe(label="classiccloud") as obs:
        result = framework.run(app, inputs)
    write_chrome_trace("out.json", obs)

Everything defaults to null objects (:data:`NULL_TRACER`,
:data:`NULL_METRICS`), so code instrumented with this package costs an
empty method call per event when nobody is observing.
"""

from repro.obs.context import NULL_OBSERVABILITY, Observability, current, observe
from repro.obs.export import (
    chrome_trace,
    phase_fractions,
    summarize_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, Instant, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBSERVABILITY",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "Observability",
    "Span",
    "Tracer",
    "chrome_trace",
    "current",
    "observe",
    "phase_fractions",
    "summarize_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
