"""repro.obs — unified tracing + metrics for every backend.

Opt in around any run::

    from repro.obs import observe, write_chrome_trace

    with observe(label="classiccloud") as obs:
        result = framework.run(app, inputs)
    write_chrome_trace("out.json", obs)

Everything defaults to null objects (:data:`NULL_TRACER`,
:data:`NULL_METRICS`, :data:`NULL_TIMELINE`), so code instrumented with
this package costs an empty method call per event when nobody is
observing.  Parallel sweeps capture inside each worker process and
merge on the way out (see :mod:`repro.obs.context` and
:mod:`repro.obs.export`); :mod:`repro.obs.report` renders the merged
story as a self-contained HTML report.
"""

from repro.obs.context import (
    NULL_OBSERVABILITY,
    Observability,
    WorkerCapture,
    current,
    observe,
    worker_payload,
)
from repro.obs.export import (
    chrome_trace,
    phase_fractions,
    phase_fractions_by_point,
    summarize_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.report import bench_compare, format_bench_compare, render_report, write_report
from repro.obs.timeline import NULL_TIMELINE, NullTimeline, Timeline, series_from_trace
from repro.obs.tracer import NULL_TRACER, Instant, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_OBSERVABILITY",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTimeline",
    "NullTracer",
    "Observability",
    "Span",
    "Timeline",
    "Tracer",
    "WorkerCapture",
    "bench_compare",
    "chrome_trace",
    "current",
    "format_bench_compare",
    "observe",
    "phase_fractions",
    "phase_fractions_by_point",
    "render_report",
    "series_from_trace",
    "summarize_chrome_trace",
    "validate_chrome_trace",
    "worker_payload",
    "write_chrome_trace",
    "write_report",
]
