"""The ambient observability context: one tracer + registry per run.

Instrumented code never receives a tracer through its constructor —
frozen configs stay frozen and picklable.  Instead it asks for the
*current* :class:`Observability` bundle at run start::

    from repro.obs import current

    class _SimRun:
        def __init__(self, ...):
            self.obs = current()  # null objects unless someone opted in

and callers opt in for the duration of one run::

    with observe() as obs:
        result = backend.run(app, tasks)
    write_chrome_trace("out.json", obs)

The context is **thread-local** at the point of lookup: a run grabs its
bundle once on the driving thread and closes over it, so worker threads
it spawns publish into the same bundle.  Sweep worker *processes* start
fresh — when the parent's bundle is live, ``_run_chunk`` installs a
private bundle per point, serializes it with :func:`worker_payload`,
and the parent folds it back in with :meth:`Observability.adopt_worker`
so the exported trace tells the whole multi-process story.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.timeline import NULL_TIMELINE, Timeline
from repro.obs.tracer import NULL_TRACER, Instant, Span, Tracer

__all__ = [
    "Observability",
    "WorkerCapture",
    "current",
    "observe",
    "worker_payload",
]


@dataclass
class WorkerCapture:
    """One worker process's serialized capture, adopted by the parent.

    ``os_pid`` is the worker's real OS pid; the exporter assigns it a
    synthetic Chrome trace pid (one per process × time domain).  All
    fields are plain data — this is exactly what crossed the pickle
    boundary.
    """

    os_pid: int
    label: str
    spans: list[Span] = field(default_factory=list)
    instants: list[Instant] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    timeline: dict = field(default_factory=dict)


@dataclass
class Observability:
    """One run's instrumentation bundle."""

    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)
    timeline: Timeline = field(default_factory=lambda: NULL_TIMELINE)
    workers: list[WorkerCapture] = field(default_factory=list)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @classmethod
    def make(cls, label: str = "") -> "Observability":
        """A live bundle: real tracer + real registry + real timeline."""
        return cls(
            tracer=Tracer(label=label),
            metrics=MetricsRegistry(),
            timeline=Timeline(),
        )

    def adopt_worker(self, payload: dict) -> "WorkerCapture | None":
        """Fold a :func:`worker_payload` dict back into this bundle.

        The capture is kept whole (the exporter needs per-process
        grouping) and the worker's metrics are merged into the parent
        registry so pool/cache/sim counters aggregate across processes.
        No-op on the null bundle.
        """
        if not self.enabled:
            return None
        capture = WorkerCapture(
            os_pid=int(payload.get("os_pid", 0)),
            label=str(payload.get("label", "")),
            spans=list(payload.get("spans", ())),
            instants=list(payload.get("instants", ())),
            metrics=dict(payload.get("metrics", {})),
            timeline=dict(payload.get("timeline", {})),
        )
        self.workers.append(capture)
        self.metrics.merge(capture.metrics)
        return capture


def worker_payload(obs: Observability, label: str = "") -> dict:
    """Serialize a worker-side bundle into a picklable plain-data dict.

    Shipped back with each chunk result; the parent re-hydrates it via
    :meth:`Observability.adopt_worker`.
    """
    spans, instants = obs.tracer.snapshot()
    return {
        "os_pid": os.getpid(),
        "label": label or obs.tracer.label,
        "spans": spans,
        "instants": instants,
        "metrics": obs.metrics.snapshot(),
        "timeline": obs.timeline.snapshot(),
    }


#: Shared null bundle — what current() returns outside observe().
NULL_OBSERVABILITY = Observability()

_state = threading.local()


def current() -> Observability:
    """The innermost active bundle, or the shared null bundle."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return NULL_OBSERVABILITY
    return stack[-1]


@contextmanager
def observe(obs: "Observability | None" = None, label: str = ""):
    """Install ``obs`` (or a fresh live bundle) as the current context."""
    if obs is None:
        obs = Observability.make(label=label)
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(obs)
    try:
        yield obs
    finally:
        stack.pop()
