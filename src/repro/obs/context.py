"""The ambient observability context: one tracer + registry per run.

Instrumented code never receives a tracer through its constructor —
frozen configs stay frozen and picklable.  Instead it asks for the
*current* :class:`Observability` bundle at run start::

    from repro.obs import current

    class _SimRun:
        def __init__(self, ...):
            self.obs = current()  # null objects unless someone opted in

and callers opt in for the duration of one run::

    with observe() as obs:
        result = backend.run(app, tasks)
    write_chrome_trace("out.json", obs)

The context is **thread-local** at the point of lookup: a run grabs its
bundle once on the driving thread and closes over it, so worker threads
it spawns publish into the same bundle.  Sweep worker *processes* start
fresh and see the null bundle — traced runs go inline by design.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["Observability", "current", "observe"]


@dataclass
class Observability:
    """One run's instrumentation bundle."""

    tracer: Tracer = field(default_factory=lambda: NULL_TRACER)
    metrics: MetricsRegistry = field(default_factory=lambda: NULL_METRICS)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    @classmethod
    def make(cls, label: str = "") -> "Observability":
        """A live bundle: real tracer + real registry."""
        return cls(tracer=Tracer(label=label), metrics=MetricsRegistry())


#: Shared null bundle — what current() returns outside observe().
NULL_OBSERVABILITY = Observability()

_state = threading.local()


def current() -> Observability:
    """The innermost active bundle, or the shared null bundle."""
    stack = getattr(_state, "stack", None)
    if not stack:
        return NULL_OBSERVABILITY
    return stack[-1]


@contextmanager
def observe(obs: "Observability | None" = None, label: str = ""):
    """Install ``obs`` (or a fresh live bundle) as the current context."""
    if obs is None:
        obs = Observability.make(label=label)
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = _state.stack = []
    stack.append(obs)
    try:
        yield obs
    finally:
        stack.pop()
