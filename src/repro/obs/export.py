"""Exporters: Chrome ``trace_event`` JSON, flat metrics JSON, text summary.

The Chrome format is the `trace_event` JSON-object form — load the file
in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans become
complete (``"ph": "X"``) events with microsecond timestamps; instants
become ``"ph": "i"`` events; tracks map to thread ids with
``thread_name`` metadata, and each time domain (simulated seconds vs
host wall clock) gets its own process id so the two timelines never
interleave on one row.

:func:`validate_chrome_trace` checks the schema (CI runs it on the
traced smoke sweep) and :func:`summarize_chrome_trace` renders the
paper-style per-phase breakdown from an exported file, so the summary
seen at export time and the one recovered from disk are the same code
path.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.context import Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace",
    "phase_fractions",
    "summarize_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: pid assignment per time domain (Chrome groups rows by pid).
_DOMAIN_PIDS = {"sim": 1, "wall": 2}
_DOMAIN_NAMES = {"sim": "simulated time", "wall": "wall time"}

#: The span names making up the paper's phase decomposition.
TASK_PHASES = ("task.queue_wait", "task.download", "task.compute", "task.upload")


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace(
    tracer: Tracer, metrics: "MetricsRegistry | None" = None
) -> dict:
    """Render a tracer (and optionally a registry) as a Chrome trace."""
    events: list[dict] = []
    tids: dict[tuple[str, str], int] = {}

    def tid_for(domain: str, track: str) -> int:
        key = (domain, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": _DOMAIN_PIDS.get(domain, 0),
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    for domain, pid in sorted(_DOMAIN_PIDS.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _DOMAIN_NAMES[domain]},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": _DOMAIN_PIDS.get(span.domain, 0),
                "tid": tid_for(span.domain, span.track),
                "args": dict(span.args),
            }
        )
    for instant in tracer.instants:
        events.append(
            {
                "name": instant.name,
                "cat": _category(instant.name),
                "ph": "i",
                "s": "t",  # thread-scoped
                "ts": instant.ts * 1e6,
                "pid": _DOMAIN_PIDS.get(instant.domain, 0),
                "tid": tid_for(instant.domain, instant.track),
                "args": dict(instant.args),
            }
        )
    document: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-trace-v1",
            "label": tracer.label,
        },
    }
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.to_dict()
    return document


def write_chrome_trace(
    path: "str | Path",
    obs: "Observability | Tracer",
    metrics: "MetricsRegistry | None" = None,
) -> dict:
    """Write the trace JSON to ``path``; returns the document."""
    if isinstance(obs, Observability):
        tracer, metrics = obs.tracer, obs.metrics
    else:
        tracer = obs
    document = chrome_trace(tracer, metrics)
    Path(path).write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


def validate_chrome_trace(data: object) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be a JSON object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if phase not in ("X", "i", "M", "C", "B", "E"):
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where}: complete event missing numeric 'dur'")
            elif dur < 0:
                errors.append(f"{where}: negative duration {dur}")
    return errors


def _span_events(data: dict) -> list[dict]:
    return [
        event
        for event in data.get("traceEvents", [])
        if event.get("ph") == "X"
    ]


def phase_fractions(data: dict) -> dict[str, float]:
    """Fractions of total per-task time per phase, from an exported
    trace — the paper's ``phase_breakdown`` view, reconstructed from
    ``task.download`` / ``task.compute`` / ``task.upload`` spans."""
    totals = {"download": 0.0, "compute": 0.0, "upload": 0.0}
    for event in _span_events(data):
        name = event.get("name", "")
        phase = name.removeprefix("task.")
        if name.startswith("task.") and phase in totals:
            totals[phase] += float(event.get("dur", 0.0))
    grand = sum(totals.values())
    if grand <= 0:
        raise ValueError("trace has no task phase spans")
    return {phase: value / grand for phase, value in totals.items()}


def summarize_chrome_trace(data: dict) -> str:
    """Human text summary: span totals plus the phase breakdown."""
    spans = _span_events(data)
    totals: dict[str, tuple[int, float]] = {}
    for event in spans:
        name = event["name"]
        count, seconds = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, seconds + float(event.get("dur", 0.0)) / 1e6)
    lines = []
    label = data.get("otherData", {}).get("label")
    title = f"trace summary ({label})" if label else "trace summary"
    lines.append(title)
    lines.append(f"  span events: {len(spans)}")
    name_width = max((len(name) for name in totals), default=4)
    for name in sorted(totals):
        count, seconds = totals[name]
        lines.append(
            f"  {name.ljust(name_width)}  n={count:<6d} total={seconds:,.3f}s"
        )
    try:
        fractions = phase_fractions(data)
    except ValueError:
        fractions = None
    if fractions is not None:
        lines.append("phase breakdown (fractions of per-task time):")
        for phase, fraction in fractions.items():
            lines.append(f"  {phase:<8s} {100 * fraction:6.2f}%")
    metrics = data.get("otherData", {}).get("metrics") or {}
    if metrics:
        lines.append("metrics:")
        for name in sorted(metrics):
            lines.append(f"  {name} = {metrics[name]}")
    return "\n".join(lines)
