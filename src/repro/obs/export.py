"""Exporters: Chrome ``trace_event`` JSON, flat metrics JSON, text summary.

The Chrome format is the `trace_event` JSON-object form — load the file
in ``chrome://tracing`` or https://ui.perfetto.dev.  Spans become
complete (``"ph": "X"``) events with microsecond timestamps; instants
become ``"ph": "i"`` events; timeline samples become counter
(``"ph": "C"``) events; tracks map to thread ids with ``thread_name``
metadata, and each time domain (simulated seconds vs host wall clock)
gets its own process id so the two timelines never interleave on one
row.

Multi-process merging: a parallel sweep's worker processes each ship a
:class:`~repro.obs.context.WorkerCapture` back to the parent, and
:func:`chrome_trace` merges them into the same document — every worker
process × time domain gets its own synthetic pid (allocated from
``_WORKER_PID_BASE`` in first-seen order) with a ``process_name``
metadata event naming the worker's real OS pid, and every span is
tagged with the sweep point it belongs to (``args["point"]``) so
per-point phase totals survive the merge.

:func:`validate_chrome_trace` checks the schema (CI runs it on the
traced smoke sweep) and :func:`summarize_chrome_trace` renders the
paper-style per-phase breakdown from an exported file, so the summary
seen at export time and the one recovered from disk are the same code
path.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.context import Observability, WorkerCapture
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import Timeline
from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace",
    "phase_fractions",
    "phase_fractions_by_point",
    "summarize_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: pid assignment per time domain (Chrome groups rows by pid).
_DOMAIN_PIDS = {"sim": 1, "wall": 2}
_DOMAIN_NAMES = {"sim": "simulated time", "wall": "wall time"}

#: First synthetic pid handed to merged worker processes (one pid per
#: worker process × time domain, allocated in first-seen order).
_WORKER_PID_BASE = 10

#: The span names making up the paper's phase decomposition.
TASK_PHASES = ("task.queue_wait", "task.download", "task.compute", "task.upload")


def _category(name: str) -> str:
    return name.split(".", 1)[0]


def chrome_trace(
    tracer: Tracer,
    metrics: "MetricsRegistry | None" = None,
    *,
    timeline: "Timeline | None" = None,
    workers: Iterable[WorkerCapture] = (),
) -> dict:
    """Render a tracer (plus registry / timeline / worker captures) as
    one merged Chrome trace document."""
    events: list[dict] = []
    tids: dict[tuple[int, str], int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        return tid

    def emit_span(span, pid: int, track: str, extra_args: dict) -> None:
        events.append(
            {
                "name": span.name,
                "cat": _category(span.name),
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid_for(pid, track),
                "args": {**span.args, **extra_args},
            }
        )

    def emit_instant(instant, pid: int, track: str, extra_args: dict) -> None:
        events.append(
            {
                "name": instant.name,
                "cat": _category(instant.name),
                "ph": "i",
                "s": "t",  # thread-scoped
                "ts": instant.ts * 1e6,
                "pid": pid,
                "tid": tid_for(pid, track),
                "args": {**instant.args, **extra_args},
            }
        )

    def emit_counters(series_map: dict, pid: int) -> int:
        emitted = 0
        for series in sorted(series_map):
            for ts, value in series_map[series]:
                events.append(
                    {
                        "name": series,
                        "cat": "timeline",
                        "ph": "C",
                        "ts": ts * 1e6,
                        "pid": pid,
                        "tid": 0,
                        "args": {"value": value},
                    }
                )
                emitted += 1
        return emitted

    for domain, pid in sorted(_DOMAIN_PIDS.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _DOMAIN_NAMES[domain]},
            }
        )
    for span in tracer.spans:
        emit_span(span, _DOMAIN_PIDS.get(span.domain, 0), span.track, {})
    for instant in tracer.instants:
        emit_instant(
            instant, _DOMAIN_PIDS.get(instant.domain, 0), instant.track, {}
        )
    counter_events = 0
    if timeline is not None:
        counter_events += emit_counters(timeline.snapshot(), _DOMAIN_PIDS["sim"])

    # -- merged worker processes ------------------------------------------
    worker_pids: dict[tuple[int, str], int] = {}
    next_pid = _WORKER_PID_BASE
    worker_index: dict[int, dict] = {}

    def worker_pid(os_pid: int, domain: str) -> int:
        nonlocal next_pid
        key = (os_pid, domain)
        pid = worker_pids.get(key)
        if pid is None:
            pid = worker_pids[key] = next_pid
            next_pid += 1
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {
                        "name": f"worker {os_pid} "
                        f"({_DOMAIN_NAMES.get(domain, domain)})"
                    },
                }
            )
            worker_index[os_pid]["pids"][domain] = pid
        return pid

    for capture in workers:
        entry = worker_index.setdefault(
            capture.os_pid,
            {
                "os_pid": capture.os_pid,
                "pids": {},
                "points": [],
                "spans": 0,
                "instants": 0,
            },
        )
        if capture.label:
            entry["points"].append(capture.label)
        entry["spans"] += len(capture.spans)
        entry["instants"] += len(capture.instants)
        point_args = {"point": capture.label} if capture.label else {}
        # Prefix tracks with the point label: points in one worker
        # process each start at sim time zero, so sharing rows would
        # stack unrelated spans on top of each other.
        prefix = f"{capture.label} · " if capture.label else ""
        for span in capture.spans:
            pid = worker_pid(capture.os_pid, span.domain)
            emit_span(span, pid, prefix + span.track, point_args)
        for instant in capture.instants:
            pid = worker_pid(capture.os_pid, instant.domain)
            emit_instant(instant, pid, prefix + instant.track, point_args)
        if capture.timeline:
            pid = worker_pid(capture.os_pid, "sim")
            counter_events += emit_counters(
                {prefix + k: v for k, v in capture.timeline.items()}, pid
            )

    document: dict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro-trace-v1",
            "label": tracer.label,
        },
    }
    if worker_index:
        document["otherData"]["workers"] = [
            worker_index[os_pid] for os_pid in sorted(worker_index)
        ]
    if counter_events:
        document["otherData"]["counter_events"] = counter_events
    if metrics is not None:
        document["otherData"]["metrics"] = metrics.to_dict()
    return document


def write_chrome_trace(
    path: "str | Path",
    obs: "Observability | Tracer",
    metrics: "MetricsRegistry | None" = None,
) -> dict:
    """Write the trace JSON to ``path``; returns the document.

    Passing a full :class:`Observability` bundle exports its timeline
    and any adopted worker captures alongside the parent tracer.
    """
    timeline: "Timeline | None" = None
    workers: Iterable[WorkerCapture] = ()
    if isinstance(obs, Observability):
        tracer, metrics = obs.tracer, obs.metrics
        timeline, workers = obs.timeline, obs.workers
    else:
        tracer = obs
    document = chrome_trace(tracer, metrics, timeline=timeline, workers=workers)
    Path(path).write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return document


def validate_chrome_trace(data: object) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"top level must be a JSON object, got {type(data).__name__}"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing string 'name'")
        if phase not in ("X", "i", "M", "C", "B", "E"):
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: missing numeric 'ts'")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where}: complete event missing numeric 'dur'")
            elif dur < 0:
                errors.append(f"{where}: negative duration {dur}")
        if phase == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                errors.append(
                    f"{where}: counter event missing numeric args['value']"
                )
    return errors


def _span_events(data: dict) -> list[dict]:
    return [
        event
        for event in data.get("traceEvents", [])
        if event.get("ph") == "X"
    ]


def _phase_totals(events: Iterable[dict]) -> dict[str, float]:
    totals = {"download": 0.0, "compute": 0.0, "upload": 0.0}
    for event in events:
        name = event.get("name", "")
        phase = name.removeprefix("task.")
        if name.startswith("task.") and phase in totals:
            totals[phase] += float(event.get("dur", 0.0))
    return totals


def phase_fractions(data: dict) -> dict[str, float]:
    """Fractions of total per-task time per phase, from an exported
    trace — the paper's ``phase_breakdown`` view, reconstructed from
    ``task.download`` / ``task.compute`` / ``task.upload`` spans.

    Returns ``{}`` when the trace has no task phase spans (empty or
    metadata-only traces summarize cleanly instead of dividing by
    zero).
    """
    totals = _phase_totals(_span_events(data))
    grand = sum(totals.values())
    if grand <= 0:
        return {}
    return {phase: value / grand for phase, value in totals.items()}


def phase_fractions_by_point(data: dict) -> dict[str, dict[str, float]]:
    """Per-sweep-point phase fractions from a merged trace.

    Merged worker spans carry ``args["point"]`` (the sweep point
    label); spans without one group under ``""`` (the parent / an
    inline run).  Points whose task spans sum to zero are omitted.
    """
    by_point: dict[str, list[dict]] = {}
    for event in _span_events(data):
        point = str(event.get("args", {}).get("point", ""))
        by_point.setdefault(point, []).append(event)
    out: dict[str, dict[str, float]] = {}
    for point, events in sorted(by_point.items()):
        totals = _phase_totals(events)
        grand = sum(totals.values())
        if grand <= 0:
            continue
        out[point] = {phase: value / grand for phase, value in totals.items()}
    return out


def _format_metric(value: object) -> str:
    if isinstance(value, dict):  # histogram summary
        parts = [f"count={value.get('count')}", f"mean={value.get('mean')}"]
        for q in ("p50", "p95", "p99"):
            if value.get(q) is not None:
                parts.append(f"{q}={value[q]:.6g}")
        return "{" + ", ".join(parts) + "}"
    return str(value)


def summarize_chrome_trace(data: dict) -> str:
    """Human text summary: span totals plus the phase breakdown."""
    spans = _span_events(data)
    totals: dict[str, tuple[int, float]] = {}
    for event in spans:
        name = event["name"]
        count, seconds = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, seconds + float(event.get("dur", 0.0)) / 1e6)
    lines = []
    other = data.get("otherData", {}) if isinstance(data, dict) else {}
    label = other.get("label")
    title = f"trace summary ({label})" if label else "trace summary"
    lines.append(title)
    lines.append(f"  span events: {len(spans)}")
    workers = other.get("workers") or []
    if workers:
        pids = ", ".join(str(w.get("os_pid")) for w in workers)
        lines.append(f"  worker processes: {len(workers)} (os pids: {pids})")
    counter_events = other.get("counter_events")
    if counter_events:
        lines.append(f"  timeline counter events: {counter_events}")
    name_width = max((len(name) for name in totals), default=4)
    for name in sorted(totals):
        count, seconds = totals[name]
        lines.append(
            f"  {name.ljust(name_width)}  n={count:<6d} total={seconds:,.3f}s"
        )
    fractions = phase_fractions(data)
    if fractions:
        lines.append("phase breakdown (fractions of per-task time):")
        for phase, fraction in fractions.items():
            lines.append(f"  {phase:<8s} {100 * fraction:6.2f}%")
    metrics = other.get("metrics") or {}
    if metrics:
        lines.append("metrics:")
        for name in sorted(metrics):
            lines.append(f"  {name} = {_format_metric(metrics[name])}")
    return "\n".join(lines)
