"""Metrics: counters, gauges and histograms behind a registry.

A :class:`MetricsRegistry` is a flat name → instrument map that the
cloud services (queue depth, redeliveries, dead letters), the schedulers
(dispatch counts, speculative attempts), the sweep layer (cache
hits/misses) and the DES kernel (events scheduled) publish into.
Instruments are get-or-create, so publishers never need to know whether
anyone registered interest first.

The default registry everywhere is :data:`NULL_METRICS`: its
instruments are shared no-op singletons, so uninstrumented hot paths
pay one method call per would-be update.  Publishers that update inside
loops should fetch their instrument once (``self._m_x =
metrics.counter("x")``) and call ``inc``/``set`` on it.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, busy fraction)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


# Histogram percentile buckets grow geometrically by ~4% per bucket, so
# any reported quantile is within ±2% of a true sample value while the
# histogram itself stays O(1) per observe and O(distinct buckets) memory.
_BUCKET_GROWTH = 1.04
_LOG_GROWTH = math.log(_BUCKET_GROWTH)


def _bucket_key(value: float) -> tuple[int, int]:
    """Sortable bucket key: (sign, magnitude index); zero is (0, 0)."""
    if value == 0.0:
        return (0, 0)
    magnitude = int(math.floor(math.log(abs(value)) / _LOG_GROWTH))
    if value > 0.0:
        return (1, magnitude)
    return (-1, -magnitude)


def _bucket_midpoint(key: tuple[int, int]) -> float:
    """Geometric midpoint of a bucket, the quantile representative."""
    sign, magnitude = key
    if sign == 0:
        return 0.0
    return sign * math.exp((-magnitude if sign < 0 else magnitude + 0.5) * _LOG_GROWTH)


class Histogram:
    """Streaming summary: count / total / min / max plus log-bucketed
    percentiles (p50/p95/p99 within ~2% relative error; no samples kept).
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: dict[tuple[int, int], int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        key = _bucket_key(value)
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float | None:
        """Nearest-rank percentile from the log buckets (None if empty)."""
        if not self.count:
            return None
        rank = max(1, math.ceil(p / 100.0 * self.count))
        seen = 0
        for key in sorted(self.buckets):
            seen += self.buckets[key]
            if seen >= rank:
                return min(self.max, max(self.min, _bucket_midpoint(key)))
        return self.max

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (e.g. from a worker) into this one."""
        self.count += int(snapshot.get("count", 0))
        self.total += float(snapshot.get("total", 0.0))
        other_min = snapshot.get("min")
        other_max = snapshot.get("max")
        if other_min is not None and other_min < self.min:
            self.min = float(other_min)
        if other_max is not None and other_max > self.max:
            self.max = float(other_max)
        for key, n in snapshot.get("buckets", {}).items():
            key = tuple(key)
            self.buckets[key] = self.buckets.get(key, 0) + int(n)

    def snapshot(self) -> dict:
        """Picklable plain-data state, consumable by :meth:`merge`."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(self.buckets),
        }

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def to_dict(self) -> dict:
        """Flat, JSON-ready export (sorted names, stable shape)."""
        out: dict[str, object] = {}
        with self._lock:
            for name in sorted(self._counters):
                out[name] = self._counters[name].value
            for name in sorted(self._gauges):
                out[name] = self._gauges[name].value
            for name in sorted(self._histograms):
                out[name] = self._histograms[name].to_dict()
        return out

    def snapshot(self) -> dict:
        """Picklable plain-data state for shipping across processes."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "histograms": {
                    n: h.snapshot() for n, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a sweep worker) into this
        registry: counters add, gauges take the incoming value (last
        writer wins), histograms merge bucket-wise.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, state in snapshot.get("histograms", {}).items():
            self.histogram(name).merge(state)

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """The do-nothing default: hands out shared no-op instruments."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def to_dict(self) -> dict:
        return {}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, snapshot: dict) -> None:
        pass


NULL_METRICS = NullMetricsRegistry()
