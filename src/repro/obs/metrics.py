"""Metrics: counters, gauges and histograms behind a registry.

A :class:`MetricsRegistry` is a flat name → instrument map that the
cloud services (queue depth, redeliveries, dead letters), the schedulers
(dispatch counts, speculative attempts), the sweep layer (cache
hits/misses) and the DES kernel (events scheduled) publish into.
Instruments are get-or-create, so publishers never need to know whether
anyone registered interest first.

The default registry everywhere is :data:`NULL_METRICS`: its
instruments are shared no-op singletons, so uninstrumented hot paths
pay one method call per would-be update.  Publishers that update inside
loops should fetch their instrument once (``self._m_x =
metrics.counter("x")``) and call ``inc``/``set`` on it.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, busy fraction)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming summary: count / total / min / max (no samples kept)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Name-keyed instrument store with get-or-create access."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    def to_dict(self) -> dict:
        """Flat, JSON-ready export (sorted names, stable shape)."""
        out: dict[str, object] = {}
        with self._lock:
            for name in sorted(self._counters):
                out[name] = self._counters[name].value
            for name in sorted(self._gauges):
                out[name] = self._gauges[name].value
            for name in sorted(self._histograms):
                hist = self._histograms[name]
                out[name] = {
                    "count": hist.count,
                    "total": hist.total,
                    "min": hist.min if hist.count else None,
                    "max": hist.max if hist.count else None,
                    "mean": hist.mean,
                }
        return out

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters)
                + len(self._gauges)
                + len(self._histograms)
            )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry(MetricsRegistry):
    """The do-nothing default: hands out shared no-op instruments."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def to_dict(self) -> dict:
        return {}


NULL_METRICS = NullMetricsRegistry()
