"""`repro report`: self-contained HTML reports + bench delta tables.

Two consumers share this module:

* :func:`render_report` turns a (possibly multi-process) Chrome trace,
  an optional :class:`~repro.core.task.RunResult` JSON export, and the
  committed ``BENCH_*.json`` history into one **self-contained** HTML
  file — inline CSS and inline SVG only, no scripts, no external
  resources, so the artifact renders offline and archives losslessly.
  Sections: phase-fraction bars, a per-worker gantt reconstructed from
  the merged trace's ``task.*`` spans, pool/cache/queue stats from the
  embedded metrics, and sparklines for the timeline counter series.

* :func:`bench_compare` diffs two bench documents (kernel events/s are
  better *higher*; sweep / workload wall times are better *lower*) and
  flags deltas beyond a tolerance — ``repro bench --compare OLD NEW``
  prints it via :func:`format_bench_compare`, and the HTML report
  renders the same rows with regressions highlighted.
"""

from __future__ import annotations

import html as _html
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.report import format_table
from repro.obs.export import (
    phase_fractions,
    phase_fractions_by_point,
    summarize_chrome_trace,
)
from repro.obs.timeline import series_from_trace

__all__ = [
    "bench_compare",
    "format_bench_compare",
    "render_report",
    "write_report",
]

#: Phase palette (colorblind-safe): download / compute / upload / wait.
_PHASE_COLORS = {
    "download": "#4e79a7",
    "compute": "#59a14f",
    "upload": "#e15759",
    "queue_wait": "#bab0ac",
}

#: Cap on gantt rows so a 256-worker trace stays a readable report.
_MAX_GANTT_TRACKS = 40

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 60em; color: #1a1a1a; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #ddd; }
h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #ddd; padding: 0.25em 0.6em; text-align: left; }
th { background: #f4f4f4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.regression td { background: #fdecea; }
tr.improved td { background: #edf7ed; }
.legend span { display: inline-block; margin-right: 1.2em; }
.legend i { display: inline-block; width: 0.9em; height: 0.9em;
            margin-right: 0.35em; vertical-align: -0.1em; }
.note { color: #666; font-size: 0.9em; }
pre { background: #f7f7f7; padding: 0.8em; overflow-x: auto; }
"""


def _esc(value: object) -> str:
    return _html.escape(str(value), quote=True)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:,.4g}"
    return str(value)


# ---------------------------------------------------------------------------
# bench comparison
# ---------------------------------------------------------------------------

#: (section, field, direction) triples diffed by bench_compare.
_LOWER_BETTER_SWEEP = ("serial_s", "parallel_s", "cache_cold_s", "cache_warm_s")
_LOWER_BETTER_WORKLOAD = ("build_s", "attach_s")


def _compare_row(
    metric: str, old: float, new: float, higher_better: bool, tolerance: float
) -> dict:
    delta = (new - old) / old if old else 0.0
    status = "ok"
    worse = delta < -tolerance if higher_better else delta > tolerance
    better = delta > tolerance if higher_better else delta < -tolerance
    if worse:
        status = "regression"
    elif better:
        status = "improved"
    return {
        "metric": metric,
        "old": old,
        "new": new,
        "delta": delta,
        "higher_better": higher_better,
        "status": status,
    }


def bench_compare(old: dict, new: dict, tolerance: float = 0.10) -> list[dict]:
    """Diff two bench documents into comparison rows.

    Only metrics present in **both** documents are compared (the schema
    grew fields between BENCH generations).  Kernel throughput is
    better higher; sweep and workload wall times are better lower.
    ``status`` is ``"regression"`` / ``"improved"`` when the relative
    delta exceeds ``tolerance``, else ``"ok"``.
    """
    rows: list[dict] = []
    old_kernel = old.get("kernel", {})
    for shape, entry in sorted(new.get("kernel", {}).items()):
        base = old_kernel.get(shape)
        if not base:
            continue
        rows.append(
            _compare_row(
                f"kernel.{shape}.events_per_s",
                float(base["events_per_s"]),
                float(entry["events_per_s"]),
                higher_better=True,
                tolerance=tolerance,
            )
        )
    old_sweeps = old.get("sweeps", {})
    for app, entry in sorted(new.get("sweeps", {}).items()):
        base = old_sweeps.get(app)
        if not base:
            continue
        for field in _LOWER_BETTER_SWEEP:
            if field in base and field in entry:
                rows.append(
                    _compare_row(
                        f"sweep.{app}.{field}",
                        float(base[field]),
                        float(entry[field]),
                        higher_better=False,
                        tolerance=tolerance,
                    )
                )
    old_workloads = old.get("workloads", {})
    for app, entry in sorted(new.get("workloads", {}).items()):
        base = old_workloads.get(app)
        if not base:
            continue
        for field in _LOWER_BETTER_WORKLOAD:
            if field in base and field in entry:
                rows.append(
                    _compare_row(
                        f"workload.{app}.{field}",
                        float(base[field]),
                        float(entry[field]),
                        higher_better=False,
                        tolerance=tolerance,
                    )
                )
    return rows


def format_bench_compare(
    rows: Sequence[dict], old_name: str = "old", new_name: str = "new"
) -> str:
    """Plain-text delta table; regressions flagged in the last column."""
    flags = {"regression": "REGRESSION", "improved": "improved", "ok": ""}
    table_rows = [
        [
            row["metric"],
            _fmt(row["old"]),
            _fmt(row["new"]),
            f"{100 * row['delta']:+.1f}%",
            flags[row["status"]],
        ]
        for row in rows
    ]
    table = format_table(
        ["metric", old_name, new_name, "delta", ""],
        table_rows,
        title=f"bench comparison: {old_name} -> {new_name}",
    )
    n_reg = sum(1 for r in rows if r["status"] == "regression")
    tail = (
        f"{n_reg} regression(s) flagged"
        if n_reg
        else "no regressions beyond tolerance"
    )
    return f"{table}\n{tail}"


# ---------------------------------------------------------------------------
# HTML building blocks
# ---------------------------------------------------------------------------


def _phase_bar(fractions: dict[str, float], width: int = 480) -> str:
    """One horizontal stacked bar as inline SVG."""
    parts = []
    x = 0.0
    for phase in ("download", "compute", "upload"):
        frac = fractions.get(phase, 0.0)
        w = frac * width
        parts.append(
            f'<rect x="{x:.1f}" y="0" width="{w:.1f}" height="18" '
            f'fill="{_PHASE_COLORS[phase]}"><title>{_esc(phase)}: '
            f"{100 * frac:.1f}%</title></rect>"
        )
        x += w
    return (
        f'<svg width="{width}" height="18" role="img" '
        f'aria-label="phase fractions">{"".join(parts)}</svg>'
    )


def _phase_legend() -> str:
    spans = "".join(
        f'<span><i style="background:{color}"></i>{_esc(phase)}</span>'
        for phase, color in _PHASE_COLORS.items()
        if phase != "queue_wait"
    )
    return f'<div class="legend">{spans}</div>'


def _track_label(event: dict, names: dict) -> str:
    pid = event.get("pid", 0)
    tid = event.get("tid", 0)
    process = names.get(("process", pid, 0), f"pid {pid}")
    thread = names.get(("thread", pid, tid), f"tid {tid}")
    return f"{process} / {thread}"


def _gantt_svg(trace: dict) -> str:
    """Per-worker gantt from the merged trace's ``task.*`` spans.

    Each (pid, tid) pair is one row; rows are normalized to their own
    process's time origin (merged worker points each start at sim time
    zero) and scaled to the longest row.
    """
    names: dict = {}
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "M":
            continue
        kind = (
            "process" if event.get("name") == "process_name" else "thread"
        )
        key = (kind, event.get("pid", 0), event.get("tid", 0) if kind == "thread" else 0)
        names[key] = event.get("args", {}).get("name", "")
    spans_by_track: dict[tuple[int, int], list[dict]] = {}
    for event in trace.get("traceEvents", ()):
        if event.get("ph") != "X" or not str(event.get("name", "")).startswith(
            "task."
        ):
            continue
        key = (event.get("pid", 0), event.get("tid", 0))
        spans_by_track.setdefault(key, []).append(event)
    if not spans_by_track:
        return '<p class="note">no task spans in this trace.</p>'
    origin_by_pid: dict[int, float] = {}
    for (pid, _tid), events in spans_by_track.items():
        lo = min(float(e["ts"]) for e in events)
        origin_by_pid[pid] = min(origin_by_pid.get(pid, lo), lo)
    extent = 0.0
    for (pid, _tid), events in spans_by_track.items():
        hi = max(
            float(e["ts"]) + float(e.get("dur", 0.0)) - origin_by_pid[pid]
            for e in events
        )
        extent = max(extent, hi)
    extent = extent or 1.0
    tracks = sorted(spans_by_track)
    dropped = 0
    if len(tracks) > _MAX_GANTT_TRACKS:
        dropped = len(tracks) - _MAX_GANTT_TRACKS
        tracks = tracks[:_MAX_GANTT_TRACKS]
    row_h, gap, label_w, plot_w = 16, 4, 260, 520
    height = len(tracks) * (row_h + gap) + gap
    parts = [
        f'<svg width="{label_w + plot_w + 10}" height="{height}" '
        f'role="img" aria-label="per-worker gantt">'
    ]
    for row, key in enumerate(tracks):
        pid, _tid = key
        y = gap + row * (row_h + gap)
        sample = spans_by_track[key][0]
        label = _track_label(sample, names)
        parts.append(
            f'<text x="{label_w - 6}" y="{y + row_h - 4}" '
            f'text-anchor="end" font-size="11">{_esc(label[:44])}</text>'
        )
        for event in spans_by_track[key]:
            phase = str(event["name"]).removeprefix("task.")
            color = _PHASE_COLORS.get(phase, "#9b9b9b")
            x0 = (float(event["ts"]) - origin_by_pid[pid]) / extent * plot_w
            w = max(float(event.get("dur", 0.0)) / extent * plot_w, 0.5)
            dur_s = float(event.get("dur", 0.0)) / 1e6
            parts.append(
                f'<rect x="{label_w + x0:.2f}" y="{y}" width="{w:.2f}" '
                f'height="{row_h}" fill="{color}">'
                f"<title>{_esc(event['name'])}: {dur_s:.3f}s</title></rect>"
            )
    parts.append("</svg>")
    if dropped:
        parts.append(
            f'<p class="note">{dropped} more track(s) not shown '
            f"(first {_MAX_GANTT_TRACKS} rendered).</p>"
        )
    return "".join(parts)


def _sparkline(samples: Sequence[tuple[float, float]], width=360, height=48) -> str:
    xs = [s[0] for s in samples]
    ys = [s[1] for s in samples]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    points = " ".join(
        f"{(x - x_lo) / x_span * (width - 2) + 1:.1f},"
        f"{height - 1 - (y - y_lo) / y_span * (height - 2):.1f}"
        for x, y in samples
    )
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline points="{points}" fill="none" stroke="#4e79a7" '
        f'stroke-width="1.5"/></svg> '
        f'<span class="note">min {_fmt(y_lo)} · max {_fmt(y_hi)}</span>'
    )


def _metrics_table(metrics: dict) -> str:
    rows = []
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, dict):
            shown = ", ".join(
                f"{k}={_fmt(value[k])}"
                for k in ("count", "mean", "p50", "p95", "p99")
                if value.get(k) is not None
            )
        else:
            shown = _fmt(value)
        rows.append(
            f"<tr><td>{_esc(name)}</td><td class='num'>{_esc(shown)}</td></tr>"
        )
    return (
        "<table><tr><th>metric</th><th>value</th></tr>"
        + "".join(rows)
        + "</table>"
    )


def _bench_history_html(
    bench_history: Sequence[tuple[str, dict]], tolerance: float
) -> str:
    parts = []
    shapes: list[str] = []
    for _name, doc in bench_history:
        for shape in doc.get("kernel", {}):
            if shape not in shapes:
                shapes.append(shape)
    header = "".join(f"<th>{_esc(s)} ev/s</th>" for s in shapes)
    rows = []
    for name, doc in bench_history:
        cells = []
        for shape in shapes:
            entry = doc.get("kernel", {}).get(shape)
            cells.append(
                f"<td class='num'>{_fmt(float(entry['events_per_s'])) if entry else '—'}</td>"
            )
        rows.append(f"<tr><td>{_esc(name)}</td>{''.join(cells)}</tr>")
    parts.append(
        f"<table><tr><th>bench</th>{header}</tr>{''.join(rows)}</table>"
    )
    if len(bench_history) >= 2:
        (old_name, old_doc), (new_name, new_doc) = bench_history[-2:]
        compare = bench_compare(old_doc, new_doc, tolerance=tolerance)
        rows = []
        for row in compare:
            cls = row["status"] if row["status"] != "ok" else ""
            flag = {"regression": "REGRESSION", "improved": "improved"}.get(
                row["status"], ""
            )
            rows.append(
                f"<tr class='{cls}'><td>{_esc(row['metric'])}</td>"
                f"<td class='num'>{_fmt(row['old'])}</td>"
                f"<td class='num'>{_fmt(row['new'])}</td>"
                f"<td class='num'>{100 * row['delta']:+.1f}%</td>"
                f"<td>{flag}</td></tr>"
            )
        parts.append(
            f"<h3>delta: {_esc(old_name)} → {_esc(new_name)} "
            f"(tolerance ±{100 * tolerance:.0f}%)</h3>"
            "<table><tr><th>metric</th><th>old</th><th>new</th>"
            f"<th>delta</th><th></th></tr>{''.join(rows)}</table>"
        )
    return "".join(parts)


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------


def render_report(
    trace: dict,
    *,
    run: "dict | None" = None,
    bench_history: Iterable[tuple[str, dict]] = (),
    title: str = "repro report",
    tolerance: float = 0.10,
) -> str:
    """Render one self-contained HTML report (returns the HTML string)."""
    bench_history = list(bench_history)
    other = trace.get("otherData", {})
    sections: list[str] = []

    # -- overview ----------------------------------------------------------
    overview = [f"<p>trace label: <strong>{_esc(other.get('label') or '—')}</strong>"]
    workers = other.get("workers") or []
    if workers:
        pids = ", ".join(str(w.get("os_pid")) for w in workers)
        overview.append(
            f" · {len(workers)} worker process(es) merged (os pids: {pids})"
        )
    overview.append("</p>")
    sections.append("<h2>Overview</h2>" + "".join(overview))
    sections.append(
        "<details><summary>text summary</summary><pre>"
        + _esc(summarize_chrome_trace(trace))
        + "</pre></details>"
    )

    # -- phase fractions ---------------------------------------------------
    fractions = phase_fractions(trace)
    if fractions:
        rows = [
            "<h2>Phase fractions</h2>",
            _phase_legend(),
            "<p>overall</p>",
            _phase_bar(fractions),
        ]
        per_point = phase_fractions_by_point(trace)
        for point, point_fracs in per_point.items():
            if not point:
                continue
            rows.append(f"<p>{_esc(point)}</p>")
            rows.append(_phase_bar(point_fracs))
        sections.append("".join(rows))

    # -- gantt -------------------------------------------------------------
    sections.append("<h2>Per-worker gantt</h2>" + _gantt_svg(trace))

    # -- timeline sparklines ----------------------------------------------
    series = series_from_trace(trace)
    if series:
        rows = ["<h2>Timeline counters</h2>"]
        for name in sorted(series):
            samples = series[name]
            if not samples:
                continue
            rows.append(f"<p>{_esc(name)} ({len(samples)} samples)</p>")
            rows.append(_sparkline(samples))
        sections.append("".join(rows))

    # -- run result --------------------------------------------------------
    if run:
        rows = ["<h2>Run result</h2>"]
        extras = run.get("extras") or {}
        summary_rows = []
        for key in ("backend", "makespan_seconds", "n_tasks"):
            if key in run:
                summary_rows.append(
                    f"<tr><td>{_esc(key)}</td>"
                    f"<td class='num'>{_fmt(run[key])}</td></tr>"
                )
        for key in sorted(extras):
            value = extras[key]
            if isinstance(value, (int, float)):
                summary_rows.append(
                    f"<tr><td>extras.{_esc(key)}</td>"
                    f"<td class='num'>{_fmt(value)}</td></tr>"
                )
        rows.append(
            "<table><tr><th>field</th><th>value</th></tr>"
            + "".join(summary_rows)
            + "</table>"
        )
        sections.append("".join(rows))

    # -- metrics -----------------------------------------------------------
    metrics = other.get("metrics") or {}
    if metrics:
        sections.append("<h2>Pool, cache &amp; queue metrics</h2>")
        sections.append(_metrics_table(metrics))

    # -- bench history -----------------------------------------------------
    if bench_history:
        sections.append("<h2>Bench history</h2>")
        sections.append(_bench_history_html(bench_history, tolerance))

    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'>"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head>"
        f"<body><h1>{_esc(title)}</h1>\n{body}\n</body></html>\n"
    )


def write_report(
    path: "str | Path",
    trace: dict,
    *,
    run: "dict | None" = None,
    bench_history: Iterable[tuple[str, dict]] = (),
    title: str = "repro report",
    tolerance: float = 0.10,
) -> str:
    """Render and write the report; returns the HTML string."""
    html = render_report(
        trace,
        run=run,
        bench_history=bench_history,
        title=title,
        tolerance=tolerance,
    )
    Path(path).write_text(html, encoding="utf-8")
    return html
