"""Time-series sampling: named gauges sampled over simulated time.

Spans answer "what ran when"; a :class:`Timeline` answers "how big was
the backlog / how many workers were busy at time t".  Producers —
:class:`~repro.cloud.queue.MessageQueue` (depth), the classic-cloud
worker loop (busy workers, utilization), the Hadoop/DryadLINQ
schedulers (in-flight tasks) and :mod:`repro.autoscale` (fleet size,
backlog) — call :meth:`Timeline.sample` with the same ``env.now``
readings they already take for their metrics gauges, so every sample is
a (sim-seconds, value) pair.

Export surfaces:

* Chrome ``Counter`` ("C"-phase) events via
  :func:`repro.obs.export.chrome_trace` — each series renders as a
  stacked area track in ``chrome://tracing`` / Perfetto.
* CSV via :meth:`Timeline.to_csv` (``series,time_s,value`` rows) for
  spreadsheet / pandas post-processing.

The ambient default is :data:`NULL_TIMELINE`: sampling into it is a
constant-time no-op, mirroring ``NULL_TRACER`` / ``NULL_METRICS``.
"""

from __future__ import annotations

import threading

__all__ = ["NULL_TIMELINE", "NullTimeline", "Timeline", "series_from_trace"]


class Timeline:
    """Append-only store of (timestamp, value) samples per series name."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[str, list[tuple[float, float]]] = {}

    def sample(self, series: str, ts: float, value: float) -> None:
        """Record one sample; ``ts`` is simulated seconds (``env.now``)."""
        with self._lock:
            bucket = self._series.get(series)
            if bucket is None:
                bucket = self._series[series] = []
            bucket.append((float(ts), float(value)))

    def snapshot(self) -> dict[str, list[tuple[float, float]]]:
        """Picklable copy: series name → list of (ts, value) pairs."""
        with self._lock:
            return {name: list(samples) for name, samples in self._series.items()}

    def series(self, name: str) -> list[tuple[float, float]]:
        with self._lock:
            return list(self._series.get(name, ()))

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def to_csv(self) -> str:
        """``series,time_s,value`` rows, sorted by series then sample order."""
        lines = ["series,time_s,value"]
        snap = self.snapshot()
        for name in sorted(snap):
            for ts, value in snap[name]:
                lines.append(f"{name},{ts:.9g},{value:.9g}")
        return "\n".join(lines) + "\n"

    def __len__(self) -> int:
        with self._lock:
            return sum(len(s) for s in self._series.values())


class NullTimeline(Timeline):
    """The do-nothing default; sampling is a constant-time no-op."""

    enabled = False

    def sample(self, series: str, ts: float, value: float) -> None:
        pass


NULL_TIMELINE = NullTimeline()


def series_from_trace(data: dict) -> dict[str, list[tuple[float, float]]]:
    """Reconstruct timeline series from a Chrome trace's "C" events.

    Counter timestamps are stored in microseconds; this converts back to
    seconds, keyed ``"<series>"`` (parent) or ``"pid<pid>:<series>"``
    for counters attached to merged worker processes.
    """
    out: dict[str, list[tuple[float, float]]] = {}
    for event in data.get("traceEvents", ()):
        if event.get("ph") != "C":
            continue
        args = event.get("args", {})
        if "value" not in args:
            continue
        pid = event.get("pid", 1)
        name = event["name"] if pid == 1 else f"pid{pid}:{event['name']}"
        out.setdefault(name, []).append(
            (float(event["ts"]) / 1e6, float(args["value"]))
        )
    return out
