"""Low-overhead tracing: nestable spans and instant events.

A :class:`Tracer` collects :class:`Span` (an interval on a named track)
and :class:`Instant` (a point event) records.  Two time domains coexist
in one trace:

* ``"sim"`` — timestamps are **simulated seconds** read from
  ``Environment.now``.  Simulation code records these with explicit
  times via :meth:`Tracer.add` / :meth:`Tracer.instant`, using the very
  same ``env.now`` readings it already takes for its
  :class:`~repro.core.task.TaskRecord` bookkeeping, so span durations
  agree exactly with the post-run analysis.
* ``"wall"`` — timestamps are **wall-clock seconds** since the tracer
  was created.  The threaded local runtimes use this domain, and the
  :meth:`Tracer.span` context manager reads the tracer's wall clock
  automatically (handy for host-side work like cache lookups).

The default tracer everywhere is :data:`NULL_TRACER`, a null object
whose every method is a constant-time no-op — uninstrumented runs pay
one attribute lookup and an empty call per would-be span, nothing more.
Real tracers are installed for one run at a time through
:func:`repro.obs.context.observe`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Instant", "NULL_TRACER", "NullTracer", "Span", "Tracer"]

#: Known time domains; export maps each to its own Chrome trace pid.
DOMAINS = ("sim", "wall")


@dataclass(frozen=True)
class Span:
    """One completed interval on a track (worker / process / scope)."""

    name: str  # e.g. "task.compute"
    track: str  # e.g. "worker-3" — becomes the Chrome trace tid
    start: float  # seconds (domain-relative)
    end: float
    domain: str = "sim"
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Instant:
    """One point event on a track."""

    name: str
    track: str
    ts: float
    domain: str = "sim"
    args: dict[str, Any] = field(default_factory=dict)


class _SpanHandle:
    """Context manager for a wall-domain span; records on exit."""

    __slots__ = ("_tracer", "_name", "_track", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, track: str, args: dict):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._start = self._tracer.wall_now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.add(
            self._name,
            track=self._track,
            start=self._start,
            end=self._tracer.wall_now(),
            domain="wall",
            **self._args,
        )

    def open(self) -> "_SpanHandle":
        """Explicit open for handles that must straddle a boundary a
        with-block cannot (pair with ``close()`` in a ``finally``)."""
        return self.__enter__()

    def close(self) -> None:
        self.__exit__(None, None, None)


class Tracer:
    """Collects spans and instants; thread-safe appends.

    ``label`` tags the trace (e.g. the backend name) and surfaces in the
    exported Chrome trace metadata.
    """

    enabled = True

    def __init__(self, label: str = ""):
        self.label = label
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._lock = threading.Lock()
        # Wall-domain origin: spans from threaded runtimes and context-
        # manager spans are relative to tracer creation.
        self._wall_origin = time.monotonic()

    def wall_now(self) -> float:
        """Wall-clock seconds since this tracer was created."""
        return time.monotonic() - self._wall_origin

    # -- recording --------------------------------------------------------
    def add(
        self,
        name: str,
        *,
        track: str,
        start: float,
        end: float,
        domain: str = "sim",
        **args: Any,
    ) -> None:
        """Record a completed span with explicit timestamps.

        Simulation code passes its own ``env.now`` readings; threaded
        runtimes pass wall-clock offsets with ``domain="wall"``.
        """
        span = Span(
            name=name, track=track, start=start, end=end,
            domain=domain, args=args,
        )
        with self._lock:
            self.spans.append(span)

    def span(self, name: str, *, track: str = "main", **args: Any):
        """Context manager recording a wall-domain span around a block.

        Simulation code must not use this form (the body would be timed
        in host seconds); it records with :meth:`add` and ``env.now``
        readings instead — lint rule RPR007 enforces this.
        """
        return _SpanHandle(self, name, track, args)

    def instant(
        self,
        name: str,
        *,
        track: str = "main",
        ts: float | None = None,
        domain: str = "sim",
        **args: Any,
    ) -> None:
        """Record a point event; ``ts=None`` reads the wall clock."""
        if ts is None:
            ts = self.wall_now()
            domain = "wall"
        event = Instant(name=name, track=track, ts=ts, domain=domain, args=args)
        with self._lock:
            self.instants.append(event)

    # -- views ------------------------------------------------------------
    def snapshot(self) -> tuple[list[Span], list[Instant]]:
        """Consistent copies of the recorded spans and instants.

        Both record types are frozen plain-data dataclasses, so the
        returned lists pickle cleanly — this is how sweep workers ship
        their capture back to the parent process.
        """
        with self._lock:
            return list(self.spans), list(self.instants)

    def totals(self, prefix: str = "") -> dict[str, float]:
        """Total seconds per span name (optionally name-prefix filtered)."""
        out: dict[str, float] = {}
        for span in self.spans:
            if prefix and not span.name.startswith(prefix):
                continue
            out[span.name] = out.get(span.name, 0.0) + span.duration
        return out

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)


class _NullSpanHandle:
    """Shared no-op context manager handed out by the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None

    def open(self):
        return self

    def close(self) -> None:
        return None


_NULL_SPAN_HANDLE = _NullSpanHandle()


class NullTracer:
    """The do-nothing default: every method is a constant-time no-op."""

    enabled = False
    label = ""
    spans: list[Span] = []  # always empty; never mutated
    instants: list[Instant] = []

    def wall_now(self) -> float:
        return 0.0

    def add(self, name, *, track, start, end, domain="sim", **args) -> None:
        pass

    def span(self, name, *, track="main", **args):
        return _NULL_SPAN_HANDLE

    def instant(self, name, *, track="main", ts=None, domain="sim", **args):
        pass

    def snapshot(self) -> tuple[list[Span], list[Instant]]:
        return [], []

    def totals(self, prefix: str = "") -> dict[str, float]:
        return {}

    def __len__(self) -> int:
        return 0


NULL_TRACER = NullTracer()
