"""repro.serve — the always-on multi-tenant job service simulator.

Converts the paper's batch Classic Cloud framework into a *serving*
system: seeded open-loop arrival streams per tenant
(:mod:`repro.serve.tenants`), typed admission control with quotas and
backpressure (:mod:`repro.serve.admission`), weighted deficit
round-robin fair sharing (:mod:`repro.serve.scheduler`), a polling
worker fleet with the full autoscale + spot-preemption story
(:mod:`repro.serve.service`), and the sustained-load cost-vs-latency
frontier study (:mod:`repro.serve.study`) behind ``python -m repro
serve``.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionOutcome,
    TenantAccount,
)
from repro.serve.scheduler import FairShareScheduler
from repro.serve.service import (
    JobService,
    ServeConfig,
    ServeResult,
    TenantStats,
    run_serve,
)
from repro.serve.study import (
    ServeStudyRow,
    default_tenants,
    frontier_rows,
    render_frontier,
    serialize_rows,
    serve_study,
)
from repro.serve.tenants import TenantSpec

__all__ = [
    "AdmissionController",
    "AdmissionOutcome",
    "FairShareScheduler",
    "JobService",
    "ServeConfig",
    "ServeResult",
    "ServeStudyRow",
    "TenantAccount",
    "TenantSpec",
    "TenantStats",
    "default_tenants",
    "frontier_rows",
    "render_frontier",
    "run_serve",
    "serialize_rows",
    "serve_study",
]
