"""Admission control: per-tenant quotas and queue-depth backpressure.

Every submitted job gets a *typed* outcome — admitted, shed on the
tenant's quota, or shed on global backlog — and every outcome is
counted.  Nothing is ever dropped silently: the accounting identity

    submitted == admitted + shed_quota + shed_backlog
    admitted  == completed + abandoned

is asserted when the service builds its result, so a bookkeeping bug
fails the run instead of skewing a frontier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.serve.tenants import TenantSpec

__all__ = ["AdmissionOutcome", "TenantAccount", "AdmissionController"]


class AdmissionOutcome(enum.Enum):
    """Where a submitted job went.  Every branch is counted."""

    ADMITTED = "admitted"
    SHED_QUOTA = "shed_quota"  # tenant exceeded its in-system quota
    SHED_BACKLOG = "shed_backlog"  # service-wide backlog cap reached


@dataclass
class TenantAccount:
    """One tenant's running totals.  All integers, all reconciled."""

    submitted: int = 0
    admitted: int = 0
    shed_quota: int = 0
    shed_backlog: int = 0
    completed: int = 0
    abandoned: int = 0  # admitted but unfinished when the run drained out
    duplicates: int = 0  # extra executions of already-completed jobs
    latencies: list = field(default_factory=list, repr=False)

    @property
    def in_system(self) -> int:
        """Admitted jobs not yet completed (or written off)."""
        return self.admitted - self.completed - self.abandoned

    @property
    def shed(self) -> int:
        return self.shed_quota + self.shed_backlog

    def check(self) -> None:
        """Assert the accounting identities (never silent drops)."""
        if self.submitted != self.admitted + self.shed_quota + self.shed_backlog:
            raise RuntimeError(
                f"admission accounting broken: submitted={self.submitted} "
                f"!= admitted={self.admitted} + shed_quota={self.shed_quota}"
                f" + shed_backlog={self.shed_backlog}"
            )
        if self.admitted != self.completed + self.abandoned:
            raise RuntimeError(
                f"completion accounting broken: admitted={self.admitted} "
                f"!= completed={self.completed} + "
                f"abandoned={self.abandoned}"
            )


class AdmissionController:
    """Decides, and counts, the fate of every submitted job.

    Two gates, checked in order:

    1. **tenant quota** — a tenant may not hold more than
       ``spec.quota`` jobs in the system (queued + dispatched +
       executing).  A greedy tenant sheds on its own quota long before
       it can push the service into backpressure.
    2. **global backlog** — the service caps total in-system jobs at
       ``max_backlog``; beyond it, *any* tenant's submission sheds.
    """

    def __init__(self, tenants: "tuple[TenantSpec, ...]", max_backlog: int):
        if max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        self.specs = {spec.name: spec for spec in tenants}
        self.max_backlog = max_backlog
        self.accounts: dict[str, TenantAccount] = {
            spec.name: TenantAccount() for spec in tenants
        }

    def total_in_system(self) -> int:
        return sum(a.in_system for a in self.accounts.values())

    def submit(self, tenant: str) -> AdmissionOutcome:
        """Record one submission and return its typed outcome.

        On ``ADMITTED`` the caller owns enqueueing the job; the
        controller has already counted it into ``in_system``.
        """
        spec = self.specs[tenant]
        account = self.accounts[tenant]
        account.submitted += 1
        if account.in_system >= spec.quota:
            account.shed_quota += 1
            return AdmissionOutcome.SHED_QUOTA
        if self.total_in_system() >= self.max_backlog:
            account.shed_backlog += 1
            return AdmissionOutcome.SHED_BACKLOG
        account.admitted += 1
        return AdmissionOutcome.ADMITTED

    def complete(self, tenant: str, latency_s: float) -> None:
        account = self.accounts[tenant]
        account.completed += 1
        account.latencies.append(latency_s)

    def duplicate(self, tenant: str) -> None:
        self.accounts[tenant].duplicates += 1

    def abandon_remaining(self) -> int:
        """Write off every in-system job (drain timeout / zero capacity).

        Returns the number of jobs written off.  After this the
        completion identity holds again: nothing is left dangling.
        """
        written_off = 0
        for account in self.accounts.values():
            leftover = account.in_system
            account.abandoned += leftover
            written_off += leftover
        return written_off

    def check(self) -> None:
        for account in self.accounts.values():
            account.check()
