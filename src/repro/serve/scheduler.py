"""Weighted deficit round robin over per-tenant job queues.

Admitted jobs wait in per-tenant FIFO queues inside the scheduler; a
single dispatch process walks the tenants in fixed declaration order,
credits each queue ``quantum * weight`` deficit per round, and sends
jobs (cost 1 each) into the ClassicCloud scheduling queue while deficit
and the dispatch window allow.  Deficit carries across rounds — a
light-weight tenant accumulates credit until it can send — which is
exactly the WDRR starvation guarantee: every backlogged tenant with a
positive weight dispatches within a bounded number of rounds, no matter
how skewed the weights are.

The *dispatch window* bounds work-in-progress at the cloud queue to a
small multiple of the current worker-slot count, so fair-share decisions
are made late, in the scheduler, rather than early in a deep FIFO — and
so autoscale backlog readings reflect jobs the fleet can actually start.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cloud.queue import MessageQueue
from repro.core.task import TaskSpec
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment
from repro.serve.tenants import TenantSpec

__all__ = ["FairShareScheduler"]


class FairShareScheduler:
    """One WDRR dispatcher feeding the worker fleet's message queue."""

    def __init__(
        self,
        env: Environment,
        tenants: "tuple[TenantSpec, ...]",
        task_queue: MessageQueue,
        *,
        quantum: float = 4.0,
        dispatch_window_factor: float = 2.0,
        dispatch_poll_s: float = 0.5,
        capacity_slots: Callable[[], int] = lambda: 0,
        in_flight: Callable[[], int] = lambda: 0,
    ):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if dispatch_window_factor < 1.0:
            raise ValueError("dispatch_window_factor must be >= 1")
        if dispatch_poll_s <= 0:
            raise ValueError("dispatch_poll_s must be positive")
        self.env = env
        self.order = tuple(spec.name for spec in tenants)
        self.weights = {spec.name: spec.weight for spec in tenants}
        self.task_queue = task_queue
        self.quantum = quantum
        self.dispatch_window_factor = dispatch_window_factor
        self.dispatch_poll_s = dispatch_poll_s
        self.capacity_slots = capacity_slots
        self.in_flight = in_flight
        self.queues: dict[str, deque] = {name: deque() for name in self.order}
        self.deficits: dict[str, float] = {name: 0.0 for name in self.order}
        self.dispatched: dict[str, int] = {name: 0 for name in self.order}
        self.stopping = False
        self._tracer = _current_obs().tracer

    # -- intake ------------------------------------------------------------
    def enqueue(self, tenant: str, task: TaskSpec) -> None:
        """Accept an admitted job into the tenant's fair-share queue."""
        self.queues[tenant].append(task)

    def queued_total(self) -> int:
        return sum(len(q) for q in self.queues.values())

    def dispatched_total(self) -> int:
        return sum(self.dispatched.values())

    # -- the dispatch loop -------------------------------------------------
    def _window(self) -> int:
        """Max jobs allowed past the scheduler at this instant."""
        slots = self.capacity_slots()
        if slots <= 0:
            return 0
        return max(1, int(self.dispatch_window_factor * slots))

    def run(self):
        """The dispatcher process: WDRR rounds until told to stop."""
        while not self.stopping:
            sent = yield from self._round()
            if not sent:
                # Idle (or window full): wait for arrivals / completions.
                yield self.env.timeout(self.dispatch_poll_s)

    def _round(self):
        """One full WDRR round.  Returns how many jobs were dispatched."""
        sent = 0
        if not self.queued_total():
            return sent
        window = self._window()
        if self.in_flight() >= window:
            # Window already full: no deficit credit this round, or a
            # stalled fleet would bank unbounded credit for whichever
            # tenant happens to sit first in the walk order.
            return sent
        for name in self.order:
            queue = self.queues[name]
            if not queue:
                # No backlog, no banked credit: deficit accrues only
                # while a tenant actually has jobs waiting.
                self.deficits[name] = 0.0
                continue
            self.deficits[name] += self.quantum * self.weights[name]
            while (
                queue
                and self.deficits[name] >= 1.0
                and self.in_flight() < window
            ):
                task = queue.popleft()
                self.deficits[name] -= 1.0
                yield from self.task_queue.send(task)
                self.dispatched[name] += 1
                sent += 1
                if self._tracer.enabled:
                    self._tracer.instant(
                        "serve.dispatch",
                        track="scheduler",
                        tenant=name,
                        task_id=task.task_id,
                        queued=len(queue),
                    )
            if queue and self.in_flight() >= window:
                # Window full mid-round: stop sending, keep the banked
                # deficit so the round resumes fairly next time.
                break
        return sent

    def stop(self) -> None:
        self.stopping = True
