"""The always-on job service: arrivals → admission → fair share → fleet.

One :class:`JobService` run plays a sustained-traffic window on the
simulated cloud substrate: per-tenant arrival processes submit Cap3 /
BLAST / GTM jobs, the :class:`~repro.serve.admission.AdmissionController`
sheds what the quotas and the global backlog cap refuse, the
:class:`~repro.serve.scheduler.FairShareScheduler` dispatches admitted
jobs into the same at-least-once message queue the ClassicCloud
framework uses, and a polling worker fleet (static or autoscaled, spot
preemption included) executes them with the blob-storage and perf-model
behaviour of a batch run.

Fault tolerance is inherited, not reimplemented: a worker preempted
mid-job simply dies with its message in flight, the message reappears
after the visibility timeout, and another worker re-executes the
idempotent job — completions are counted once per job id, extra
executions are counted as duplicates.

The arrival window closes after ``duration_s`` of simulated time; the
service then *drains* (no new submissions, the fleet finishes the
backlog) and finally writes off anything still unfinished as
``abandoned`` so the accounting identities close exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.apps.perfmodels import task_runtime_seconds
from repro.autoscale.controller import AutoscaleController
from repro.chaos.retry import RetryPolicy, run_with_retry
from repro.autoscale.plan import AutoscalePlan
from repro.cloud.billing import CostMeter
from repro.cloud.compute import CloudProvider
from repro.cloud.instance_types import InstanceType, get_instance_type
from repro.cloud.pricing import AWS_PRICES, AZURE_PRICES
from repro.cloud.queue import MessageQueue, StaleReceiptError
from repro.cloud.storage import BlobNotFound, BlobStore
from repro.core.application import Application, get_application
from repro.core.task import TaskRecord, TaskSpec
from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment, Interrupt, make_environment
from repro.sim.rng import RngRegistry
from repro.serve.admission import AdmissionController, AdmissionOutcome
from repro.serve.scheduler import FairShareScheduler
from repro.serve.tenants import TenantSpec, peak_rate, rate_at

__all__ = [
    "ServeConfig",
    "JobService",
    "ServeResult",
    "TenantStats",
    "run_serve",
]

#: Download-through-404 stance: fixed 0.5 s polls for up to two minutes,
#: timing-identical to the historical inline loop (241 attempts).
_DOWNLOAD_RETRY = RetryPolicy.fixed(attempts=241, delay_s=0.5)


@dataclass(frozen=True)
class ServeConfig:
    """One service deployment: tenants, fleet shape, control knobs."""

    tenants: "tuple[TenantSpec, ...]"
    provider: str = "aws"
    instance_type: str = "HCXL"
    #: Fleet size.  ``0`` models a zero-capacity service (everything
    #: queues, sheds, and finally abandons) and requires no autoscale.
    n_instances: int = 2
    workers_per_instance: int = 8
    #: Seconds the arrival window stays open (simulated).
    duration_s: float = 600.0
    #: Service-wide cap on jobs in the system (queued + in flight).
    max_backlog: int = 256
    quantum: float = 4.0
    dispatch_window_factor: float = 2.0
    visibility_timeout_s: float | None = None  # None: auto from perf model
    poll_backoff_s: float = 1.0
    dispatch_poll_s: float = 0.5
    #: How long past the arrival window the drain may run before the
    #: remaining backlog is written off as abandoned.
    drain_timeout_s: float = 1800.0
    seed: int = 0
    autoscale: AutoscalePlan | None = None
    consistency_window_s: float = 1.0
    max_sim_seconds: float = 10_000_000.0
    perf_jitter: float | None = None
    sanitize: bool = False

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("at least one tenant is required")
        names = [spec.name for spec in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        if self.n_instances < 0:
            raise ValueError("n_instances must be >= 0")
        if self.workers_per_instance < 1:
            raise ValueError("workers_per_instance must be >= 1")
        if self.n_instances == 0 and self.autoscale is not None:
            raise ValueError(
                "zero-capacity runs cannot autoscale: the plan's "
                "min_instances floor would immediately re-provision"
            )
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.max_backlog < 1:
            raise ValueError("max_backlog must be >= 1")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be non-negative")
        itype = self.resolve_instance_type()
        if self.workers_per_instance > itype.machine.cores:
            raise ValueError(
                f"{self.workers_per_instance} workers exceed the "
                f"{itype.machine.cores} cores of {itype.name}"
            )

    def resolve_instance_type(self) -> InstanceType:
        return get_instance_type(self.provider, self.instance_type)

    @property
    def label(self) -> str:
        return (
            f"{self.instance_type} - {self.n_instances} x "
            f"{self.workers_per_instance}"
            + (" (autoscaled)" if self.autoscale is not None else "")
        )


@dataclass(frozen=True)
class TenantStats:
    """One tenant's outcome for one service run."""

    name: str
    app: str
    arrival: str
    weight: float
    submitted: int
    admitted: int
    shed_quota: int
    shed_backlog: int
    completed: int
    abandoned: int
    duplicates: int
    mean_latency_s: "float | None"
    p50_s: "float | None"
    p95_s: "float | None"
    p99_s: "float | None"
    slo_p95_s: float
    slo_ok: "bool | None"  # None when nothing completed

    @property
    def shed(self) -> int:
        return self.shed_quota + self.shed_backlog

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "app": self.app,
            "arrival": self.arrival,
            "weight": self.weight,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed_quota": self.shed_quota,
            "shed_backlog": self.shed_backlog,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "duplicates": self.duplicates,
            "mean_latency_s": self.mean_latency_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "p99_s": self.p99_s,
            "slo_p95_s": self.slo_p95_s,
            "slo_ok": self.slo_ok,
        }


@dataclass(frozen=True)
class ServeResult:
    """Everything one sustained-traffic run produced."""

    label: str
    provider: str
    n_instances: int
    workers_per_instance: int
    autoscaled: bool
    duration_s: float
    makespan_s: float
    tenants: "tuple[TenantStats, ...]"
    total_cost: float
    amortized_cost: float
    extras: "dict[str, float]" = field(default_factory=dict)
    records: "list[TaskRecord]" = field(default_factory=list, repr=False)

    # -- totals ------------------------------------------------------------
    @property
    def submitted(self) -> int:
        return sum(t.submitted for t in self.tenants)

    @property
    def admitted(self) -> int:
        return sum(t.admitted for t in self.tenants)

    @property
    def shed(self) -> int:
        return sum(t.shed for t in self.tenants)

    @property
    def completed(self) -> int:
        return sum(t.completed for t in self.tenants)

    @property
    def abandoned(self) -> int:
        return sum(t.abandoned for t in self.tenants)

    @property
    def duplicates(self) -> int:
        return sum(t.duplicates for t in self.tenants)

    @property
    def cost_per_1k_jobs(self) -> "float | None":
        """Dollars per thousand *completed* jobs (None if none did)."""
        if self.completed == 0:
            return None
        return self.total_cost / self.completed * 1000.0

    def to_dict(self) -> dict:
        """Canonical plain data — the determinism surface for tests."""
        return {
            "label": self.label,
            "provider": self.provider,
            "n_instances": self.n_instances,
            "workers_per_instance": self.workers_per_instance,
            "autoscaled": self.autoscaled,
            "duration_s": self.duration_s,
            "makespan_s": self.makespan_s,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "shed": self.shed,
            "completed": self.completed,
            "abandoned": self.abandoned,
            "duplicates": self.duplicates,
            "total_cost": self.total_cost,
            "amortized_cost": self.amortized_cost,
            "cost_per_1k_jobs": self.cost_per_1k_jobs,
            "tenants": [t.to_dict() for t in self.tenants],
            "extras": dict(sorted(self.extras.items())),
        }


def _percentile(sorted_values: "list[float]", p: float) -> "float | None":
    """Exact nearest-rank percentile of an already-sorted sample."""
    if not sorted_values:
        return None
    rank = max(1, math.ceil(p / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class _JobMeta:
    """Submission-side state for one admitted job."""

    tenant: str
    app: Application
    submitted_at: float


class _BacklogView:
    """Duck-typed backlog signal for the autoscale controller.

    The controller only calls ``approximate_size()`` on its queue; the
    raw cloud queue under-reports service pressure because the fair
    scheduler deliberately holds jobs back (the dispatch window).  This
    view reports *total jobs in the system* instead, which is the
    quantity an elastic service must chase.
    """

    def __init__(self, admission: AdmissionController):
        self._admission = admission

    def approximate_size(self) -> int:
        return self._admission.total_in_system()


class JobService:
    """One sustained-traffic run of the multi-tenant service."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.tenants = config.tenants
        self.obs = _current_obs()
        self.tracer = self.obs.tracer
        self.env: Environment = make_environment(
            sanitize=True if config.sanitize else None
        )
        self.rng = RngRegistry(config.seed)
        prices = AWS_PRICES if config.provider == "aws" else AZURE_PRICES
        self.meter = CostMeter(prices)
        self.cloud = CloudProvider(
            self.env,
            config.provider,
            self.rng.stream("provision"),
            meter=self.meter,
            perf_jitter=config.perf_jitter,
        )
        self.storage = BlobStore(
            self.env,
            "storage",
            self.rng.stream("storage"),
            meter=self.meter,
            consistency_window_s=config.consistency_window_s,
        )
        self._apps: dict[str, Application] = {
            spec.app: get_application(spec.app) for spec in self.tenants
        }
        self.task_queue = MessageQueue(
            self.env,
            "serve-tasks",
            self.rng.stream("queue"),
            meter=self.meter,
            visibility_timeout_s=self._visibility_timeout(),
        )
        self.admission = AdmissionController(
            self.tenants, config.max_backlog
        )
        self.scheduler = FairShareScheduler(
            self.env,
            self.tenants,
            self.task_queue,
            quantum=config.quantum,
            dispatch_window_factor=config.dispatch_window_factor,
            dispatch_poll_s=config.dispatch_poll_s,
            capacity_slots=self._capacity_slots,
            in_flight=self._in_flight,
        )
        self._jobs: dict[str, _JobMeta] = {}
        self._completed: set[str] = set()
        self.records: list[TaskRecord] = []
        self.measure_start = 0.0
        self._worker_counter = 0
        self._busy_workers = 0
        self._instances: list = []
        self._stopping = False
        self.controller: AutoscaleController | None = None
        if config.autoscale is not None:
            self.controller = AutoscaleController(
                self.env,
                config.autoscale,
                self.cloud,
                config.resolve_instance_type(),
                config.workers_per_instance,
                _BacklogView(self.admission),
                self.rng.stream("spot-market"),
                spawn_workers=self._spawn_instance_workers,
                is_done=lambda: self._stopping,
            )

    # -- derived knobs -----------------------------------------------------
    def _visibility_timeout(self) -> float:
        if self.config.visibility_timeout_s is not None:
            return self.config.visibility_timeout_s
        machine = self.config.resolve_instance_type().machine
        # Envelope: three mean work units covers the lognormal tail at
        # the configured coefficients of variation.
        worst = max(
            task_runtime_seconds(
                self._apps[spec.app].perf_model,
                3.0 * spec.job_work_units,
                machine,
                concurrent_workers=self.config.workers_per_instance,
            )
            for spec in self.tenants
        )
        return max(60.0, 3.0 * worst)

    def _capacity_slots(self) -> int:
        if self.controller is not None:
            return (
                len(self.controller.active_instances())
                * self.config.workers_per_instance
            )
        alive = sum(
            1 for i in self._instances if i.is_running and not i.draining
        )
        return alive * self.config.workers_per_instance

    def _in_flight(self) -> int:
        """Jobs past the scheduler but not yet completed."""
        return self.scheduler.dispatched_total() - len(self._completed)

    # -- public API --------------------------------------------------------
    def run(self) -> ServeResult:
        driver = self.env.process(self._driver(), name="driver")
        makespan = self.env.run(until=driver)
        self.cloud.terminate_all()
        report = self.meter.report()
        self.admission.check()
        self._publish_run_metrics(makespan)
        extras: dict[str, float] = {
            "empty_receives": float(self.task_queue.stats.empty_receives),
            "reappearances": float(self.task_queue.stats.reappearances),
            "stale_deletes": float(self.task_queue.stats.stale_deletes),
            "visibility_timeout_s": self.task_queue.visibility_timeout_s,
        }
        if self.controller is not None:
            extras.update(self.controller.summary())
        tenant_stats = tuple(
            self._tenant_stats(spec) for spec in self.tenants
        )
        return ServeResult(
            label=self.config.label,
            provider=self.config.provider,
            n_instances=self.config.n_instances,
            workers_per_instance=self.config.workers_per_instance,
            autoscaled=self.controller is not None,
            duration_s=self.config.duration_s,
            makespan_s=makespan,
            tenants=tenant_stats,
            total_cost=report.total_cost,
            amortized_cost=report.total_amortized_cost,
            extras=extras,
            records=self.records,
        )

    def _tenant_stats(self, spec: TenantSpec) -> TenantStats:
        account = self.admission.accounts[spec.name]
        latencies = sorted(account.latencies)
        p95 = _percentile(latencies, 95)
        mean = (
            sum(latencies) / len(latencies) if latencies else None
        )
        return TenantStats(
            name=spec.name,
            app=spec.app,
            arrival=spec.arrival,
            weight=spec.weight,
            submitted=account.submitted,
            admitted=account.admitted,
            shed_quota=account.shed_quota,
            shed_backlog=account.shed_backlog,
            completed=account.completed,
            abandoned=account.abandoned,
            duplicates=account.duplicates,
            mean_latency_s=mean,
            p50_s=_percentile(latencies, 50),
            p95_s=p95,
            p99_s=_percentile(latencies, 99),
            slo_p95_s=spec.slo_p95_s,
            slo_ok=(None if p95 is None else p95 <= spec.slo_p95_s),
        )

    def _publish_run_metrics(self, makespan: float) -> None:
        metrics = self.obs.metrics
        metrics.counter("sim.events").inc(self.env.events_scheduled)
        for spec in self.tenants:
            account = self.admission.accounts[spec.name]
            hist = metrics.histogram(f"serve.latency.{spec.name}")
            for latency in account.latencies:
                hist.observe(latency)

    # -- driver ------------------------------------------------------------
    def _driver(self):
        config = self.config
        itype = config.resolve_instance_type()
        instances = []
        if self.controller is not None:
            instances = yield self.env.process(
                self.controller.launch_initial(config.n_instances)
            )
        elif config.n_instances > 0:
            instances = yield self.env.process(
                self.cloud.provision(itype, config.n_instances)
            )
        self.measure_start = self.env.now
        for instance in instances:
            instance.launched_at = self.measure_start
        self._instances = list(instances)

        for spec in self.tenants:
            self.env.process(
                self._arrivals(spec), name=f"arrivals-{spec.name}"
            )
        self.env.process(self.scheduler.run(), name="scheduler")
        for instance in instances:
            procs = self._spawn_instance_workers(instance)
            if self.controller is not None:
                self.controller.track(instance, procs)
        if self.controller is not None:
            self.controller.start()
        if self.obs.enabled:
            self.env.process(self._monitor(), name="serve-monitor")

        # The arrival window, then the drain.
        yield self.env.timeout(config.duration_s)
        drain_deadline = self.env.now + config.drain_timeout_s
        while self.admission.total_in_system() > 0:
            if self.env.now >= drain_deadline:
                break
            if self.env.now - self.measure_start > config.max_sim_seconds:
                raise RuntimeError(
                    f"serve run exceeded max_sim_seconds="
                    f"{config.max_sim_seconds} with "
                    f"{self.admission.total_in_system()} jobs in system"
                )
            yield self.env.timeout(config.dispatch_poll_s)
        abandoned = self.admission.abandon_remaining()
        if abandoned and self.tracer.enabled:
            self.tracer.instant(
                "serve.abandoned", track="service", count=abandoned
            )
        self.scheduler.stop()
        self._stopping = True
        return self.env.now - self.measure_start

    # -- arrivals ----------------------------------------------------------
    def _arrivals(self, spec: TenantSpec):
        """Open-loop thinned-Poisson submission stream for one tenant."""
        rng = self.rng.stream(f"arrivals-{spec.name}")
        env = self.env
        end = self.measure_start + self.config.duration_s
        peak = peak_rate(spec)
        index = 0
        while True:
            yield env.timeout(float(rng.exponential(1.0 / peak)))
            now = env.now
            if now >= end:
                return
            accept = rate_at(spec, now - self.measure_start) / peak
            if float(rng.random()) > accept:
                continue  # thinned away: off-peak instant
            index += 1
            self._submit(spec, index, rng, now)

    def _submit(self, spec, index, rng, now) -> None:
        outcome = self.admission.submit(spec.name)
        metrics = self.obs.metrics
        metrics.counter("serve.submitted").inc()
        metrics.counter(f"serve.{outcome.value}").inc()
        if outcome is not AdmissionOutcome.ADMITTED:
            if self.tracer.enabled:
                self.tracer.instant(
                    "serve.shed",
                    track="service",
                    tenant=spec.name,
                    outcome=outcome.value,
                )
            return
        task = spec.make_task(index, rng)
        self.storage.stage(task.input_key, task.input_size)
        self.meter.record_transfer(bytes_in=task.input_size)
        self._jobs[task.task_id] = _JobMeta(
            tenant=spec.name, app=self._apps[spec.app], submitted_at=now
        )
        self.scheduler.enqueue(spec.name, task)

    # -- telemetry ---------------------------------------------------------
    def _monitor(self):
        """Timeline sampling: backlog / sheds / fleet, every 5 sim-s."""
        timeline = self.obs.timeline
        while not self._stopping:
            now = self.env.now
            shed = sum(a.shed for a in self.admission.accounts.values())
            done = sum(
                a.completed for a in self.admission.accounts.values()
            )
            timeline.sample(
                "serve.backlog", now, self.admission.total_in_system()
            )
            timeline.sample("serve.queued", now, self.scheduler.queued_total())
            timeline.sample("serve.shed_total", now, shed)
            timeline.sample("serve.completed_total", now, done)
            timeline.sample(
                "serve.fleet_slots", now, self._capacity_slots()
            )
            yield self.env.timeout(5.0)

    def _sample_busy(self, delta: int) -> None:
        if not self.obs.enabled:
            return
        self._busy_workers += delta
        self.obs.timeline.sample(
            "workers.busy", self.env.now, self._busy_workers
        )

    # -- the worker fleet --------------------------------------------------
    def _spawn_instance_workers(self, instance) -> list:
        return [
            self._spawn_worker(instance)
            for _ in range((self.config.workers_per_instance))
        ]

    def _spawn_worker(self, host):
        self._worker_counter += 1
        name = f"worker-{self._worker_counter}"
        return self.env.process(self._worker(host, name), name=name)

    def _worker(self, host, name: str):
        """Identical shape to the ClassicCloud polling worker."""
        config = self.config
        jitter_rng = self.rng.stream(f"{name}-jitter")
        tracer = self.tracer
        wait_start = self.env.now
        busy = False
        try:
            while not self._stopping:
                if host.draining or not host.is_running:
                    return
                msg = yield from self.task_queue.receive()
                if msg is None:
                    yield self.env.timeout(config.poll_backoff_s)
                    continue
                task: TaskSpec = msg.body
                meta = self._jobs[task.task_id]
                started = self.env.now
                self._sample_busy(+1)
                busy = True

                # Download through eventual-consistency 404s (bounded).
                t0 = self.env.now
                try:
                    yield from run_with_retry(
                        self.env,
                        _DOWNLOAD_RETRY,
                        lambda: self.storage.get(task.input_key),
                        retryable=(BlobNotFound,),
                    )
                except BlobNotFound:
                    raise RuntimeError(
                        f"input {task.input_key!r} never became "
                        "visible in storage"
                    ) from None
                download_time = self.env.now - t0

                service = task_runtime_seconds(
                    meta.app.perf_model,
                    task.work_units,
                    host.machine,
                    concurrent_workers=config.workers_per_instance,
                    clock_ghz=host.effective_clock_ghz(),
                )
                service *= float(jitter_rng.uniform(0.98, 1.02))
                t1 = self.env.now
                yield self.env.timeout(service)
                compute_time = self.env.now - t1

                t2 = self.env.now
                yield from self.storage.put(task.output_key, task.output_size)
                upload_time = self.env.now - t2

                was_duplicate = msg.receive_count > 1
                try:
                    yield from self.task_queue.delete(msg)
                except StaleReceiptError:
                    was_duplicate = True

                self._record_completion(
                    meta, task, name, started, msg.receive_count,
                    was_duplicate,
                )
                self.records.append(
                    TaskRecord(
                        task_id=task.task_id,
                        worker=name,
                        started_at=started,
                        finished_at=self.env.now,
                        download_time=download_time,
                        compute_time=compute_time,
                        upload_time=upload_time,
                        attempt=msg.receive_count,
                        was_duplicate=was_duplicate,
                        won=not was_duplicate,
                    )
                )
                if tracer.enabled:
                    tid = task.task_id
                    tracer.add(
                        "task.queue_wait", track=name,
                        start=wait_start, end=started, task_id=tid,
                    )
                    tracer.add(
                        "task.download", track=name,
                        start=t0, end=t0 + download_time, task_id=tid,
                    )
                    tracer.add(
                        "task.compute", track=name,
                        start=t1, end=t1 + compute_time, task_id=tid,
                    )
                    tracer.add(
                        "task.upload", track=name,
                        start=t2, end=t2 + upload_time, task_id=tid,
                    )
                self._sample_busy(-1)
                busy = False
                wait_start = self.env.now
        except Interrupt:
            # Preempted/crashed: the message reappears and retries.  If
            # the interrupt landed mid-task, close the busy gauge so the
            # +1 sampled at pick-up is paired with a -1.
            if busy:
                self._sample_busy(-1)
            return

    def _record_completion(
        self, meta, task, worker, started, receive_count, was_duplicate
    ) -> None:
        """Count each job once, however many times it executed."""
        metrics = self.obs.metrics
        if task.task_id in self._completed:
            self.admission.duplicate(meta.tenant)
            metrics.counter("serve.duplicates").inc()
            return
        self._completed.add(task.task_id)
        latency = self.env.now - meta.submitted_at
        self.admission.complete(meta.tenant, latency)
        metrics.counter("serve.completed").inc()


def run_serve(config: ServeConfig) -> ServeResult:
    """Convenience wrapper: one seeded service run."""
    return JobService(config).run()
