"""The sustained-load cost-vs-latency frontier study.

For each fleet size, run one sustained-traffic window of the default
three-tenant mix (Cap3 Poisson, BLAST bursts, GTM diurnal) and record
where the deployment lands: per-tenant p50/p95/p99 latency against the
tenant's SLO, and dollars per thousand completed jobs.  Small fleets
are cheap per hour but miss SLOs and shed load; big fleets hit every
SLO and waste idle capacity — the frontier quantifies the trade the
paper's static batch sizing never sees.

Fleet points are independent seeded simulations, so the study fans them
out over worker processes exactly like :mod:`repro.sweep` fans out
sweep points; results are ordered by the fleet-size grid, never by
completion order, so any job count yields byte-identical tables.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Sequence

from repro.autoscale.plan import AutoscalePlan
from repro.core.report import format_table
from repro.serve.service import ServeConfig, ServeResult, run_serve
from repro.serve.tenants import TenantSpec
from repro.sweep.runner import resolve_jobs

__all__ = [
    "ServeStudyRow",
    "default_tenants",
    "frontier_rows",
    "serve_study",
    "render_frontier",
    "serialize_rows",
]

DEFAULT_FLEET_SIZES = (1, 2, 4)


def default_tenants() -> "tuple[TenantSpec, ...]":
    """The study's three-tenant mix — one per paper application.

    Rates sum to ~0.85 jobs/s, which saturates a single HCXL instance,
    comfortably fits two, and leaves four mostly idle: the three fleet
    points of :data:`DEFAULT_FLEET_SIZES` straddle the interesting part
    of the frontier.
    """
    return (
        TenantSpec(
            name="genomics",
            app="cap3",
            arrival="poisson",
            rate_per_s=0.40,
            weight=3.0,
            quota=64,
            slo_p95_s=60.0,
        ),
        TenantSpec(
            name="proteomics",
            app="blast",
            arrival="burst",
            rate_per_s=0.15,
            weight=2.0,
            quota=48,
            burst_factor=4.0,
            burst_duty=0.25,
            period_s=240.0,
            slo_p95_s=240.0,
        ),
        TenantSpec(
            name="chemistry",
            app="gtm",
            arrival="diurnal",
            rate_per_s=0.30,
            weight=1.0,
            quota=48,
            period_s=600.0,
            diurnal_amplitude=0.8,
            slo_p95_s=90.0,
        ),
    )


@dataclass(frozen=True)
class ServeStudyRow:
    """One (fleet size, tenant) cell of the frontier."""

    fleet: int
    tenant: str
    app: str
    arrival: str
    submitted: int
    admitted: int
    shed: int
    completed: int
    abandoned: int
    p50_s: "float | None"
    p95_s: "float | None"
    p99_s: "float | None"
    slo_p95_s: float
    slo_ok: "bool | None"
    makespan_s: float
    total_cost: float
    cost_per_1k_jobs: "float | None"

    def to_dict(self) -> dict:
        return asdict(self)


def _sanitizing() -> bool:
    # DES-sanitizing tokens force inline runs (same rule as the sweep
    # runner): the instrumented event loop must stay in-process.
    raw = os.environ.get("REPRO_SANITIZE", "")
    tokens = {t for t in raw.replace(",", " ").lower().split() if t}
    return bool(tokens - {"threads", "0", "false", "off"})


def _run_point(config: ServeConfig) -> ServeResult:
    """Worker-process entry: run one fleet point, drop bulky records."""
    return replace(run_serve(config), records=[])


def serve_study(
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    tenants: "tuple[TenantSpec, ...] | None" = None,
    *,
    provider: str = "aws",
    instance_type: str = "HCXL",
    workers_per_instance: int = 8,
    duration_s: float = 600.0,
    seed: int = 42,
    autoscale: "AutoscalePlan | None" = None,
    jobs: "int | None" = None,
) -> "tuple[list[ServeStudyRow], list[ServeResult]]":
    """Run the frontier and return (rows, one result per fleet size).

    Row order is the ``fleet_sizes x tenants`` product order, never
    worker completion order, so any ``jobs`` count serialises
    identically.
    """
    if tenants is None:
        tenants = default_tenants()
    configs = [
        ServeConfig(
            tenants=tenants,
            provider=provider,
            instance_type=instance_type,
            n_instances=n,
            workers_per_instance=workers_per_instance,
            duration_s=duration_s,
            seed=seed,
            autoscale=autoscale,
        )
        for n in fleet_sizes
    ]
    n_jobs = min(resolve_jobs(jobs), len(configs))
    if n_jobs <= 1 or _sanitizing():
        results = [_run_point(config) for config in configs]
    else:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            results = list(pool.map(_run_point, configs))
    return frontier_rows(results), results


def frontier_rows(results: "Sequence[ServeResult]") -> "list[ServeStudyRow]":
    """Flatten service results into (fleet, tenant) frontier rows."""
    rows: list[ServeStudyRow] = []
    for result in results:
        for stats in result.tenants:
            rows.append(
                ServeStudyRow(
                    fleet=result.n_instances,
                    tenant=stats.name,
                    app=stats.app,
                    arrival=stats.arrival,
                    submitted=stats.submitted,
                    admitted=stats.admitted,
                    shed=stats.shed,
                    completed=stats.completed,
                    abandoned=stats.abandoned,
                    p50_s=stats.p50_s,
                    p95_s=stats.p95_s,
                    p99_s=stats.p99_s,
                    slo_p95_s=stats.slo_p95_s,
                    slo_ok=stats.slo_ok,
                    makespan_s=result.makespan_s,
                    total_cost=result.total_cost,
                    cost_per_1k_jobs=result.cost_per_1k_jobs,
                )
            )
    return rows


def _fmt(value: "float | None", spec: str = ".1f") -> str:
    return "-" if value is None else format(value, spec)


def render_frontier(rows: Sequence[ServeStudyRow]) -> str:
    """The frontier as a printable table (the figure surface)."""
    return format_table(
        [
            "fleet", "tenant", "app", "arrival", "submitted", "shed",
            "completed", "p50 s", "p95 s", "p99 s", "SLO s", "SLO met",
            "$ / 1k jobs",
        ],
        [
            [
                r.fleet, r.tenant, r.app, r.arrival, r.submitted, r.shed,
                r.completed, _fmt(r.p50_s), _fmt(r.p95_s), _fmt(r.p99_s),
                f"{r.slo_p95_s:.0f}",
                "-" if r.slo_ok is None else ("yes" if r.slo_ok else "NO"),
                _fmt(r.cost_per_1k_jobs, ".2f"),
            ]
            for r in rows
        ],
        title="Serve study: sustained-load cost vs latency frontier",
    )


def serialize_rows(rows: Sequence[ServeStudyRow]) -> str:
    """Canonical JSON for the frontier (the determinism surface)."""
    return json.dumps(
        [row.to_dict() for row in rows], sort_keys=True, indent=2
    )
