"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured engine used by every simulated
substrate in this repository (cloud services, Hadoop, DryadLINQ).  Processes
are Python generators that yield :class:`Event` objects; the engine resumes
them when the event fires.  All ordering is deterministic: ties in simulated
time break on an insertion sequence number, and randomness only enters
through the named streams in :mod:`repro.sim.rng`.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    make_environment,
)
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "Store",
    "Timeout",
    "make_environment",
]
