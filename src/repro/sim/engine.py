"""Event loop, events and generator-based processes.

The design follows the classic event-scheduling formulation of discrete
event simulation.  An :class:`Environment` owns a binary heap of pending
events keyed by ``(time, sequence)``.  A :class:`Process` wraps a Python
generator; each value the generator yields must be an :class:`Event`, and
the process resumes when that event fires, receiving the event's value at
the ``yield`` expression (or the event's exception raised into it).

Determinism guarantees:

* events scheduled for the same simulated time fire in scheduling order;
* no wall-clock or global-RNG access anywhere in the kernel.

Fast paths
----------

The plain :class:`Environment` keeps a *same-time FIFO lane* next to the
heap: anything scheduled with zero delay (``succeed()``/``fail()`` at
``now``, process bootstraps, resumes on already-processed events) is
appended to a deque instead of round-tripping through ``heapq``.  Every
scheduling action — lane or heap — still consumes one global sequence
number, and :meth:`Environment.step` merges the two sources by
``(time, sequence)``, so the firing order is exactly the order the
single-heap formulation would produce.  Instrumented subclasses (the
runtime sanitizer) set ``_use_lane = False``, which routes every action
through ``_enqueue``/the heap as a traceable :class:`Event` — same
``(time, sequence)`` slots, same behaviour, full observability.
"""

from __future__ import annotations

import os
from collections import deque
from collections.abc import Generator, Iterable
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "make_environment",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


_DEADLOCK_MESSAGE = (
    "event loop drained before target event fired (deadlock: a process "
    "is waiting on an event nobody will trigger)"
)


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle sentinels.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Events move through three states: *untriggered* (value is pending),
    *triggered* (value set, waiting in the event heap) and *processed*
    (callbacks have run).  Callbacks are plain callables taking the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception object if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception will be raised inside any process waiting on this
        event.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, 0.0)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # Field init is inlined (no super().__init__ round-trip): a
        # Timeout is born triggered, and this constructor is the single
        # hottest allocation in queue-heavy simulations.
        self.env = env
        self.callbacks = []
        self._processed = False
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay)


class _Call(Event):
    """A traceable stand-in for a lane entry on instrumented environments.

    When ``_use_lane`` is off, :meth:`Environment._schedule_call` wraps
    the callable in one of these and sends it through ``_enqueue`` so the
    sanitizer sees (and traces) the same ``(time, sequence)`` slot the
    fast lane would have consumed.
    """

    __slots__ = ("name", "_fn")

    def __init__(self, env: "Environment", fn: Callable[[], None], name: str):
        super().__init__(env)
        self._fn = fn
        self.name = name
        self._ok = True
        self._value = None

    def _run_callbacks(self) -> None:
        self.callbacks = None
        self._processed = True
        self._fn()


class Process(Event):
    """A running generator.  Its completion is itself an event.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds, the generator is resumed with the event's value; when it
    fails, the exception is thrown into the generator.  When the generator
    returns, the process event succeeds with the return value.
    """

    __slots__ = ("_generator", "_waiting_on", "_epoch", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self._epoch = 0
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next event-loop iteration at the current time.
        # No bootstrap Event is allocated: the lane (or a _Call on
        # instrumented environments) carries the first resume directly.
        env._schedule_call(self._start, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error.  Interrupting a
        process that is waiting on an event detaches its resume callback
        from that event, so abandoned waits do not accumulate dead
        callbacks on long-lived events (retry loops used to leak one
        callback per interrupt).
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        waiting = self._waiting_on
        if waiting is not None:
            callbacks = waiting.callbacks
            if callbacks is not None:
                try:
                    callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
            self._waiting_on = None
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        self.env._enqueue(event, 0.0)

    def _start(self) -> None:
        """First resume: send None into the fresh generator."""
        self._resume_core(True, None)

    def _deliver(self, ok: bool, value: Any, epoch: int) -> None:
        """Lane-scheduled resume for an already-processed target.

        ``epoch`` snapshots the resume counter at scheduling time; if the
        process has been resumed by anything else since (e.g. an
        interrupt), this delivery is stale and dropped — mirroring the
        ``_waiting_on`` identity check on the callback path.
        """
        if epoch != self._epoch or not self.is_alive:
            return
        self._resume_core(ok, value)

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:  # inlined is_alive
            return  # e.g. stale wakeup after an interrupt already finished us
        waiting = self._waiting_on
        if (
            waiting is not None
            and event is not waiting
            and not isinstance(event._value, Interrupt)
        ):
            return  # stale callback from an abandoned wait
        self._resume_core(event._ok, event._value)

    def _resume_core(self, ok: bool, value: Any) -> None:
        self._epoch += 1
        self._waiting_on = None
        generator = self._generator
        try:
            if ok:
                target = generator.send(value)
            else:
                target = generator.throw(value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._enqueue(self, 0.0)
            return
        except BaseException as exc:  # propagate through the process event
            self._ok = False
            self._value = exc
            self.env._enqueue(self, 0.0)
            if not self.callbacks:
                # Nobody is waiting on this process: surface the crash.
                raise
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        env = self.env
        if target.env is not env:
            raise SimulationError("cannot wait on an event from another Environment")
        if target._processed:
            # Already fired: resume on the next loop turn with its value.
            # No intermediate Event is allocated; the delivery rides the
            # same-time lane with a staleness token.
            env._schedule_call(
                partial(self._deliver, target._ok, target._value, self._epoch),
                self,
            )
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._on_fire(event)
                if self.triggered:
                    break
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict[Event, Any]:
        # _processed (not merely triggered) because Timeout pre-sets its
        # value at construction time, long before it actually fires.
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first constituent event fires.

    Value is a dict mapping each already-fired event to its value.
    """

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        # Guard: several constituents can fire at the same timestamp, so
        # _on_fire re-entry after the condition triggered must be a no-op
        # (succeed()/fail() on a triggered event raises SimulationError).
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds when every constituent event has fired."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        # Guard: two constituents failing at the same timestamp would
        # otherwise call fail() twice on this condition and raise
        # SimulationError out of the event loop.
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation environment: clock + event heap + same-time lane.

    Usage::

        env = Environment()

        def ticker(env):
            while True:
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run(until=10.0)
    """

    __slots__ = ("_now", "_heap", "_lane", "_sequence")

    #: Instrumented subclasses set this to False to route every
    #: scheduling action through ``_enqueue`` and the heap, where their
    #: overrides can observe it.  The firing order is identical either
    #: way — both paths consume the same global sequence numbers.
    _use_lane = True

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        # Same-time FIFO lane: (time, sequence, event, fn) with exactly
        # one of event/fn set.  Lane entries are always scheduled at the
        # current time, so the lane front never trails the heap top.
        self._lane: deque[tuple[float, int, Event | None, Callable | None]] = (
            deque()
        )
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total scheduling actions taken so far (lane + heap).

        Every action consumes one global sequence number, so this is an
        exact kernel-throughput counter obtained for free — the metrics
        layer (``repro.obs``) reads it once per run rather than paying a
        per-event callback in the hot loop.
        """
        return self._sequence

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        sequence = self._sequence
        self._sequence = sequence + 1
        if delay == 0.0 and self._use_lane:
            # succeed()-at-now fast lane: skip the heap round-trip.
            self._lane.append((self._now, sequence, event, None))
        else:
            heappush(self._heap, (self._now + delay, sequence, event))

    def _schedule_call(self, fn: Callable[[], None], owner=None) -> None:
        """Schedule a bare callable at the current time.

        The fast-lane equivalent of enqueueing a zero-delay Event whose
        only job is to invoke ``fn`` — used for process bootstraps and
        already-processed-target resumes.  On instrumented environments
        (``_use_lane`` off) the callable is wrapped in a :class:`_Call`
        and sent through ``_enqueue`` so it stays traceable.
        """
        if self._use_lane:
            sequence = self._sequence
            self._sequence = sequence + 1
            self._lane.append((self._now, sequence, None, fn))
        else:
            label = f"call:{owner.name}" if owner is not None else "call"
            self._enqueue(_Call(self, fn, label), 0.0)

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none pending."""
        lane, heap = self._lane, self._heap
        if lane:
            lane_time = lane[0][0]
            if heap and heap[0][0] < lane_time:  # pragma: no cover - guard
                return heap[0][0]
            return lane_time
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Process exactly one pending action (lane or heap)."""
        lane = self._lane
        if lane:
            time, sequence, event, fn = lane[0]
            heap = self._heap
            if heap:
                head = heap[0]
                if head[0] < time or (head[0] == time and head[1] < sequence):
                    heappop(heap)
                    self._now = head[0]
                    head[2]._run_callbacks()
                    return
            lane.popleft()
            self._now = time
            if event is not None:
                event._run_callbacks()
            else:
                fn()
            return
        heap = self._heap
        if not heap:
            raise SimulationError("no events to step")
        time, _, event = heappop(heap)
        if time < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("time ran backwards")
        self._now = time
        event._run_callbacks()

    def _run_fast(self, limit: float, target: "Event | None") -> None:
        """Inlined event loop for the plain environment.

        One step() call per fired event is measurable overhead at kernel
        scale, so the un-instrumented environment drains lane + heap with
        everything held in locals.  Subclasses (which override step for
        instrumentation) never reach this path.
        """
        lane, heap = self._lane, self._heap
        lane_popleft = lane.popleft
        while True:
            if target is not None:
                if target._processed:
                    return
                if not (lane or heap):
                    raise SimulationError(_DEADLOCK_MESSAGE)
            if lane:
                entry = lane[0]
                time = entry[0]
                if time > limit:
                    return
                if heap:
                    head = heap[0]
                    if head[0] < time or (
                        head[0] == time and head[1] < entry[1]
                    ):
                        heappop(heap)
                        self._now = head[0]
                        head[2]._run_callbacks()
                        continue
                lane_popleft()
                self._now = time
                event = entry[2]
                if event is not None:
                    event._run_callbacks()
                else:
                    entry[3]()
                continue
            if heap:
                head = heap[0]
                time = head[0]
                if time > limit:
                    return
                heappop(heap)
                self._now = time
                head[2]._run_callbacks()
                continue
            return

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run up to
        that simulated time) or an :class:`Event` (run until it fires, and
        return its value — raising its exception if it failed).
        """
        plain = type(self) is Environment
        if isinstance(until, Event):
            target = until
            if plain:
                self._run_fast(float("inf"), target)
            else:
                while not target._processed:
                    if not (self._lane or self._heap):
                        raise SimulationError(_DEADLOCK_MESSAGE)
                    self.step()
            if target._ok:
                return target._value
            raise target._value
        limit = float("inf") if until is None else float(until)
        if plain:
            self._run_fast(limit, None)
        else:
            while (self._lane or self._heap) and self.peek() <= limit:
                self.step()
        if until is not None and limit > self._now:
            self._now = limit
        return None


def make_environment(
    initial_time: float = 0.0, sanitize: bool | None = None
) -> Environment:
    """Environment factory honouring the sanitizer opt-in.

    With ``sanitize=True`` — or ``sanitize=None`` and ``REPRO_SANITIZE``
    set in the process environment — returns an instrumented
    :class:`repro.lint.sanitizer.SanitizedEnvironment` (imported lazily
    to keep the kernel free of lint dependencies); otherwise a plain
    :class:`Environment`.  Every simulated backend builds its event loop
    through this factory.

    ``REPRO_SANITIZE`` is a token list: ``1``/``true``/``sim``/``all``
    enable this DES sanitizer; a bare ``threads`` enables only the
    thread sanitizer (:mod:`repro.lint.threadsan`) and must *not* put
    the simulation on the instrumented loop.
    """
    if sanitize is None:
        raw = os.environ.get("REPRO_SANITIZE", "")
        tokens = {
            token
            for token in raw.replace(",", " ").lower().split()
            if token
        }
        sanitize = bool(tokens - {"threads", "0", "false", "off"})
    if sanitize:
        from repro.lint.sanitizer import SanitizedEnvironment

        return SanitizedEnvironment(initial_time)
    return Environment(initial_time)
