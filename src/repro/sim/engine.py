"""Event loop, events and generator-based processes.

The design follows the classic event-scheduling formulation of discrete
event simulation.  An :class:`Environment` owns a binary heap of pending
events keyed by ``(time, sequence)``.  A :class:`Process` wraps a Python
generator; each value the generator yields must be an :class:`Event`, and
the process resumes when that event fires, receiving the event's value at
the ``yield`` expression (or the event's exception raised into it).

Determinism guarantees:

* events scheduled for the same simulated time fire in scheduling order;
* no wall-clock or global-RNG access anywhere in the kernel.
"""

from __future__ import annotations

import heapq
import os
from collections.abc import Generator, Iterable
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "make_environment",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event lifecycle sentinels.
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    Events move through three states: *untriggered* (value is pending),
    *triggered* (value set, waiting in the event heap) and *processed*
    (callbacks have run).  Callbacks are plain callables taking the event.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None
        self._processed = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception object if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception will be raised inside any process waiting on this
        event.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._enqueue(self, 0.0)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at t={self.env.now:.6g}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._enqueue(self, delay)


class Process(Event):
    """A running generator.  Its completion is itself an event.

    The wrapped generator yields :class:`Event` instances.  When a yielded
    event succeeds, the generator is resumed with the event's value; when it
    fails, the exception is thrown into the generator.  When the generator
    returns, the process event succeeds with the return value.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: str | None = None,
    ):
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next event-loop iteration at the current time.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap._ok = True
        bootstrap._value = None
        env._enqueue(bootstrap, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.callbacks.append(self._resume)
        # Detach from whatever we were waiting for; the stale callback is
        # filtered in _resume via the _waiting_on check.
        self.env._enqueue(event, 0.0)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return  # e.g. stale wakeup after an interrupt already finished us
        if (
            self._waiting_on is not None
            and event is not self._waiting_on
            and not isinstance(event.value, Interrupt)
        ):
            return  # stale callback from an abandoned wait
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            self.env._enqueue(self, 0.0)
            return
        except BaseException as exc:  # propagate through the process event
            self._ok = False
            self._value = exc
            self.env._enqueue(self, 0.0)
            if not self.callbacks:
                # Nobody is waiting on this process: surface the crash.
                raise
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event"
            )
        if target.env is not self.env:
            raise SimulationError("cannot wait on an event from another Environment")
        self._waiting_on = target
        if target._processed:
            # Already fired: resume on the next loop turn with its value.
            immediate = Event(self.env)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate.callbacks.append(self._resume)
            self._waiting_on = immediate
            self.env._enqueue(immediate, 0.0)
        else:
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        for event in self.events:
            if event.env is not env:
                raise SimulationError("condition mixes environments")
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event._processed:
                self._on_fire(event)
                if self.triggered:
                    break
            else:
                event.callbacks.append(self._on_fire)

    def _collect(self) -> dict[Event, Any]:
        # _processed (not merely triggered) because Timeout pre-sets its
        # value at construction time, long before it actually fires.
        return {e: e._value for e in self.events if e._processed and e._ok}

    def _on_fire(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Succeeds when the first constituent event fires.

    Value is a dict mapping each already-fired event to its value.
    """

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._collect())


class AllOf(_Condition):
    """Succeeds when every constituent event has fired."""

    __slots__ = ()

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._collect())


class Environment:
    """The simulation environment: clock + event heap.

    Usage::

        env = Environment()

        def ticker(env):
            while True:
                yield env.timeout(1.0)

        env.process(ticker(env))
        env.run(until=10.0)
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- factories ----------------------------------------------------------
    def event(self) -> Event:
        """Create an untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` units from now."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: str | None = None
    ) -> Process:
        """Start a process from a generator."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event: first of ``events``."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event: all of ``events``."""
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------------
    def _enqueue(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self._now + delay, self._sequence, event))
        self._sequence += 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if none pending."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no events to step")
        time, _, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - heap invariant guard
            raise SimulationError("time ran backwards")
        self._now = time
        event._run_callbacks()

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to exhaustion), a number (run up to
        that simulated time) or an :class:`Event` (run until it fires, and
        return its value — raising its exception if it failed).
        """
        if isinstance(until, Event):
            target = until
            while not target._processed:
                if not self._heap:
                    raise SimulationError(
                        "event loop drained before target event fired "
                        "(deadlock: a process is waiting on an event nobody "
                        "will trigger)"
                    )
                self.step()
            if target._ok:
                return target._value
            raise target._value
        limit = float("inf") if until is None else float(until)
        while self._heap and self._heap[0][0] <= limit:
            self.step()
        if until is not None and limit > self._now:
            self._now = limit
        return None


def make_environment(
    initial_time: float = 0.0, sanitize: bool | None = None
) -> Environment:
    """Environment factory honouring the sanitizer opt-in.

    With ``sanitize=True`` — or ``sanitize=None`` and ``REPRO_SANITIZE``
    set in the process environment — returns an instrumented
    :class:`repro.lint.sanitizer.SanitizedEnvironment` (imported lazily
    to keep the kernel free of lint dependencies); otherwise a plain
    :class:`Environment`.  Every simulated backend builds its event loop
    through this factory.
    """
    if sanitize is None:
        sanitize = bool(os.environ.get("REPRO_SANITIZE"))
    if sanitize:
        from repro.lint.sanitizer import SanitizedEnvironment

        return SanitizedEnvironment(initial_time)
    return Environment(initial_time)
