"""Shared-resource primitives for the DES kernel.

* :class:`Resource` — counted capacity (CPU core slots, network channels).
* :class:`Store` — unordered-capacity FIFO buffer of items (message queues,
  mailboxes).
* :class:`PriorityStore` — like :class:`Store` but items pop in priority
  order; used by schedulers.
"""

from __future__ import annotations

import heapq
from typing import Any

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["PriorityStore", "Resource", "Store"]


class Resource:
    """A resource with ``capacity`` identical slots.

    ``request()`` returns an event that succeeds when a slot is granted;
    ``release(req)`` returns the slot.  Grants are strictly FIFO.

    Typical pattern inside a process::

        req = resource.request()
        yield req
        try:
            yield env.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[Event] = []
        self._granted: set[int] = set()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def request(self) -> Event:
        """Ask for a slot; the returned event fires when granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            self._granted.add(id(event))
            event.succeed()
        else:
            self._queue.append(event)
        return event

    def release(self, request: Event) -> None:
        """Return the slot held by ``request``.

        Cancels the request instead if it has not been granted yet.
        """
        if id(request) in self._granted:
            self._granted.discard(id(request))
            self._in_use -= 1
            while self._queue and self._in_use < self.capacity:
                nxt = self._queue.pop(0)
                self._in_use += 1
                self._granted.add(id(nxt))
                nxt.succeed()
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                raise SimulationError("release() of a request never made") from None


class Store:
    """FIFO buffer of arbitrary items with optional capacity.

    ``put(item)`` returns an event that fires once the item is accepted
    (immediately unless the store is full); ``get()`` returns an event that
    fires with the oldest item once one is available.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Read-only view of buffered items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; event fires when the store accepts it."""
        event = Event(self.env)
        if len(self._items) < self.capacity:
            self._accept(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """Take the oldest item; event fires with the item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._pop())
            self._drain_putters()
        else:
            self._getters.append(event)
        return event

    def cancel_get(self, get_event: Event) -> None:
        """Withdraw a pending ``get()`` (e.g. after a poll timeout won)."""
        try:
            self._getters.remove(get_event)
        except ValueError:
            pass  # already satisfied or never queued — both fine

    # -- internals ------------------------------------------------------------
    def _accept(self, item: Any) -> None:
        if self._getters:
            self._getters.pop(0).succeed(item)
        else:
            self._push(item)

    def _drain_putters(self) -> None:
        while self._putters and len(self._items) < self.capacity:
            event, item = self._putters.pop(0)
            self._accept(item)
            event.succeed()

    def _push(self, item: Any) -> None:
        self._items.append(item)

    def _pop(self) -> Any:
        return self._items.pop(0)


class PriorityStore(Store):
    """A :class:`Store` whose ``get()`` pops the smallest item.

    Items must be orderable; use ``(priority, seq, payload)`` tuples to
    avoid comparing payloads.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: list[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list[Any]:
        return sorted(self._heap)

    def _push(self, item: Any) -> None:
        heapq.heappush(self._heap, item)

    def _pop(self) -> Any:
        return heapq.heappop(self._heap)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        if len(self._heap) < self.capacity or self._getters:
            self._accept(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.env)
        if self._heap:
            event.succeed(self._pop())
            self._drain_putters()
        else:
            self._getters.append(event)
        return event

    def _drain_putters(self) -> None:
        while self._putters and len(self._heap) < self.capacity:
            event, item = self._putters.pop(0)
            self._accept(item)
            event.succeed()
