"""Named deterministic random streams.

All stochastic behaviour in the simulators (service latencies, failure
draws, placement choices) pulls from a named stream so that adding a new
source of randomness never perturbs existing ones — runs stay reproducible
experiment-to-experiment.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """A family of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the stream's seed mixes the
    registry's master seed with a CRC of the name, so the same name always
    yields the same sequence for a given master seed regardless of the
    order in which streams are first requested.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            mixed = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            generator = np.random.default_rng(mixed & 0xFFFFFFFFFFFFFFFF)
            self._streams[name] = generator
        return generator

    def spawn(self, name: str) -> "RngRegistry":
        """Derive an independent child registry (e.g. per experiment trial)."""
        mixed = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8")) ^ 0x9E3779B9
        return RngRegistry(mixed & 0x7FFFFFFFFFFFFFFF)
