"""repro.sweep — process-parallel sweep execution with result caching.

Every figure in the paper is a sweep: instance types x backends x
workload sizes, each point an independent deterministic simulation —
pleasingly parallel in exactly the paper's sense.  This package makes
the reproduction harness exploit that itself:

* :mod:`repro.sweep.points` — declarative, picklable sweep points
  (``PointSpec``) that rebuild their app + backend inside worker
  processes, and the plain-data ``PointResult`` they produce;
* :mod:`repro.sweep.runner` — :func:`run_points`: fan the points out
  in per-worker chunks (``--jobs`` / ``REPRO_JOBS``, default
  ``os.cpu_count()``) with deterministic result ordering;
* :mod:`repro.sweep.pool` — :class:`SweepPool`: the persistent,
  lazily-started worker pool those chunks execute on, reused across
  ``run_points`` calls, studies, and the bench suite;
* :mod:`repro.sweep.cache` — a content-addressed result cache under
  ``.repro-cache/`` keyed by app + perf-model + backend config + task
  digest + version salt (``REPRO_NO_CACHE`` escape hatch);
* :mod:`repro.sweep.bench` — ``python -m repro bench``: kernel
  microbenchmarks and per-app sweep timings, written to ``BENCH_*.json``.
"""

from repro.sweep.cache import CacheStats, ResultCache, default_cache
from repro.sweep.fingerprint import CACHE_SALT, point_fingerprint, task_digest
from repro.sweep.points import PointResult, PointSpec, point_for, run_point
from repro.sweep.pool import SweepPool, shared_pool, shutdown_shared_pool
from repro.sweep.runner import resolve_jobs, run_points

__all__ = [
    "CACHE_SALT",
    "CacheStats",
    "PointResult",
    "PointSpec",
    "ResultCache",
    "SweepPool",
    "default_cache",
    "point_fingerprint",
    "point_for",
    "resolve_jobs",
    "run_point",
    "run_points",
    "shared_pool",
    "shutdown_shared_pool",
    "task_digest",
]
