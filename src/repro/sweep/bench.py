"""``python -m repro bench`` — the repo's microbenchmark suite.

Two groups of measurements, written as one JSON document (default
``BENCH_2.json`` at the current directory):

* **kernel** — DES event-loop throughput in events/second for the three
  hot shapes the fast paths target: a pure timeout chain (heap path), a
  zero-delay succeed chain (same-time lane path) and a two-process
  ping-pong (process switch path);
* **sweeps** — wall-clock for a Figure 3/4-style instance-type sweep per
  application, serial (``jobs=1``), parallel (``jobs=N``) and warm-cache
  (second run against a fresh temporary cache), plus the derived
  speedups.

``--smoke`` shrinks every size so the suite finishes in seconds — CI
runs that variant to catch wiring regressions, not to publish numbers.

This module measures *real* wall-clock time by design; it lives outside
the simulation packages, where the determinism linter's RPR001 rule
does not apply, and every read is annotated anyway.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment
from repro.sweep.cache import ResultCache
from repro.sweep.points import point_for
from repro.sweep.runner import resolve_jobs, run_points

__all__ = ["main", "run_bench"]

DEFAULT_OUTPUT = "BENCH_2.json"
SCHEMA = "repro-bench-v2"


def _clock() -> float:
    return time.perf_counter()  # repro: noqa[RPR001] real benchmark timer


def _best_of(fn, repeats: int) -> float:
    """Best (minimum) wall-clock of ``repeats`` calls, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = _clock()
        fn()
        best = min(best, _clock() - start)
    return best


# -- kernel microbenchmarks ------------------------------------------------

def _timeout_chain(n: int) -> None:
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()


def _zero_delay_chain(n: int) -> None:
    env = Environment()

    def proc(env):
        for _ in range(n):
            event = env.event()
            event.succeed()
            yield event

    env.process(proc(env))
    env.run()


def _ping_pong(n: int) -> None:
    env = Environment()
    box = {"event": env.event()}

    def ping(env):
        for _ in range(n):
            waited = box["event"]
            box["event"] = env.event()
            waited.succeed()
            yield env.timeout(1.0)

    def pong(env):
        for _ in range(n):
            yield box["event"]

    env.process(ping(env))
    env.process(pong(env))
    env.run()


def _kernel_bench(smoke: bool) -> dict:
    n = 2_000 if smoke else 50_000
    repeats = 2 if smoke else 5
    shapes = {
        # events fired per run: chains fire ~2 events per iteration
        # (the scheduled event + the process resume slot).
        "timeout_chain": (_timeout_chain, 2 * n),
        "zero_delay_chain": (_zero_delay_chain, 2 * n),
        "ping_pong": (_ping_pong, 4 * n),
    }
    out = {}
    metrics = _current_obs().metrics
    for name, (fn, events) in shapes.items():
        seconds = _best_of(lambda: fn(n), repeats)
        rate = events / seconds if seconds > 0 else None
        out[name] = {
            "iterations": n,
            "events": events,
            "best_s": seconds,
            "events_per_s": rate,
        }
        if rate is not None:
            metrics.gauge(f"bench.kernel.{name}.events_per_s").set(rate)
    return out


# -- sweep benchmarks ------------------------------------------------------

_EC2_SHAPES = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]


def _sweep_points(app_name: str, n_files: int):
    from repro.cloud.failures import FaultPlan
    from repro.core.application import get_application
    from repro.core.backends import make_backend

    app = get_application(app_name)
    if app_name == "cap3":
        from repro.workloads.genome import cap3_task_specs

        tasks = cap3_task_specs(n_files, reads_per_file=200)
    elif app_name == "blast":
        from repro.workloads.protein import blast_task_specs

        tasks = blast_task_specs(n_files, inhomogeneous_base=False, seed=3)
    else:
        from repro.workloads.pubchem import gtm_task_specs

        tasks = gtm_task_specs(n_files)
    backends = [
        make_backend(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=w,
            fault_plan=FaultPlan.none(),
            seed=17,
        )
        for itype, n, w in _EC2_SHAPES
    ]
    return [point_for(app, backend, tasks) for backend in backends]


def _sweep_bench(app_name: str, n_files: int, jobs: int) -> dict:
    points = _sweep_points(app_name, n_files)

    start = _clock()  # repro: noqa[RPR001] real benchmark timer
    serial = run_points(points, jobs=1, cache=None)
    serial_s = _clock() - start

    start = _clock()
    parallel = run_points(points, jobs=jobs, cache=None)
    parallel_s = _clock() - start
    if [r.to_dict() for r in serial] != [r.to_dict() for r in parallel]:
        raise AssertionError(
            f"{app_name}: parallel sweep diverged from serial sweep"
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        start = _clock()
        run_points(points, jobs=1, cache=cache)
        cold_s = _clock() - start
        start = _clock()
        warm = run_points(points, jobs=1, cache=cache)
        warm_s = _clock() - start
        stats = cache.stats()
        if stats.hits != len(points):
            raise AssertionError(
                f"{app_name}: warm run hit {stats.hits}/{len(points)} points"
            )
    if [r.to_dict() for r in warm] != [r.to_dict() for r in serial]:
        raise AssertionError(
            f"{app_name}: cached sweep diverged from serial sweep"
        )

    return {
        "n_files": n_files,
        "n_points": len(points),
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cache_cold_s": cold_s,
        "cache_warm_s": warm_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "warm_cache_speedup": cold_s / warm_s if warm_s > 0 else None,
    }


def run_bench(
    smoke: bool = False, jobs: "int | None" = None, apps=("cap3", "blast", "gtm")
) -> dict:
    """Run the full suite and return the report dict."""
    jobs = resolve_jobs(jobs)
    n_files = 16 if smoke else 200
    report = {
        "schema": SCHEMA,
        "smoke": smoke,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "kernel": _kernel_bench(smoke),
        "sweeps": {
            app: _sweep_bench(app, n_files, jobs) for app in apps
        },
    }
    return report


def main(args, out) -> int:
    """Handler for ``python -m repro bench``."""
    report = run_bench(smoke=args.smoke, jobs=args.jobs)
    path = Path(args.output)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    kernel = report["kernel"]
    rows = [
        f"  kernel {name}: {spec['events_per_s']:,.0f} events/s"
        for name, spec in kernel.items()
    ]
    for app, sweep in report["sweeps"].items():
        rows.append(
            f"  sweep {app}: serial {sweep['serial_s']:.3f}s, "
            f"parallel(x{sweep['jobs']}) {sweep['parallel_s']:.3f}s "
            f"({sweep['parallel_speedup']:.2f}x), "
            f"warm cache {sweep['cache_warm_s']:.4f}s "
            f"({sweep['warm_cache_speedup']:.1f}x)"
        )
    print("benchmark report:", file=out)
    for row in rows:
        print(row, file=out)
    print(f"written to {path}", file=out)
    return 0
