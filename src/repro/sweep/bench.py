"""``python -m repro bench`` — the repo's microbenchmark suite.

Three groups of measurements, written as one JSON document (default
``BENCH_3.json`` at the current directory):

* **kernel** — DES event-loop throughput in events/second for the three
  hot shapes the fast paths target: a pure timeout chain (heap path), a
  zero-delay succeed chain (same-time lane path) and a two-process
  ping-pong (process switch path);
* **sweeps** — wall-clock for a Figure 3/4-style instance-type sweep per
  application, serial (``jobs=1``), parallel (``jobs=N`` through the
  persistent :class:`~repro.sweep.pool.SweepPool`) and warm-cache
  (second run against a fresh temporary cache), plus the derived
  speedups, per-point chunk layout and a build/run phase split;
* **workloads** — on-disk dataset generation per application: a cold
  build through the workload artifact store versus a warm attach of the
  already-materialized artifact.

The one-time pool spawn cost is measured once, up front, and reported
under ``phases.pool_spawn_s`` rather than being smeared into every
parallel sweep — that matches how the pool is actually used (spawn
once, reuse for every subsequent call).  ``jobs_effective`` records
``min(jobs, cpu_count)`` so single-core hosts cannot masquerade as
parallel speedup measurements.

``--smoke`` shrinks every size so the suite finishes in seconds — CI
runs that variant to catch wiring regressions, not to publish numbers.

This module measures *real* wall-clock time by design; it lives outside
the simulation packages, where the determinism linter's RPR001 rule
does not apply, and every read is annotated anyway.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.obs.context import current as _current_obs
from repro.sim.engine import Environment
from repro.sweep.cache import ResultCache
from repro.sweep.points import point_for
from repro.sweep.pool import SweepPool
from repro.sweep.runner import _chunk_pending, resolve_jobs, run_points

__all__ = ["check_kernel_regression", "main", "run_bench"]

DEFAULT_OUTPUT = "BENCH_3.json"
SCHEMA = "repro-bench-v3"


def _clock() -> float:
    return time.perf_counter()  # repro: noqa[RPR001] real benchmark timer


def _best_of(fn, repeats: int) -> float:
    """Best (minimum) wall-clock of ``repeats`` calls, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = _clock()
        fn()
        best = min(best, _clock() - start)
    return best


# -- kernel microbenchmarks ------------------------------------------------

def _timeout_chain(n: int) -> None:
    env = Environment()

    def proc(env):
        for _ in range(n):
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run()


def _zero_delay_chain(n: int) -> None:
    env = Environment()

    def proc(env):
        for _ in range(n):
            event = env.event()
            event.succeed()
            yield event

    env.process(proc(env))
    env.run()


def _ping_pong(n: int) -> None:
    env = Environment()
    box = {"event": env.event()}

    def ping(env):
        for _ in range(n):
            waited = box["event"]
            box["event"] = env.event()
            waited.succeed()
            yield env.timeout(1.0)

    def pong(env):
        for _ in range(n):
            yield box["event"]

    env.process(ping(env))
    env.process(pong(env))
    env.run()


def _kernel_bench(smoke: bool) -> dict:
    n = 2_000 if smoke else 50_000
    repeats = 2 if smoke else 5
    shapes = {
        # events fired per run: chains fire ~2 events per iteration
        # (the scheduled event + the process resume slot).
        "timeout_chain": (_timeout_chain, 2 * n),
        "zero_delay_chain": (_zero_delay_chain, 2 * n),
        "ping_pong": (_ping_pong, 4 * n),
    }
    out = {}
    metrics = _current_obs().metrics
    for name, (fn, events) in shapes.items():
        seconds = _best_of(lambda: fn(n), repeats)
        rate = events / seconds if seconds > 0 else None
        out[name] = {
            "iterations": n,
            "events": events,
            "best_s": seconds,
            "events_per_s": rate,
        }
        if rate is not None:
            metrics.gauge(f"bench.kernel.{name}.events_per_s").set(rate)
    return out


# -- sweep benchmarks ------------------------------------------------------

_EC2_SHAPES = [("L", 8, 2), ("XL", 4, 4), ("HCXL", 2, 8), ("HM4XL", 2, 8)]


def _sweep_points(app_name: str, n_files: int):
    from repro.cloud.failures import FaultPlan
    from repro.core.application import get_application
    from repro.core.backends import make_backend

    app = get_application(app_name)
    if app_name == "cap3":
        from repro.workloads.genome import cap3_task_specs

        tasks = cap3_task_specs(n_files, reads_per_file=200)
    elif app_name == "blast":
        from repro.workloads.protein import blast_task_specs

        tasks = blast_task_specs(n_files, inhomogeneous_base=False, seed=3)
    else:
        from repro.workloads.pubchem import gtm_task_specs

        tasks = gtm_task_specs(n_files)
    backends = [
        make_backend(
            "ec2",
            instance_type=itype,
            n_instances=n,
            workers_per_instance=w,
            fault_plan=FaultPlan.none(),
            seed=17,
        )
        for itype, n, w in _EC2_SHAPES
    ]
    return [point_for(app, backend, tasks) for backend in backends]


def _timed_best(fn, repeats: int):
    """(last result, best wall-clock) over ``repeats`` calls."""
    result, best = None, float("inf")
    for _ in range(repeats):
        start = _clock()
        result = fn()
        best = min(best, _clock() - start)
    return result, best


def _sweep_bench(
    app_name: str,
    n_files: int,
    jobs: int,
    pool: "SweepPool | None",
    repeats: int,
) -> dict:
    start = _clock()  # repro: noqa[RPR001] real benchmark timer
    points = _sweep_points(app_name, n_files)
    build_s = _clock() - start

    serial, serial_s = _timed_best(
        lambda: run_points(points, jobs=1, cache=None), repeats
    )
    parallel, parallel_s = _timed_best(
        lambda: run_points(points, jobs=jobs, cache=None, pool=pool), repeats
    )
    if [r.to_dict() for r in serial] != [r.to_dict() for r in parallel]:
        raise AssertionError(
            f"{app_name}: parallel sweep diverged from serial sweep"
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = ResultCache(tmp)
        start = _clock()
        run_points(points, jobs=1, cache=cache)
        cold_s = _clock() - start
        start = _clock()
        warm = run_points(points, jobs=1, cache=cache)
        warm_s = _clock() - start
        stats = cache.stats()
        if stats.hits != len(points):
            raise AssertionError(
                f"{app_name}: warm run hit {stats.hits}/{len(points)} points"
            )
    if [r.to_dict() for r in warm] != [r.to_dict() for r in serial]:
        raise AssertionError(
            f"{app_name}: cached sweep diverged from serial sweep"
        )

    chunk_sizes = (
        [len(chunk) for chunk in _chunk_pending(points, min(jobs, len(points)))]
        if jobs > 1
        else []
    )
    return {
        "n_files": n_files,
        "n_points": len(points),
        "jobs": jobs,
        "chunk_sizes": chunk_sizes,
        "build_points_s": build_s,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "cache_cold_s": cold_s,
        "cache_warm_s": warm_s,
        "parallel_speedup": serial_s / parallel_s if parallel_s > 0 else None,
        "warm_cache_speedup": cold_s / warm_s if warm_s > 0 else None,
    }


# -- workload generation benchmarks ----------------------------------------

def _workload_bench(app_name: str, n_files: int) -> dict:
    """Cold store build vs warm attach for one app's on-disk dataset."""
    from repro.workloads.genome import write_cap3_workload
    from repro.workloads.protein import write_blast_workload
    from repro.workloads.pubchem import write_gtm_workload
    from repro.workloads.store import WorkloadArtifactStore

    with tempfile.TemporaryDirectory(prefix="repro-bench-workload-") as tmp:
        tmp_path = Path(tmp)
        store = WorkloadArtifactStore(tmp_path / "store")

        def write(dest: Path) -> None:
            if app_name == "cap3":
                write_cap3_workload(dest, n_files, seed=3, store=store)
            elif app_name == "blast":
                write_blast_workload(dest, n_files, seed=3, store=store)
            else:
                write_gtm_workload(dest, n_files, seed=3, store=store)

        start = _clock()
        write(tmp_path / "cold")
        build_s = _clock() - start
        start = _clock()
        write(tmp_path / "warm")
        attach_s = _clock() - start
        if store.builds != 1 or store.hits != 1:
            raise AssertionError(
                f"{app_name}: expected 1 build + 1 hit, got "
                f"{store.builds} builds / {store.hits} hits"
            )
        return {
            "n_files": n_files,
            "build_s": build_s,
            "attach_s": attach_s,
            "attach_speedup": build_s / attach_s if attach_s > 0 else None,
            "store_builds": store.builds,
            "store_hits": store.hits,
        }


def _spawn_bench(pool: SweepPool) -> float:
    """One-time cost to cold-start the pool: spawn + module warm-up."""
    start = _clock()
    pool.submit_chunk([]).result()
    return _clock() - start


def run_bench(
    smoke: bool = False, jobs: "int | None" = None, apps=("cap3", "blast", "gtm")
) -> dict:
    """Run the full suite and return the report dict."""
    jobs = resolve_jobs(jobs)
    cpus = os.cpu_count() or 1
    n_files = 16 if smoke else 200
    workload_files = 8 if smoke else 64
    report = {
        "schema": SCHEMA,
        "smoke": smoke,
        "jobs": jobs,
        "jobs_effective": min(jobs, cpus),
        "cpu_count": cpus,
        "kernel": _kernel_bench(smoke),
    }
    pool = SweepPool(jobs) if jobs > 1 else None
    try:
        spawn_s = _spawn_bench(pool) if pool is not None else None
        report["phases"] = {"pool_spawn_s": spawn_s}
        repeats = 2 if smoke else 5
        report["sweeps"] = {
            app: _sweep_bench(app, n_files, jobs, pool, repeats)
            for app in apps
        }
        report["pool"] = pool.stats() if pool is not None else None
    finally:
        if pool is not None:
            pool.close()
    report["workloads"] = {
        app: _workload_bench(app, workload_files) for app in apps
    }
    return report


def check_kernel_regression(
    report: dict, baseline: dict, tolerance: float = 0.10
) -> list:
    """Compare kernel events/s against a baseline report.

    Returns a list of human-readable failures (empty means the gate
    passes).  Shapes present in only one report are skipped — the gate
    guards against regressions in what both runs measured, not against
    schema drift.
    """
    failures = []
    for name, spec in baseline.get("kernel", {}).items():
        base_rate = spec.get("events_per_s")
        rate = report.get("kernel", {}).get(name, {}).get("events_per_s")
        if not base_rate or not rate:
            continue
        floor = base_rate * (1.0 - tolerance)
        if rate < floor:
            failures.append(
                f"kernel {name}: {rate:,.0f} events/s is below the "
                f"{tolerance:.0%} floor ({floor:,.0f}) of the baseline "
                f"{base_rate:,.0f}"
            )
    return failures


def main(args, out) -> int:
    """Handler for ``python -m repro bench``."""
    report = run_bench(smoke=args.smoke, jobs=args.jobs)
    path = Path(args.output)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    kernel = report["kernel"]
    rows = [
        f"  kernel {name}: {spec['events_per_s']:,.0f} events/s"
        for name, spec in kernel.items()
    ]
    spawn_s = report["phases"]["pool_spawn_s"]
    if spawn_s is not None:
        rows.append(f"  pool spawn (one-time): {spawn_s:.3f}s")
    for app, sweep in report["sweeps"].items():
        rows.append(
            f"  sweep {app}: serial {sweep['serial_s']:.3f}s, "
            f"parallel(x{sweep['jobs']}) {sweep['parallel_s']:.3f}s "
            f"({sweep['parallel_speedup']:.2f}x), "
            f"warm cache {sweep['cache_warm_s']:.4f}s "
            f"({sweep['warm_cache_speedup']:.1f}x)"
        )
    for app, workload in report["workloads"].items():
        rows.append(
            f"  workload {app}: build {workload['build_s']:.3f}s, "
            f"attach {workload['attach_s']:.3f}s "
            f"({workload['attach_speedup']:.1f}x)"
        )
    print("benchmark report:", file=out)
    for row in rows:
        print(row, file=out)
    if report["jobs_effective"] < report["jobs"]:
        print(
            f"note: jobs={report['jobs']} requested but only "
            f"{report['cpu_count']} CPU(s) available "
            f"(jobs_effective={report['jobs_effective']}); parallel "
            "timings measure dispatch overhead, not speedup.",
            file=out,
        )
    print(f"written to {path}", file=out)
    if args.gate is not None:
        gate_path = Path(args.gate)
        if not gate_path.exists():
            print(f"error: gate baseline {gate_path} not found", file=out)
            return 2
        baseline = json.loads(gate_path.read_text(encoding="utf-8"))
        failures = check_kernel_regression(
            report, baseline, tolerance=args.gate_tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION {failure}", file=out)
            return 1
        print(
            f"kernel gate: within {args.gate_tolerance:.0%} of "
            f"{gate_path}",
            file=out,
        )
    return 0
