"""Content-addressed result cache for sweep points.

Results live as small JSON files under ``.repro-cache/<kk>/<key>.json``
(``kk`` = first two hex chars of the key, to keep directories shallow).
Each file stores both the full fingerprint and the result; reads verify
the stored fingerprint against the requested one so a (vanishingly
unlikely) hash collision or a corrupted file degrades to a miss, never
to a wrong answer.  Writes go through a temp file + ``os.replace`` so a
crash mid-write cannot leave a truncated entry behind.

Escape hatches: ``REPRO_NO_CACHE=1`` disables caching wherever
:func:`default_cache` is consulted, and ``REPRO_CACHE_DIR`` relocates
the store.  ``python -m repro cache {stats,clear}`` inspects and empties
it.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.obs.context import current as _current_obs
from repro.sweep.fingerprint import cache_key, point_fingerprint
from repro.sweep.points import PointResult, PointSpec

__all__ = ["CacheStats", "ResultCache", "default_cache"]

DEFAULT_CACHE_DIRNAME = ".repro-cache"


@dataclass
class CacheStats:
    """Counters for one :class:`ResultCache` instance's lifetime, plus a
    snapshot of what is on disk."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    entries: int = 0
    bytes: int = 0

    def summary(self) -> str:
        return (
            f"entries: {self.entries}\n"
            f"size: {self.bytes} bytes\n"
            f"hits: {self.hits}\n"
            f"misses: {self.misses}\n"
            f"stores: {self.stores}"
        )


class ResultCache:
    """A directory of content-addressed :class:`PointResult` files."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        obs = _current_obs()
        self._tracer = obs.tracer
        self._m_hits = obs.metrics.counter("sweep.cache.hits")
        self._m_misses = obs.metrics.counter("sweep.cache.misses")

    # -- keying -----------------------------------------------------------
    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup / store ---------------------------------------------------
    def get(self, spec: PointSpec) -> "PointResult | None":
        with self._tracer.span("cache.lookup", label=spec.label):
            result = self._get(spec)
        if result is None:
            self._m_misses.inc()
        else:
            self._m_hits.inc()
        return result

    def _get(self, spec: PointSpec) -> "PointResult | None":
        fingerprint = point_fingerprint(spec)
        path = self._path_for(cache_key(fingerprint))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("fingerprint") != fingerprint:
            # Key collision or corrupted entry: treat as a miss and let
            # the fresh result overwrite it.
            self.misses += 1
            return None
        try:
            result = PointResult.from_dict(payload["result"])
        except (KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, spec: PointSpec, result: PointResult) -> None:
        fingerprint = point_fingerprint(spec)
        path = self._path_for(cache_key(fingerprint))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"fingerprint": fingerprint, "result": result.to_dict()},
            sort_keys=True,
            indent=2,
        )
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # -- maintenance ------------------------------------------------------
    def _entry_paths(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Remove every cached entry; returns how many were removed."""
        removed = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
            try:
                path.parent.rmdir()
            except OSError:
                pass  # not empty yet / already gone
        return removed

    def stats(self) -> CacheStats:
        paths = self._entry_paths()
        size = 0
        for path in paths:
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            entries=len(paths),
            bytes=size,
        )


def default_cache(root: "str | Path | None" = None) -> "ResultCache | None":
    """The process-wide cache policy.

    Returns ``None`` (caching off) when ``REPRO_NO_CACHE`` is set to a
    non-empty value, else a cache rooted at ``root``, ``REPRO_CACHE_DIR``,
    or ``./.repro-cache`` in that order.
    """
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIRNAME
    return ResultCache(root)
