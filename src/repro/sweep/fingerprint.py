"""Content-addressed fingerprints for sweep points.

A point's cache key must change whenever anything that could change its
result changes: the application name and every perf-model coefficient,
the backend kind and every field of its configuration (instance type,
shape, seed, fault plan, ...), the task set, and a repro version salt
(bumped when the simulator's semantics change so stale caches
self-invalidate).  Everything is canonicalized to plain JSON types and
hashed with SHA-256.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import TYPE_CHECKING, Any, Iterable

from repro.core.task import TaskSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sweep.points import PointSpec

__all__ = [
    "CACHE_SALT",
    "cache_key",
    "canonicalize",
    "point_fingerprint",
    "task_digest",
]

#: Version salt baked into every cache key.  Bump the trailing number
#: whenever the simulator's observable behaviour changes (perf-model
#: semantics, billing rules, scheduling policies) so previously cached
#: results miss instead of silently serving stale data.
CACHE_SALT = "repro-sweep-v3"  # v3: PointResult extras carry phase_*_s totals


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to JSON-stable plain data, deterministically.

    Dataclasses become ``{"field": ...}`` dicts (recursing by declared
    field order), sets/frozensets become sorted lists, tuples become
    lists.  Anything already JSON-representable passes through.
    """
    if is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonicalize(getattr(value, f.name))
            for f in fields(value)
        }
    if isinstance(value, dict):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if isinstance(value, (set, frozenset)):
        return sorted(canonicalize(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Last resort for exotic config payloads: a stable repr.  Callables
    # land here too — they cannot be fingerprinted reliably, so points
    # carrying them should not be cached in the first place.
    return repr(value)


def task_digest(tasks: Iterable[TaskSpec]) -> str:
    """SHA-256 over every field of every task, in task order."""
    hasher = hashlib.sha256()
    for task in tasks:
        hasher.update(
            (
                f"{task.task_id}\x1f{task.input_key}\x1f{task.output_key}"
                f"\x1f{task.input_size}\x1f{task.output_size}"
                f"\x1f{task.work_units!r}\n"
            ).encode("utf-8")
        )
    return hasher.hexdigest()


def point_fingerprint(spec: "PointSpec") -> dict:
    """The full canonical key dict for one sweep point."""
    return {
        "salt": CACHE_SALT,
        "app": canonicalize(spec.app),
        "backend": {
            "kind": spec.backend_kind,
            "config": canonicalize(spec.backend_config),
        },
        "tasks": {"digest": task_digest(spec.tasks), "count": len(spec.tasks)},
    }


def cache_key(fingerprint: dict) -> str:
    """Content address: SHA-256 of the canonical JSON of the fingerprint."""
    text = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
