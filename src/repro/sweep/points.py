"""Declarative sweep points: picklable, fingerprintable, rebuildable.

A sweep point is one ``(app, backend, tasks)`` simulation.  To fan
points out over worker processes they must be picklable, and to cache
their results they must be fingerprintable — so a :class:`PointSpec`
carries *descriptions* (the app's perf model and the backend's frozen
config dataclass) rather than live objects, and rebuilds both inside
:func:`run_point`.  Backends the registry doesn't know how to describe
(test doubles, the real-execution local backend whose app needs an
executable factory) fall back to :class:`InlinePoint`: executed in the
parent process against the original objects, never cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.perfmodels import TaskPerfModel
from repro.core.application import Application
from repro.core.backends import (
    ClassicCloudBackend,
    DryadLinqBackend,
    HadoopBackend,
)
from repro.core.task import TaskSpec

__all__ = [
    "AppSpec",
    "InlinePoint",
    "PointResult",
    "PointSpec",
    "point_for",
    "run_point",
    "run_point_captured",
]


@dataclass(frozen=True)
class AppSpec:
    """Everything a *simulated* backend needs of an Application.

    Deliberately excludes ``executable_factory`` (unused by simulation,
    frequently an unpicklable closure); points whose backend would call
    it must go inline instead.
    """

    name: str
    perf_model: TaskPerfModel
    preload_bytes: int
    preload_extract_seconds: float
    threads_per_worker: int

    @classmethod
    def from_application(cls, app: Application) -> "AppSpec":
        return cls(
            name=app.name,
            perf_model=app.perf_model,
            preload_bytes=app.preload_bytes,
            preload_extract_seconds=app.preload_extract_seconds,
            threads_per_worker=app.threads_per_worker,
        )

    def build(self) -> Application:
        return Application(
            name=self.name,
            perf_model=self.perf_model,
            preload_bytes=self.preload_bytes,
            preload_extract_seconds=self.preload_extract_seconds,
            threads_per_worker=self.threads_per_worker,
        )


#: Backend classes the spec layer can describe and rebuild from config.
_BACKEND_KINDS = {
    ClassicCloudBackend: "classiccloud",
    HadoopBackend: "hadoop",
    DryadLinqBackend: "dryadlinq",
}

_BACKEND_BUILDERS = {
    "classiccloud": ClassicCloudBackend,
    "hadoop": HadoopBackend,
    "dryadlinq": DryadLinqBackend,
}


@dataclass(frozen=True)
class PointSpec:
    """One independent sweep point, ready to ship to a worker process."""

    app: AppSpec
    backend_kind: str
    backend_config: object  # the backend's frozen config dataclass
    tasks: tuple[TaskSpec, ...]
    label: str

    def build_backend(self):
        try:
            builder = _BACKEND_BUILDERS[self.backend_kind]
        except KeyError:
            raise ValueError(
                f"unknown backend kind {self.backend_kind!r}; "
                f"known: {sorted(_BACKEND_BUILDERS)}"
            ) from None
        return builder(self.backend_config)


@dataclass
class InlinePoint:
    """A point that must run in-process against live objects (uncached)."""

    app: Application
    backend: object
    tasks: list[TaskSpec]
    label: str


@dataclass(frozen=True)
class PointResult:
    """The plain-data outcome of one point — what gets cached and
    shipped back across the process boundary."""

    label: str
    backend: str
    cores: int
    n_tasks: int
    makespan_s: float
    t1_s: float
    billed: bool
    compute_cost: float
    amortized_cost: float
    total_cost: float
    #: Numeric run extras (queue stats, autoscale counters, ...) copied
    #: from RunResult.extras — floats only, so the JSON round-trip
    #: through the cache is exact.
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "backend": self.backend,
            "cores": self.cores,
            "n_tasks": self.n_tasks,
            "makespan_s": self.makespan_s,
            "t1_s": self.t1_s,
            "billed": self.billed,
            "compute_cost": self.compute_cost,
            "amortized_cost": self.amortized_cost,
            "total_cost": self.total_cost,
            "extras": {k: self.extras[k] for k in sorted(self.extras)},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PointResult":
        return cls(
            label=data["label"],
            backend=data["backend"],
            cores=data["cores"],
            n_tasks=data["n_tasks"],
            makespan_s=data["makespan_s"],
            t1_s=data["t1_s"],
            billed=data["billed"],
            compute_cost=data["compute_cost"],
            amortized_cost=data["amortized_cost"],
            total_cost=data["total_cost"],
            extras=dict(data.get("extras", {})),
        )


def _label_for(backend) -> str:
    """The paper's axis label: the config's label if it has one."""
    return getattr(getattr(backend, "config", None), "label", backend.name)


def point_for(
    app: Application, backend, tasks: list[TaskSpec]
) -> "PointSpec | InlinePoint":
    """Describe ``(app, backend, tasks)`` as a spec if possible.

    Returns a picklable :class:`PointSpec` for the simulated backends,
    or an :class:`InlinePoint` for anything the registry cannot rebuild
    from plain data.
    """
    kind = _BACKEND_KINDS.get(type(backend))
    if kind is None:
        return InlinePoint(
            app=app, backend=backend, tasks=list(tasks),
            label=_label_for(backend),
        )
    return PointSpec(
        app=AppSpec.from_application(app),
        backend_kind=kind,
        backend_config=backend.config,
        tasks=tuple(tasks),
        label=_label_for(backend),
    )


def _measure(backend, app: Application, tasks: list[TaskSpec], label: str):
    result = backend.run(app, tasks)
    t1 = backend.estimate_sequential_time(app, tasks)
    billing = result.billing
    extras = {
        k: float(v)
        for k, v in sorted((result.extras or {}).items())
        if isinstance(v, (int, float))
    }
    # Absolute per-phase seconds from the TaskRecords.  Records are
    # dropped from the cached plain-data result, so this is the only
    # place phase totals survive the process/cache boundary — merged
    # traces are checked against these (phase-agreement invariant).
    records = result.records or []
    extras["phase_download_s"] = float(sum(r.download_time for r in records))
    extras["phase_compute_s"] = float(sum(r.compute_time for r in records))
    extras["phase_upload_s"] = float(sum(r.upload_time for r in records))
    return PointResult(
        label=label,
        backend=backend.name,
        cores=backend.total_cores,
        n_tasks=len(tasks),
        makespan_s=result.makespan_seconds,
        t1_s=t1,
        billed=billing is not None,
        compute_cost=billing.compute_cost if billing else 0.0,
        amortized_cost=billing.total_amortized_cost if billing else 0.0,
        total_cost=billing.total_cost if billing else 0.0,
        extras=extras,
    )


def run_point(spec: PointSpec) -> PointResult:
    """Execute one spec'd point (this is what worker processes run)."""
    return _measure(
        spec.build_backend(), spec.app.build(), list(spec.tasks), spec.label
    )


def run_point_captured(spec: PointSpec) -> "tuple[PointResult, dict]":
    """Execute one point under a fresh, private observability bundle.

    Each point gets its own tracer/registry/timeline (points in one
    worker process must not share a sim-time axis), and the capture is
    returned as a picklable payload for the parent to adopt.
    """
    from repro.obs.context import Observability, observe, worker_payload

    obs = Observability.make(label=spec.label)
    with observe(obs):
        result = run_point(spec)
    return result, worker_payload(obs, label=spec.label)


def run_inline(point: InlinePoint) -> PointResult:
    """Execute an inline point against its live objects."""
    return _measure(point.backend, point.app, point.tasks, point.label)
