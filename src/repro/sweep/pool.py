"""Persistent worker pool for parallel sweeps.

The old runner paid a fresh ``ProcessPoolExecutor`` spawn — interpreter
start, ``repro`` import, pickle round-trips — for *every* ``run_points``
call, which is why BENCH_2 measured parallel sweeps *slower* than serial
on small point counts.  :class:`SweepPool` amortizes that cost: workers
are spawned lazily on the first submission, warmed by an initializer
that pre-imports the heavy ``repro`` modules, and then reused across
``run_points`` calls, studies, and the bench suite.

Dispatch is *chunked*: callers submit lists of :class:`~repro.sweep.
points.PointSpec` and each chunk crosses the process boundary as one
pickle, one future, and one result message instead of n of each.

Lifecycle: ``close()`` or use the pool as a context manager.  Most code
should go through :func:`shared_pool`, a process-wide singleton that is
recycled automatically when the requested worker count changes and torn
down at interpreter exit.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Sequence

from repro.obs.context import current as _current_obs
from repro.sweep.points import (
    PointResult,
    PointSpec,
    run_point,
    run_point_captured,
)

__all__ = ["SweepPool", "shared_pool", "shutdown_shared_pool"]


def _warm_worker() -> None:
    """Run once in every worker at spawn: pull the heavy imports forward
    so the first real point does not pay them.

    Under the default ``fork`` start method the modules are inherited
    from the parent anyway; under ``spawn``/``forkserver`` this is where
    the import cost is paid, once per worker instead of once per task.
    """
    import repro.apps.perfmodels  # noqa: F401
    import repro.classiccloud.framework  # noqa: F401
    import repro.core.backends  # noqa: F401
    import repro.sweep.points  # noqa: F401
    import repro.workloads.genome  # noqa: F401
    import repro.workloads.protein  # noqa: F401
    import repro.workloads.pubchem  # noqa: F401


def _run_chunk(specs: "list[PointSpec]", capture: bool = False):
    """Worker-side entry point: execute one chunk of specs in order.

    With ``capture=False`` (the default) returns a plain list of
    :class:`PointResult`.  With ``capture=True`` — set when the parent's
    observability bundle is live — each point runs under its own fresh
    worker-side bundle (see :func:`repro.sweep.points.
    run_point_captured`) and the return value is ``(results,
    payloads)``, where each payload is the picklable capture the parent
    merges into its trace.
    """
    if not capture:
        return [run_point(spec) for spec in specs]
    results: "list[PointResult]" = []
    payloads: list[dict] = []
    for spec in specs:
        result, payload = run_point_captured(spec)
        results.append(result)
        payloads.append(payload)
    return results, payloads


class SweepPool:
    """A lazily-started, reusable process pool for sweep points.

    The underlying ``ProcessPoolExecutor`` is created on the first
    :meth:`submit_chunk` call, not in ``__init__``, so building a pool
    object is free and serial code paths never spawn processes.
    """

    def __init__(self, workers: int):
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise TypeError(f"workers must be an int, got {workers!r}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._executor: "ProcessPoolExecutor | None" = None
        self._lock = threading.Lock()
        self.spawns = 0  # cold executor starts over this pool's lifetime
        self.submissions = 0  # chunks submitted
        self.reuses = 0  # submissions that found the executor already warm

    # -- lifecycle --------------------------------------------------------
    def _ensure_executor(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers, initializer=_warm_worker
                )
                self.spawns += 1
                _current_obs().metrics.counter("sweep.pool.spawns").inc()
            else:
                self.reuses += 1
                _current_obs().metrics.counter("sweep.pool.reuses").inc()
            return self._executor

    @property
    def started(self) -> bool:
        return self._executor is not None

    def close(self) -> None:
        """Shut the workers down; the pool restarts lazily if reused."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- dispatch ---------------------------------------------------------
    def submit_chunk(
        self, specs: Sequence[PointSpec], capture: bool = False
    ) -> "Future":
        """Submit one chunk; the future resolves to a list of
        :class:`PointResult` in the chunk's order (or to
        ``(results, payloads)`` when ``capture`` is set — see
        :func:`_run_chunk`)."""
        executor = self._ensure_executor()
        self.submissions += 1
        metrics = _current_obs().metrics
        metrics.counter("sweep.pool.chunks").inc()
        metrics.counter("sweep.pool.chunk_points").inc(len(specs))
        try:
            return executor.submit(_run_chunk, list(specs), capture)
        except RuntimeError:
            # A broken/shutdown executor: recycle once and retry.
            self.close()
            return self._ensure_executor().submit(
                _run_chunk, list(specs), capture
            )

    def stats(self) -> "dict[str, int]":
        return {
            "workers": self.workers,
            "spawns": self.spawns,
            "submissions": self.submissions,
            "reuses": self.reuses,
        }


_shared: "SweepPool | None" = None
_shared_lock = threading.Lock()


def shared_pool(workers: int) -> SweepPool:
    """The process-wide pool, recycled when ``workers`` changes.

    Successive ``run_points`` calls (and whole studies / bench suites)
    asking for the same worker count get the *same* warm pool back;
    asking for a different count closes the old pool and starts fresh.
    """
    global _shared
    with _shared_lock:
        if _shared is not None and _shared.workers != workers:
            stale, _shared = _shared, None
        else:
            stale = None
    if stale is not None:
        stale.close()
    with _shared_lock:
        if _shared is None:
            _shared = SweepPool(workers)
        return _shared


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (no-op when none was ever started)."""
    global _shared
    with _shared_lock:
        pool, _shared = _shared, None
    if pool is not None:
        pool.close()


atexit.register(shutdown_shared_pool)
