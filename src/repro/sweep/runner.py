"""Fan sweep points out over worker processes, deterministically.

:func:`run_points` takes a mixed list of :class:`~repro.sweep.points.
PointSpec` and :class:`~repro.sweep.points.InlinePoint` and returns one
:class:`~repro.sweep.points.PointResult` per input, **in input order**,
regardless of which worker finishes first.  Specs are looked up in the
cache first (when one is given); the remaining ones are executed and
freshly computed results are stored back.  Parallel execution goes
through the persistent :class:`~repro.sweep.pool.SweepPool` in
*chunks* — each worker receives a contiguous slice of specs as a single
pickle instead of one submission per point — so repeated ``run_points``
calls reuse warm workers instead of respawning a pool every time.
Inline points always run in the parent process and are never cached.
When the ambient observability bundle is live, chunks are submitted
with worker-side capture: each worker installs a private tracer per
point and the parent adopts the shipped spans/metrics, so a traced
``--jobs N`` sweep exports one merged multi-process Chrome trace.

Sanitized runs (``REPRO_SANITIZE`` with a DES token) bypass the cache
*and* the worker pool: they exist to observe the simulation in-process,
so every point executes inline and nothing is served from or stored to
the cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.obs.context import current as _current_obs
from repro.sweep.cache import ResultCache
from repro.sweep.points import (
    InlinePoint,
    PointResult,
    PointSpec,
    run_inline,
    run_point,
)

if TYPE_CHECKING:
    from repro.sweep.pool import SweepPool

__all__ = ["PointProgress", "resolve_jobs", "run_points"]

# Target chunks per worker: >1 so a slow chunk does not leave the other
# workers idle for its whole duration, small enough that the per-chunk
# dispatch overhead stays amortized.
_CHUNKS_PER_WORKER = 2


@dataclass(frozen=True)
class PointProgress:
    """One live progress notification from :func:`run_points`.

    ``status`` is ``"start"`` (the point began executing), ``"done"``
    (its result is in), or ``"cache-hit"`` (served from the result
    cache without executing).  Cache hits emit a single notification;
    executed points emit ``start`` then ``done``.
    """

    index: int  # position in the input list
    label: str
    status: str  # "start" | "done" | "cache-hit"
    total: int  # len(points), for "k/n" displays


def resolve_jobs(jobs: "int | None" = None) -> int:
    """Worker-count policy: explicit argument > ``REPRO_JOBS`` env var >
    ``os.cpu_count()``.

    Invalid values — zero, negatives, non-integers — are rejected with
    a clear error rather than silently clamped: a user who exported
    ``REPRO_JOBS=0`` asked for something impossible and should hear
    about it, not get a surprise serial run.
    """
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return os.cpu_count() or 1
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer, got {env!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_JOBS must be a positive integer, got {env!r}"
            )
        return value
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise TypeError(f"jobs must be a positive integer, got {jobs!r}")
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer, got {jobs}")
    return jobs


def _sanitizing() -> bool:
    # Only DES-sanitizing tokens force inline execution and bypass the
    # cache: the thread sanitizer (REPRO_SANITIZE=threads) instruments
    # the *threaded* runtimes and does not change simulated results, so
    # cached points stay valid and workers stay usable.
    raw = os.environ.get("REPRO_SANITIZE", "")
    tokens = {t for t in raw.replace(",", " ").lower().split() if t}
    return bool(tokens - {"threads", "0", "false", "off"})


def _chunk_pending(
    pending: "list[tuple[int, PointSpec]]", workers: int
) -> "list[list[tuple[int, PointSpec]]]":
    """Split pending points into contiguous chunks, preserving order.

    Contiguity is what lets the collector stream ``done`` events in
    input order as each chunk future resolves.
    """
    n_chunks = min(len(pending), workers * _CHUNKS_PER_WORKER)
    base, extra = divmod(len(pending), n_chunks)
    chunks = []
    at = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(pending[at : at + size])
        at += size
    return chunks


def run_points(
    points: "list[PointSpec | InlinePoint]",
    *,
    jobs: "int | None" = None,
    cache: "ResultCache | None" = None,
    progress: "Callable[[PointProgress], None] | None" = None,
    pool: "SweepPool | None" = None,
) -> list[PointResult]:
    """Execute every point; results come back in input order.

    ``progress`` is invoked from the parent process with one
    :class:`PointProgress` per lifecycle event (start / done /
    cache-hit); exceptions it raises propagate to the caller.  ``pool``
    overrides the process-wide shared :class:`SweepPool`; callers that
    pass one own its lifecycle.
    """
    jobs = resolve_jobs(jobs)
    sanitizing = _sanitizing()
    use_cache = cache is not None and not sanitizing
    total = len(points)
    obs = _current_obs()
    metrics = obs.metrics
    tracer = obs.tracer
    m_points = metrics.counter("sweep.points_run")

    def notify(index: int, label: str, status: str) -> None:
        if progress is not None:
            progress(PointProgress(index, label, status, total))

    results: "list[PointResult | None]" = [None] * len(points)
    pending: "list[tuple[int, PointSpec]]" = []
    for index, point in enumerate(points):
        if isinstance(point, PointSpec):
            if use_cache:
                hit = cache.get(point)
                if hit is not None:
                    results[index] = hit
                    # Annotate the hit on the parent's own track: the
                    # point never reaches a worker, so this instant is
                    # its only footprint in a merged trace.
                    tracer.instant(
                        "sweep.cache_hit",
                        track="sweep",
                        label=point.label,
                        index=index,
                    )
                    notify(index, point.label, "cache-hit")
                    continue
            pending.append((index, point))
        else:
            # Inline points hold live objects; run them here, uncached.
            notify(index, point.label, "start")
            results[index] = run_inline(point)
            m_points.inc()
            notify(index, point.label, "done")

    if len(pending) <= 1 or jobs == 1 or sanitizing:
        for index, spec in pending:
            notify(index, spec.label, "start")
            results[index] = run_point(spec)
            m_points.inc()
            if use_cache:
                cache.put(spec, results[index])
            notify(index, spec.label, "done")
        return results  # type: ignore[return-value]

    if pool is None:
        from repro.sweep.pool import shared_pool

        pool = shared_pool(jobs)
    chunks = _chunk_pending(pending, min(jobs, len(pending)))
    metrics.counter("sweep.pool.runs").inc()
    # When the parent bundle is live, ask workers to capture their own
    # spans/metrics per point and ship them back with the results.
    capture = obs.enabled
    futures = []
    for chunk in chunks:
        futures.append(
            pool.submit_chunk([spec for _, spec in chunk], capture=capture)
        )
        tracer.instant(
            "sweep.chunk_dispatched", track="sweep", size=len(chunk)
        )
        for index, spec in chunk:
            notify(index, spec.label, "start")
    # Collect in submission order: chunks are contiguous slices of the
    # input, so result ordering is decided by the input list, never by
    # completion order.
    for chunk, future in zip(chunks, futures):
        value = future.result()
        if capture:
            chunk_results, payloads = value
            for payload in payloads:
                obs.adopt_worker(payload)
        else:
            chunk_results = value
        for (index, spec), result in zip(chunk, chunk_results):
            results[index] = result
            m_points.inc()
            if use_cache:
                cache.put(spec, result)
            notify(index, spec.label, "done")
    return results  # type: ignore[return-value]
