"""Fan sweep points out over worker processes, deterministically.

:func:`run_points` takes a mixed list of :class:`~repro.sweep.points.
PointSpec` and :class:`~repro.sweep.points.InlinePoint` and returns one
:class:`~repro.sweep.points.PointResult` per input, **in input order**,
regardless of which worker finishes first.  Specs are looked up in the
cache first (when one is given), the remaining ones are executed — in a
``ProcessPoolExecutor`` when more than one job is allowed, serially
in-process otherwise — and freshly computed results are stored back.
Inline points always run in the parent process and are never cached.

Caching is bypassed entirely while the runtime sanitizer is active
(``REPRO_SANITIZE``): sanitized runs exist to *observe* the simulation,
and serving a cached result would skip the instrumented run.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.obs.context import current as _current_obs
from repro.sweep.cache import ResultCache
from repro.sweep.points import (
    InlinePoint,
    PointResult,
    PointSpec,
    run_inline,
    run_point,
)

__all__ = ["PointProgress", "resolve_jobs", "run_points"]


@dataclass(frozen=True)
class PointProgress:
    """One live progress notification from :func:`run_points`.

    ``status`` is ``"start"`` (the point began executing), ``"done"``
    (its result is in), or ``"cache-hit"`` (served from the result
    cache without executing).  Cache hits emit a single notification;
    executed points emit ``start`` then ``done``.
    """

    index: int  # position in the input list
    label: str
    status: str  # "start" | "done" | "cache-hit"
    total: int  # len(points), for "k/n" displays


def resolve_jobs(jobs: "int | None" = None) -> int:
    """Worker-count policy: explicit argument > ``REPRO_JOBS`` env var >
    ``os.cpu_count()``; always at least 1."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_JOBS must be an integer, got {env!r}"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _sanitizing() -> bool:
    # Only DES-sanitizing tokens bypass the cache: the thread sanitizer
    # (REPRO_SANITIZE=threads) instruments the *threaded* runtimes and
    # does not change simulated results, so cached points stay valid.
    raw = os.environ.get("REPRO_SANITIZE", "")
    tokens = {t for t in raw.replace(",", " ").lower().split() if t}
    return bool(tokens - {"threads", "0", "false", "off"})


def run_points(
    points: "list[PointSpec | InlinePoint]",
    *,
    jobs: "int | None" = None,
    cache: "ResultCache | None" = None,
    progress: "Callable[[PointProgress], None] | None" = None,
) -> list[PointResult]:
    """Execute every point; results come back in input order.

    ``progress`` is invoked from the parent process with one
    :class:`PointProgress` per lifecycle event (start / done /
    cache-hit); exceptions it raises propagate to the caller.
    """
    jobs = resolve_jobs(jobs)
    use_cache = cache is not None and not _sanitizing()
    total = len(points)
    metrics = _current_obs().metrics
    m_points = metrics.counter("sweep.points_run")

    def notify(index: int, label: str, status: str) -> None:
        if progress is not None:
            progress(PointProgress(index, label, status, total))

    results: "list[PointResult | None]" = [None] * len(points)
    pending: "list[tuple[int, PointSpec]]" = []
    for index, point in enumerate(points):
        if isinstance(point, PointSpec):
            if use_cache:
                hit = cache.get(point)
                if hit is not None:
                    results[index] = hit
                    notify(index, point.label, "cache-hit")
                    continue
            pending.append((index, point))
        else:
            # Inline points hold live objects; run them here, uncached.
            notify(index, point.label, "start")
            results[index] = run_inline(point)
            m_points.inc()
            notify(index, point.label, "done")

    if len(pending) <= 1 or jobs == 1:
        for index, spec in pending:
            notify(index, spec.label, "start")
            results[index] = run_point(spec)
            m_points.inc()
            if use_cache:
                cache.put(spec, results[index])
            notify(index, spec.label, "done")
        return results  # type: ignore[return-value]

    workers = min(jobs, len(pending))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = []
        for index, spec in pending:
            futures.append((index, spec, pool.submit(run_point, spec)))
            notify(index, spec.label, "start")
        # Collect in submission order: result ordering is decided by the
        # input list, never by completion order.
        for index, spec, future in futures:
            results[index] = future.result()
            m_points.inc()
            if use_cache:
                cache.put(spec, results[index])
            notify(index, spec.label, "done")
    return results  # type: ignore[return-value]
