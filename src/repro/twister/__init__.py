"""TwisterAzure: iterative MapReduce on cloud primitives (paper §8).

The paper's stated future work: "we are working on developing a
fully-fledged MapReduce framework with iterative-MapReduce support for
the Windows Azure Cloud infrastructure using Azure infrastructure
services as building blocks" (TwisterAzure, their reference [12]).

This package implements that extension:

* :mod:`repro.twister.engine` — a real map/shuffle/reduce engine over
  local threads (the paper's map-only framework generalized to full
  MapReduce);
* :mod:`repro.twister.iterative` — the Twister programming model:
  long-lived workers **cache static data** across iterations, so each
  iteration only broadcasts the small dynamic state (e.g. centroids);
* :mod:`repro.twister.kmeans` — K-means clustering, the canonical
  iterative-MapReduce application, implemented on the engine;
* :mod:`repro.twister.simulator` — per-iteration cost on the simulated
  Azure substrate, contrasting the naive Classic-Cloud-per-iteration
  approach (re-download static data every iteration) with Twister-style
  caching.
"""

from repro.twister.engine import MapReduceJob
from repro.twister.iterative import IterativeMapReduce, IterationResult
from repro.twister.kmeans import kmeans_mapreduce
from repro.twister.simulator import TwisterAzureSimulator, TwisterSimConfig

__all__ = [
    "IterationResult",
    "IterativeMapReduce",
    "MapReduceJob",
    "TwisterAzureSimulator",
    "TwisterSimConfig",
    "kmeans_mapreduce",
]
