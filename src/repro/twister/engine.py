"""A real map / shuffle / reduce engine on local threads.

Generalizes the paper's map-only pleasingly parallel framework to full
MapReduce: map tasks emit ``(key, value)`` pairs, the shuffle groups by
key, and reduce tasks fold each key's values.  Map and reduce fan out
over a thread pool; an optional combiner pre-aggregates map output
(Hadoop-style) to shrink the shuffle.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Hashable, Iterable

__all__ = ["MapReduceJob"]

MapFn = Callable[[Any], Iterable[tuple[Hashable, Any]]]
ReduceFn = Callable[[Hashable, list[Any]], Any]
CombineFn = Callable[[Hashable, list[Any]], Any]


class MapReduceJob:
    """One configured MapReduce computation.

    ``map_fn(item) -> iterable of (key, value)``;
    ``reduce_fn(key, values) -> result``;
    ``combiner(key, values) -> value`` optionally pre-aggregates each map
    task's output before the shuffle.
    """

    def __init__(
        self,
        map_fn: MapFn,
        reduce_fn: ReduceFn,
        combiner: CombineFn | None = None,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.combiner = combiner

    def run(
        self,
        items: list[Any],
        n_workers: int = 4,
        n_map_partitions: int | None = None,
    ) -> dict[Hashable, Any]:
        """Execute over ``items`` and return {key: reduced value}."""
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if not items:
            return {}
        if n_map_partitions is None:
            n_map_partitions = min(len(items), n_workers * 4)
        if n_map_partitions < 1:
            raise ValueError("n_map_partitions must be >= 1")
        partitions = _split(items, n_map_partitions)

        def map_partition(chunk: list[Any]) -> dict[Hashable, list[Any]]:
            grouped: dict[Hashable, list[Any]] = {}
            for item in chunk:
                for key, value in self.map_fn(item):
                    grouped.setdefault(key, []).append(value)
            if self.combiner is not None:
                grouped = {
                    key: [self.combiner(key, values)]
                    for key, values in grouped.items()
                }
            return grouped

        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            mapped = list(pool.map(map_partition, partitions))

            # Shuffle: merge the per-partition groups.
            shuffled: dict[Hashable, list[Any]] = {}
            for grouped in mapped:
                for key, values in grouped.items():
                    shuffled.setdefault(key, []).extend(values)

            keys = list(shuffled)
            reduced = list(
                pool.map(lambda k: self.reduce_fn(k, shuffled[k]), keys)
            )
        return dict(zip(keys, reduced))


def _split(items: list[Any], n: int) -> list[list[Any]]:
    """Near-equal contiguous chunks, dropping empties."""
    base, extra = divmod(len(items), n)
    chunks = []
    start = 0
    for i in range(n):
        count = base + (1 if i < extra else 0)
        if count:
            chunks.append(items[start : start + count])
        start += count
    return chunks
