"""The Twister iterative-MapReduce programming model.

Twister's observation (Ekanayake et al.): iterative algorithms re-read
the same *static* data every iteration while only a small *dynamic*
state (model parameters) changes.  Long-lived workers therefore cache
their static partition once; each iteration broadcasts the dynamic
state, maps over the cached partitions, reduces, merges, and tests for
convergence.

This is the real (thread-based) implementation of the model; the
cost-side contrast with per-iteration Classic Cloud dispatch lives in
:mod:`repro.twister.simulator`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

__all__ = ["IterationResult", "IterativeMapReduce"]

# map_fn(static_partition, dynamic_state) -> iterable of (key, value)
IterMapFn = Callable[[Any, Any], "list[tuple[Hashable, Any]]"]
ReduceFn = Callable[[Hashable, list[Any]], Any]
# merge_fn(reduced: dict, previous_state) -> next_state
MergeFn = Callable[[dict, Any], Any]
# converged(previous_state, next_state) -> bool
ConvergedFn = Callable[[Any, Any], bool]


@dataclass
class IterationResult:
    """Outcome of one :meth:`IterativeMapReduce.run`."""

    final_state: Any
    iterations: int
    converged: bool
    history: list[Any] = field(default_factory=list)


class IterativeMapReduce:
    """Iterate map/reduce/merge over cached static partitions."""

    def __init__(
        self,
        map_fn: IterMapFn,
        reduce_fn: ReduceFn,
        merge_fn: MergeFn,
    ):
        self.map_fn = map_fn
        self.reduce_fn = reduce_fn
        self.merge_fn = merge_fn

    def run(
        self,
        static_partitions: list[Any],
        initial_state: Any,
        max_iterations: int = 100,
        converged: ConvergedFn | None = None,
        n_workers: int = 4,
        keep_history: bool = False,
    ) -> IterationResult:
        """Iterate until ``converged`` or ``max_iterations``.

        ``static_partitions`` are distributed to (conceptual) workers
        once and reused every iteration — the Twister caching contract.
        """
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if not static_partitions:
            raise ValueError("need at least one static partition")
        state = initial_state
        history: list[Any] = []
        did_converge = False
        iterations = 0
        with ThreadPoolExecutor(max_workers=n_workers) as pool:
            for _ in range(max_iterations):
                iterations += 1
                # Map over cached partitions with the broadcast state.
                mapped = list(
                    pool.map(
                        lambda part: self.map_fn(part, state),
                        static_partitions,
                    )
                )
                shuffled: dict[Hashable, list[Any]] = {}
                for pairs in mapped:
                    for key, value in pairs:
                        shuffled.setdefault(key, []).append(value)
                reduced = {
                    key: self.reduce_fn(key, values)
                    for key, values in shuffled.items()
                }
                next_state = self.merge_fn(reduced, state)
                if keep_history:
                    history.append(next_state)
                if converged is not None and converged(state, next_state):
                    state = next_state
                    did_converge = True
                    break
                state = next_state
        return IterationResult(
            final_state=state,
            iterations=iterations,
            converged=did_converge,
            history=history,
        )
