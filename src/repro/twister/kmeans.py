"""K-means clustering as iterative MapReduce — the canonical Twister app.

Map (over a cached partition of points, with the broadcast centroids):
assign each point to its nearest centroid and emit, per centroid, the
partial (sum, count).  Reduce: total the partials.  Merge: divide to get
the new centroids.  Converge when no centroid moves more than ``tol``.
"""

from __future__ import annotations

import numpy as np

from repro.twister.iterative import IterationResult, IterativeMapReduce

__all__ = ["kmeans_mapreduce"]


def _assign_partition(points: np.ndarray, centroids: np.ndarray):
    """Map: per-centroid partial sums for one cached partition."""
    # (n, k) squared distances without materializing differences.
    sq = (
        (points * points).sum(axis=1)[:, None]
        - 2.0 * points @ centroids.T
        + (centroids * centroids).sum(axis=1)[None, :]
    )
    nearest = sq.argmin(axis=1)
    pairs = []
    for centroid_index in np.unique(nearest):
        members = points[nearest == centroid_index]
        pairs.append(
            (int(centroid_index), (members.sum(axis=0), members.shape[0]))
        )
    return pairs


def _total(key, partials):
    """Reduce: combine (sum, count) partials for one centroid."""
    total = partials[0][0].copy()
    for partial_sum, _ in partials[1:]:
        total += partial_sum
    count = sum(count for _, count in partials)
    return total, count


def _new_centroids(reduced: dict, previous: np.ndarray) -> np.ndarray:
    """Merge: divide sums by counts; empty clusters keep their position."""
    centroids = previous.copy()
    for centroid_index, (total, count) in reduced.items():
        if count > 0:
            centroids[centroid_index] = total / count
    return centroids


def _kmeans_plus_plus(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii): each next centroid is
    sampled proportionally to its squared distance from the chosen set,
    which avoids the cluster-collapse of uniform random seeding."""
    centroids = np.empty((n_clusters, points.shape[1]))
    centroids[0] = points[rng.integers(points.shape[0])]
    sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for i in range(1, n_clusters):
        total = sq.sum()
        if total <= 0:
            centroids[i:] = centroids[0]
            break
        chosen = rng.choice(points.shape[0], p=sq / total)
        centroids[i] = points[chosen]
        sq = np.minimum(sq, ((points - centroids[i]) ** 2).sum(axis=1))
    return centroids


def kmeans_mapreduce(
    points: np.ndarray,
    n_clusters: int,
    n_partitions: int = 4,
    max_iterations: int = 50,
    tol: float = 1e-6,
    n_workers: int = 4,
    seed: int = 0,
) -> tuple[np.ndarray, IterationResult]:
    """Cluster ``points`` (N x D); returns (centroids, iteration result).

    Initial centroids are a random sample of the points.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    if not 1 <= n_clusters <= points.shape[0]:
        raise ValueError("n_clusters must be in 1..len(points)")
    rng = np.random.default_rng(seed)
    initial = _kmeans_plus_plus(points, n_clusters, rng)

    partitions = np.array_split(points, n_partitions)
    partitions = [p for p in partitions if p.shape[0] > 0]

    def centroids_converged(old: np.ndarray, new: np.ndarray) -> bool:
        return float(np.abs(new - old).max()) < tol

    engine = IterativeMapReduce(
        map_fn=_assign_partition,
        reduce_fn=_total,
        merge_fn=_new_centroids,
    )
    result = engine.run(
        static_partitions=partitions,
        initial_state=initial,
        max_iterations=max_iterations,
        converged=centroids_converged,
        n_workers=n_workers,
    )
    return result.final_state, result
