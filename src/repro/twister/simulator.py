"""Per-iteration cost of iterative MapReduce on the Azure substrate.

Contrasts the two architectures the TwisterAzure work motivates:

* **naive** — each iteration is a fresh Classic Cloud job: every map
  task's message goes through the queue, and every worker re-downloads
  its static data partition from blob storage before computing;
* **twister** — workers are long-lived: static partitions download once
  (iteration 1); subsequent iterations only fetch the small dynamic
  state (broadcast via blob) and ship back small reduced outputs, with
  tasks dispatched through lightweight per-iteration messages.

The simulator plays both on the simulated Azure queue/blob services and
reports per-iteration and total times — quantifying why the paper's
authors bothered building TwisterAzure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instance_types import get_instance_type
from repro.cloud.queue import MessageQueue
from repro.cloud.storage import BlobStore
from repro.obs.context import current as _current_obs
from repro.sim.engine import make_environment
from repro.sim.rng import RngRegistry

__all__ = ["TwisterAzureSimulator", "TwisterSimConfig"]


@dataclass(frozen=True)
class TwisterSimConfig:
    """One iterative job's shape."""

    n_workers: int = 16
    instance_type: str = "Small"
    n_iterations: int = 10
    static_partition_bytes: int = 256_000_000  # per worker
    dynamic_state_bytes: int = 100_000  # broadcast per iteration
    compute_seconds_per_iteration: float = 5.0  # per worker, per iter
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_workers < 1 or self.n_iterations < 1:
            raise ValueError("workers and iterations must be >= 1")
        if self.static_partition_bytes < 0 or self.dynamic_state_bytes < 0:
            raise ValueError("sizes must be non-negative")


@dataclass(frozen=True)
class TwisterSimResult:
    """Outcome of one simulated iterative run."""

    mode: str
    total_seconds: float
    first_iteration_seconds: float
    steady_iteration_seconds: float
    per_iteration: tuple[float, ...]


class TwisterAzureSimulator:
    """Play an iterative job in 'naive' or 'twister' mode."""

    def __init__(self, config: TwisterSimConfig):
        self.config = config
        # Validate the instance type exists (Azure catalog).
        get_instance_type("azure", config.instance_type)

    def run(self, mode: str) -> TwisterSimResult:
        """``mode`` is 'naive' (re-download static data every iteration)
        or 'twister' (cache it on long-lived workers)."""
        if mode not in ("naive", "twister"):
            raise ValueError(f"unknown mode {mode!r}")
        config = self.config
        obs = _current_obs()
        tracer = obs.tracer
        env = make_environment()
        rng = RngRegistry(config.seed)
        storage = BlobStore(
            env, "twister-storage", rng.stream("storage"),
            consistency_window_s=0.0,
        )
        queue = MessageQueue(
            env, "twister-tasks", rng.stream("queue"), miss_probability=0.0
        )
        storage.stage("static", config.static_partition_bytes)
        storage.stage("dynamic", config.dynamic_state_bytes)
        iteration_times: list[float] = []

        def worker(first: bool, index: int, iteration: int):
            """One worker's single iteration."""
            msg = yield env.process(queue.receive())
            if msg is None:
                return
            track = f"{mode}-worker-{index}"
            t0 = env.now
            if mode == "naive" or first:
                yield env.process(storage.get("static"))
            yield env.process(storage.get("dynamic"))
            download_end = env.now
            yield env.timeout(config.compute_seconds_per_iteration)
            compute_end = env.now
            # Ship the (small) reduced output back.
            yield env.process(
                storage.put("out", config.dynamic_state_bytes)
            )
            upload_end = env.now
            yield env.process(queue.delete(msg))
            if tracer.enabled:
                tracer.add(
                    "task.download", track=track,
                    start=t0, end=download_end, iteration=iteration,
                )
                tracer.add(
                    "task.compute", track=track,
                    start=download_end, end=compute_end, iteration=iteration,
                )
                tracer.add(
                    "task.upload", track=track,
                    start=compute_end, end=upload_end, iteration=iteration,
                )

        def driver():
            for iteration in range(config.n_iterations):
                start = env.now
                for _ in range(config.n_workers):
                    yield env.process(queue.send("map"))
                barrier = env.all_of(
                    [
                        env.process(
                            worker(
                                first=(iteration == 0),
                                index=index,
                                iteration=iteration,
                            )
                        )
                        for index in range(config.n_workers)
                    ]
                )
                yield barrier
                # Merge + convergence check at the driver.
                yield env.process(storage.get("out"))
                yield env.process(
                    storage.put("dynamic", config.dynamic_state_bytes)
                )
                iteration_times.append(env.now - start)
                tracer.add(
                    "twister.iteration",
                    track=f"{mode}-driver",
                    start=start,
                    end=env.now,
                    iteration=iteration,
                    mode=mode,
                )

        process = env.process(driver())
        env.run(until=process)
        obs.metrics.counter("sim.events").inc(env.events_scheduled)
        iteration_hist = obs.metrics.histogram(
            f"twister.{mode}.iteration_seconds"
        )
        for seconds in iteration_times:
            iteration_hist.observe(seconds)
        return TwisterSimResult(
            mode=mode,
            total_seconds=env.now,
            first_iteration_seconds=iteration_times[0],
            steady_iteration_seconds=(
                iteration_times[-1]
                if len(iteration_times) == 1
                else sum(iteration_times[1:]) / (len(iteration_times) - 1)
            ),
            per_iteration=tuple(iteration_times),
        )

    def compare(self) -> dict[str, TwisterSimResult]:
        """Run both modes on identical parameters."""
        return {mode: self.run(mode) for mode in ("naive", "twister")}
