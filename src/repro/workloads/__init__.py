"""Synthetic workload generators.

The paper's data is either proprietary-scale (the 8.7 GB NR database, 26M
PubChem points) or trivially replicable (replicated FASTA files); these
generators produce the closest synthetic equivalents at any scale:

* :mod:`repro.workloads.genome` — shotgun read sets for Cap3, both
  replicated-homogeneous (the paper's scaling studies) and inhomogeneous
  (its load-balancing discussion);
* :mod:`repro.workloads.protein` — query bundles (100 queries/file,
  7–8 KB) and an NR-like protein database for BLAST;
* :mod:`repro.workloads.pubchem` — 166-dimensional descriptor vectors
  with a sample / out-of-sample split for GTM Interpolation.

Every generator can emit *real files* (for the local backend) and always
emits :class:`~repro.core.task.TaskSpec` lists (for the simulator).
File emission goes through :mod:`repro.workloads.store`, a
content-addressed artifact store under ``.repro-cache/workloads/`` that
materializes each dataset exactly once and hard-links it into place so
every consumer shares one read-only copy (``REPRO_NO_CACHE`` opts out).
"""

from repro.workloads.genome import (
    cap3_task_specs,
    generate_genome,
    generate_read_records,
    write_cap3_workload,
)
from repro.workloads.protein import (
    blast_task_specs,
    generate_protein_database,
    write_blast_workload,
)
from repro.workloads.pubchem import (
    generate_pubchem_points,
    gtm_task_specs,
    write_gtm_workload,
)
from repro.workloads.store import (
    WorkloadArtifact,
    WorkloadArtifactStore,
    default_artifact_store,
)

__all__ = [
    "WorkloadArtifact",
    "WorkloadArtifactStore",
    "blast_task_specs",
    "cap3_task_specs",
    "default_artifact_store",
    "generate_genome",
    "generate_protein_database",
    "generate_pubchem_points",
    "generate_read_records",
    "gtm_task_specs",
    "write_blast_workload",
    "write_cap3_workload",
    "write_gtm_workload",
]
