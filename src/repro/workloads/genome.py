"""Shotgun-sequencing workloads for Cap3.

The paper's Cap3 experiments use FASTA files of gene-sequence fragments:

* the instance-type study processes 200 files of 200 reads each;
* the scaling study uses a *replicated* set of 458-read files, making
  every task identical (homogeneous) so load balance is not a factor;
* the load-balancing discussion (their earlier study [13]) relies on
  *inhomogeneous* files whose assembly times differ.

Generators here produce both: replicated files (identical content) and
inhomogeneous files (lognormally distributed read counts).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.apps.fasta import FastaRecord, write_fasta
from repro.core.task import TaskSpec

__all__ = [
    "cap3_task_specs",
    "generate_genome",
    "generate_read_records",
    "write_cap3_workload",
]

_BASES = np.frombuffer(b"ACGT", dtype=np.uint8)
# Rough FASTA bytes per read: header (~12) + sequence + newlines.
_BYTES_PER_READ_FACTOR = 1.08


def generate_genome(length: int, rng: np.random.Generator) -> str:
    """A uniform-random DNA sequence."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return _BASES[rng.integers(0, 4, size=length)].tobytes().decode("ascii")


def generate_read_records(
    n_reads: int,
    read_length: int = 450,
    coverage: float = 8.0,
    error_rate: float = 0.005,
    poor_end_fraction: float = 0.3,
    both_strands: bool = False,
    rng: np.random.Generator | None = None,
    id_prefix: str = "read",
) -> list[FastaRecord]:
    """Shotgun reads from a fresh random genome.

    Genome length is derived from the requested coverage; read start
    positions are uniform; sequencing errors are uniform substitutions;
    a fraction of reads get a short low-quality (lowercase) tail, giving
    the trimming stage something real to do.  ``both_strands=True``
    samples each read's strand uniformly, as real shotgun sequencing
    does.
    """
    if n_reads < 1:
        raise ValueError("n_reads must be >= 1")
    rng = rng if rng is not None else np.random.default_rng(0)
    genome_length = max(read_length + 1, int(n_reads * read_length / coverage))
    genome = generate_genome(genome_length, rng)
    records = []
    starts = rng.integers(0, genome_length - read_length + 1, size=n_reads)
    for i, start in enumerate(sorted(starts.tolist())):
        fragment = genome[start : start + read_length]
        if both_strands and rng.random() < 0.5:
            from repro.apps.cap3 import reverse_complement

            fragment = reverse_complement(fragment)
        seq = list(fragment)
        n_errors = rng.binomial(read_length, error_rate)
        for pos in rng.integers(0, read_length, size=n_errors):
            seq[pos] = "ACGT"[rng.integers(0, 4)]
        if rng.random() < poor_end_fraction:
            tail = int(rng.integers(5, 25))
            seq[-tail:] = [c.lower() for c in seq[-tail:]]
        records.append(
            FastaRecord(id=f"{id_prefix}{i}", seq="".join(seq))
        )
    return records


def _read_counts(
    n_files: int,
    reads_per_file: int,
    inhomogeneous: bool,
    rng: np.random.Generator,
) -> list[int]:
    if not inhomogeneous:
        return [reads_per_file] * n_files
    # Lognormal spread around the mean, clipped to stay plausible.
    sigma = 0.55
    counts = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=n_files)
    counts = np.clip(counts * reads_per_file, reads_per_file * 0.2, None)
    return [int(round(c)) for c in counts]


def cap3_task_specs(
    n_files: int,
    reads_per_file: int = 458,
    read_length: int = 450,
    inhomogeneous: bool = False,
    seed: int = 0,
    key_prefix: str = "cap3",
) -> list[TaskSpec]:
    """Task descriptions for a Cap3 workload (simulator input).

    ``work_units`` is the file's read count — the quantity the Cap3
    performance model charges for.  Input sizes follow the paper's
    "hundreds of kilobytes" figure for typical files.
    """
    if n_files < 1:
        raise ValueError("n_files must be >= 1")
    rng = np.random.default_rng(seed)
    counts = _read_counts(n_files, reads_per_file, inhomogeneous, rng)
    specs = []
    for i, count in enumerate(counts):
        input_size = int(count * read_length * _BYTES_PER_READ_FACTOR)
        specs.append(
            TaskSpec(
                task_id=f"{key_prefix}-{i:05d}",
                input_key=f"{key_prefix}/in/{i:05d}.fa",
                output_key=f"{key_prefix}/out/{i:05d}.fa",
                input_size=input_size,
                # Assembly compresses reads into contigs: output smaller.
                output_size=int(input_size * 0.4),
                work_units=float(count),
            )
        )
    return specs


def _write_cap3_inputs(
    in_dir: Path,
    n_files: int,
    reads_per_file: int,
    read_length: int,
    replicated: bool,
    seed: int,
) -> list[float]:
    """Generate the FASTA input files into ``in_dir``; returns the
    per-file read counts (the Cap3 ``work_units``)."""
    rng = np.random.default_rng(seed)
    work_units = []
    base_records = None
    for i in range(n_files):
        if replicated:
            if base_records is None:
                base_records = generate_read_records(
                    reads_per_file, read_length, rng=rng
                )
            records = base_records
        else:
            count = _read_counts(1, reads_per_file, True, rng)[0]
            records = generate_read_records(count, read_length, rng=rng)
        write_fasta(records, in_dir / f"{i:05d}.fa")
        work_units.append(float(len(records)))
    return work_units


def write_cap3_workload(
    directory: str | Path,
    n_files: int,
    reads_per_file: int = 24,
    read_length: int = 200,
    replicated: bool = True,
    seed: int = 0,
    store: "object | str | None" = "auto",
) -> list[TaskSpec]:
    """Write real FASTA files for the local backend.

    With ``replicated=True`` every file has identical content (the
    paper's homogeneous scaling setup); otherwise each file gets a fresh
    genome and its own read count spread.

    ``store`` routes generation through the content-addressed workload
    artifact store (:mod:`repro.workloads.store`): the dataset is
    materialized once under ``.repro-cache/workloads/`` and hard-linked
    into ``directory/in`` — treat the attached inputs as read-only.
    ``"auto"`` follows the ``REPRO_NO_CACHE``/``REPRO_CACHE_DIR``
    policy; ``None`` generates in place.

    Returns specs whose ``input_key``/``output_key`` are file paths and
    whose sizes reflect the bytes actually written.
    """
    from repro.workloads.store import resolve_store

    directory = Path(directory)
    in_dir = directory / "in"
    (directory / "out").mkdir(parents=True, exist_ok=True)
    params = {
        "n_files": n_files,
        "reads_per_file": reads_per_file,
        "read_length": read_length,
        "replicated": replicated,
        "seed": seed,
    }
    artifact_store = resolve_store(store)
    if artifact_store is None:
        in_dir.mkdir(parents=True, exist_ok=True)
        work_units = _write_cap3_inputs(
            in_dir, n_files, reads_per_file, read_length, replicated, seed
        )
    else:
        artifact = artifact_store.materialize(
            "cap3",
            params,
            lambda tmp: {
                "work_units": _write_cap3_inputs(
                    tmp, n_files, reads_per_file, read_length, replicated,
                    seed,
                )
            },
        )
        artifact_store.attach(artifact, in_dir)
        work_units = artifact.extra["work_units"]
    specs = []
    for i, count in enumerate(work_units):
        input_path = in_dir / f"{i:05d}.fa"
        output_path = directory / "out" / f"{i:05d}.fa"
        specs.append(
            TaskSpec(
                task_id=f"cap3-local-{i:05d}",
                input_key=str(input_path),
                output_key=str(output_path),
                input_size=input_path.stat().st_size,
                output_size=int(input_path.stat().st_size * 0.4),
                work_units=float(count),
            )
        )
    return specs
