"""Protein search workloads for BLAST.

The paper bundles 100 protein queries per input file (7–8 KB files)
against NCBI's non-redundant database (8.7 GB).  The generators here
produce an NR-like database (with a controllable fraction of planted
homologs so searches find real hits) and query bundles — including the
paper's scaling setup: an inhomogeneous 128-file base set replicated one
to six times.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.apps.blast import AMINO_ACIDS, BlastDatabase
from repro.apps.fasta import FastaRecord, write_fasta
from repro.core.task import TaskSpec

__all__ = [
    "blast_task_specs",
    "generate_protein_database",
    "generate_query_records",
    "write_blast_workload",
]

_AA = np.frombuffer(AMINO_ACIDS.encode("ascii"), dtype=np.uint8)


def _random_protein(length: int, rng: np.random.Generator) -> str:
    return _AA[rng.integers(0, 20, size=length)].tobytes().decode("ascii")


def _mutate(seq: str, rate: float, rng: np.random.Generator) -> str:
    out = np.frombuffer(seq.encode("ascii"), dtype=np.uint8).copy()
    mask = rng.random(len(out)) < rate
    out[mask] = _AA[rng.integers(0, 20, size=int(mask.sum()))]
    return out.tobytes().decode("ascii")


def generate_protein_database(
    n_sequences: int = 50,
    mean_length: int = 300,
    seed: int = 0,
) -> BlastDatabase:
    """An NR-like database of random proteins."""
    if n_sequences < 1:
        raise ValueError("n_sequences must be >= 1")
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n_sequences):
        length = max(50, int(rng.normal(mean_length, mean_length * 0.2)))
        records.append(
            FastaRecord(id=f"nr{i:06d}", seq=_random_protein(length, rng))
        )
    return records_to_db(records)


def records_to_db(records: list[FastaRecord]) -> BlastDatabase:
    """Build the in-memory database from records."""
    return BlastDatabase(records)


def generate_query_records(
    db: BlastDatabase,
    n_queries: int,
    homolog_fraction: float = 0.5,
    identity: float = 0.8,
    query_length: int = 120,
    seed: int = 0,
    id_prefix: str = "q",
) -> list[FastaRecord]:
    """Query bundle: a mix of planted homologs and random decoys.

    Homologs are mutated fragments of database sequences (so the search
    has true positives to find); decoys are random proteins.
    """
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n_queries):
        if rng.random() < homolog_fraction:
            src = int(rng.integers(0, len(db)))
            seq = db.seqs[src]
            length = min(query_length, len(seq))
            start = int(rng.integers(0, len(seq) - length + 1))
            fragment = seq[start : start + length]
            query = _mutate(fragment, 1.0 - identity, rng)
            desc = f"homolog_of={db.ids[src]}"
        else:
            query = _random_protein(query_length, rng)
            desc = "decoy"
        records.append(
            FastaRecord(id=f"{id_prefix}{i:05d}", seq=query, description=desc)
        )
    return records


def blast_task_specs(
    n_files: int,
    queries_per_file: int = 100,
    base_set_size: int = 128,
    inhomogeneous_base: bool = True,
    seed: int = 0,
    key_prefix: str = "blast",
) -> list[TaskSpec]:
    """Task descriptions matching the paper's BLAST setup.

    Files beyond ``base_set_size`` replicate the base set's work profile
    (the paper replicates its inhomogeneous 128-file set one to six
    times).  Input files are 7–8 KB; outputs range up to megabytes.
    ``work_units`` is the query count, modulated per base file by the
    content-dependent search cost when ``inhomogeneous_base``.
    """
    if n_files < 1:
        raise ValueError("n_files must be >= 1")
    rng = np.random.default_rng(seed)
    if inhomogeneous_base:
        # Per-base-file work multipliers; replicas reuse them.
        sigma = 0.2
        multipliers = rng.lognormal(
            mean=-0.5 * sigma**2, sigma=sigma, size=base_set_size
        )
    else:
        multipliers = np.ones(base_set_size)
    specs = []
    for i in range(n_files):
        mult = float(multipliers[i % base_set_size])
        input_size = int(rng.integers(7_000, 8_193))
        output_size = int(rng.lognormal(mean=np.log(200_000), sigma=1.5))
        specs.append(
            TaskSpec(
                task_id=f"{key_prefix}-{i:05d}",
                input_key=f"{key_prefix}/in/{i:05d}.fa",
                output_key=f"{key_prefix}/out/{i:05d}.tsv",
                input_size=input_size,
                output_size=output_size,
                work_units=queries_per_file * mult,
            )
        )
    return specs


_DB_FILE = "database.fa"


def _write_blast_inputs(
    in_dir: Path,
    n_files: int,
    queries_per_file: int,
    db_sequences: int,
    seed: int,
) -> BlastDatabase:
    """Generate the query files plus the shared database FASTA into
    ``in_dir``; returns the in-memory database."""
    db = generate_protein_database(db_sequences, seed=seed)
    write_fasta(
        [FastaRecord(id=i, seq=s) for i, s in zip(db.ids, db.seqs)],
        in_dir / _DB_FILE,
    )
    for i in range(n_files):
        records = generate_query_records(
            db,
            queries_per_file,
            seed=seed + 1000 + i,
            id_prefix=f"f{i:03d}_q",
        )
        write_fasta(records, in_dir / f"{i:05d}.fa")
    return db


def write_blast_workload(
    directory: str | Path,
    n_files: int,
    queries_per_file: int = 10,
    db_sequences: int = 30,
    seed: int = 0,
    store: "object | str | None" = "auto",
) -> tuple[list[TaskSpec], BlastDatabase]:
    """Write real query files plus a database for the local backend.

    The shared NR-like database is written alongside the queries as
    ``in/database.fa`` — the paper's "shared working set" that every
    worker attaches rather than owning a private copy.  ``store``
    routes generation through the content-addressed workload artifact
    store (:mod:`repro.workloads.store`): the whole bundle is
    materialized once and hard-linked into ``directory/in`` — treat the
    attached inputs as read-only.  ``"auto"`` follows the
    ``REPRO_NO_CACHE``/``REPRO_CACHE_DIR`` policy; ``None`` generates
    in place.
    """
    from repro.apps.fasta import read_fasta
    from repro.workloads.store import resolve_store

    directory = Path(directory)
    in_dir = directory / "in"
    (directory / "out").mkdir(parents=True, exist_ok=True)
    params = {
        "n_files": n_files,
        "queries_per_file": queries_per_file,
        "db_sequences": db_sequences,
        "seed": seed,
    }
    artifact_store = resolve_store(store)
    db: "BlastDatabase | None" = None
    if artifact_store is None:
        in_dir.mkdir(parents=True, exist_ok=True)
        db = _write_blast_inputs(
            in_dir, n_files, queries_per_file, db_sequences, seed
        )
    else:

        def build(tmp: Path) -> dict:
            nonlocal db
            db = _write_blast_inputs(
                tmp, n_files, queries_per_file, db_sequences, seed
            )
            return {}

        artifact = artifact_store.materialize("blast", params, build)
        artifact_store.attach(artifact, in_dir)
        if db is None:
            # Cache hit: the builder never ran — reindex the shared
            # database file instead of regenerating every sequence.
            db = records_to_db(read_fasta(in_dir / _DB_FILE))
    specs = []
    for i in range(n_files):
        input_path = in_dir / f"{i:05d}.fa"
        output_path = directory / "out" / f"{i:05d}.tsv"
        specs.append(
            TaskSpec(
                task_id=f"blast-local-{i:05d}",
                input_key=str(input_path),
                output_key=str(output_path),
                input_size=input_path.stat().st_size,
                output_size=4096,
                work_units=float(queries_per_file),
            )
        )
    return specs, db
