"""PubChem-like workloads for GTM Interpolation.

The paper uses 26 million PubChem chemical-structure descriptors with 166
dimensions, pre-processed into a 100k-point training *sample* plus 264
out-of-sample files of 100k points each.  Real PubChem data is not
shipped here; a Gaussian-mixture generator produces vectors with the same
shape and clustered structure (166-bit MACCS-key descriptors are, after
preprocessing, dense clustered vectors — a mixture model is the standard
synthetic stand-in).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.task import TaskSpec

__all__ = [
    "generate_pubchem_points",
    "gtm_task_specs",
    "write_gtm_workload",
]

PUBCHEM_DIMENSIONS = 166
# .npz-compressed float64 vectors: ~half the raw bytes for clustered data.
_COMPRESSED_BYTES_PER_VALUE = 4.0


def generate_pubchem_points(
    n_points: int,
    dimensions: int = PUBCHEM_DIMENSIONS,
    n_clusters: int = 8,
    cluster_scale: float = 5.0,
    noise_scale: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Clustered descriptor vectors, (n_points, dimensions)."""
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=cluster_scale, size=(n_clusters, dimensions))
    assignments = rng.integers(0, n_clusters, size=n_points)
    return centers[assignments] + rng.normal(
        scale=noise_scale, size=(n_points, dimensions)
    )


def gtm_task_specs(
    n_files: int = 264,
    points_per_file: int = 100_000,
    dimensions: int = PUBCHEM_DIMENSIONS,
    seed: int = 0,
    key_prefix: str = "gtm",
) -> list[TaskSpec]:
    """Task descriptions matching the paper's GTM setup.

    264 files x 100k points, compressed splits (the paper unzips them
    before handing to the executable).  ``work_units`` is kilopoints.
    """
    if n_files < 1 or points_per_file < 1:
        raise ValueError("n_files and points_per_file must be >= 1")
    del seed  # homogeneous partitioning: no randomness needed
    input_size = int(
        points_per_file * dimensions * _COMPRESSED_BYTES_PER_VALUE
    )
    # Output: 2-D latent coordinates — orders of magnitude smaller.
    output_size = points_per_file * 2 * 8
    return [
        TaskSpec(
            task_id=f"{key_prefix}-{i:05d}",
            input_key=f"{key_prefix}/in/{i:05d}.npz",
            output_key=f"{key_prefix}/out/{i:05d}.npy",
            input_size=input_size,
            output_size=output_size,
            work_units=points_per_file / 1000.0,
        )
        for i in range(n_files)
    ]


_SAMPLE_FILE = "sample.npy"


def _write_gtm_inputs(
    in_dir: Path,
    n_files: int,
    points_per_file: int,
    dimensions: int,
    sample_points: int,
    seed: int,
) -> np.ndarray:
    """Generate the compressed splits plus the shared training sample
    into ``in_dir``; returns the sample array."""
    rng = np.random.default_rng(seed)
    centers_seed = int(rng.integers(0, 2**31))
    sample = generate_pubchem_points(
        sample_points, dimensions, seed=centers_seed
    )
    np.save(in_dir / _SAMPLE_FILE, sample)
    for i in range(n_files):
        # Out-of-sample points must come from the *same* distribution as
        # the sample: reuse the cluster geometry via the same seed, then
        # jitter with a per-file stream.
        file_rng = np.random.default_rng((seed, i))
        base = generate_pubchem_points(
            points_per_file, dimensions, seed=centers_seed
        )
        points = base + file_rng.normal(scale=0.05, size=base.shape)
        np.savez_compressed(in_dir / f"{i:05d}.npz", points=points)
    return sample


def write_gtm_workload(
    directory: str | Path,
    n_files: int,
    points_per_file: int = 500,
    dimensions: int = 16,
    sample_points: int = 300,
    seed: int = 0,
    store: "object | str | None" = "auto",
) -> tuple[list[TaskSpec], np.ndarray]:
    """Write real compressed splits plus a training sample.

    Returns (specs, sample) where ``sample`` is the in-sample training
    set the caller fits a GTM on before constructing the executable;
    the sample is also written alongside the splits as
    ``in/sample.npy``.  ``store`` routes generation through the
    content-addressed workload artifact store (:mod:`repro.workloads.
    store`): the dataset is materialized once and hard-linked into
    ``directory/in`` — treat the attached inputs as read-only.
    ``"auto"`` follows the ``REPRO_NO_CACHE``/``REPRO_CACHE_DIR``
    policy; ``None`` generates in place.
    """
    from repro.workloads.store import resolve_store

    directory = Path(directory)
    in_dir = directory / "in"
    (directory / "out").mkdir(parents=True, exist_ok=True)
    params = {
        "n_files": n_files,
        "points_per_file": points_per_file,
        "dimensions": dimensions,
        "sample_points": sample_points,
        "seed": seed,
    }
    artifact_store = resolve_store(store)
    if artifact_store is None:
        in_dir.mkdir(parents=True, exist_ok=True)
        sample = _write_gtm_inputs(
            in_dir, n_files, points_per_file, dimensions, sample_points,
            seed,
        )
    else:

        def build(tmp: Path) -> dict:
            _write_gtm_inputs(
                tmp, n_files, points_per_file, dimensions, sample_points,
                seed,
            )
            return {}

        artifact = artifact_store.materialize("gtm", params, build)
        artifact_store.attach(artifact, in_dir)
        # mmap the shared sample: consumers read the store's page-cache
        # copy instead of materializing a private array per process.
        sample = np.load(in_dir / _SAMPLE_FILE, mmap_mode="r")
    specs = []
    for i in range(n_files):
        input_path = in_dir / f"{i:05d}.npz"
        output_path = directory / "out" / f"{i:05d}.npy"
        specs.append(
            TaskSpec(
                task_id=f"gtm-local-{i:05d}",
                input_key=str(input_path),
                output_key=str(output_path),
                input_size=input_path.stat().st_size,
                output_size=points_per_file * 2 * 8,
                work_units=points_per_file / 1000.0,
            )
        )
    return specs, sample
