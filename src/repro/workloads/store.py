"""Content-addressed workload artifact store.

Synthetic datasets (Cap3 FASTA reads, BLAST NR-like databases + query
bundles, PubChem-like GTM splits) are deterministic functions of their
generator parameters and seed — there is no reason to regenerate the
same bytes for every sweep point, worker, or test that asks for them.
This store materializes each dataset **exactly once** under
``.repro-cache/workloads/<kk>/<key>/`` (a sibling of the sweep result
cache; ``kk`` = first two hex chars of the key) and lets later callers
*attach* the files read-only: payloads are hard-linked into the
destination when the filesystem allows it, so every consumer shares one
inode — and therefore one page-cache copy — instead of private
duplicates.  Copying is the cross-device fallback.

Keying follows :mod:`repro.sweep.cache`: the key is a SHA-256 digest of
generator name + parameters + a version salt, the full fingerprint is
stored in the artifact's ``MANIFEST.json`` and verified on read so a
collision or corrupted entry degrades to a rebuild, never a wrong
dataset.  Builds are crash-safe: the builder writes into a temp
directory that is renamed into place only when complete; losing a
rename race to a concurrent builder just means adopting the winner's
(identical) artifact.

``REPRO_NO_CACHE=1`` disables the store wherever
:func:`default_artifact_store` is consulted (generation then happens
in place, exactly as before this store existed) and
``REPRO_CACHE_DIR`` relocates it together with the result cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.context import current as _current_obs
from repro.sweep.cache import DEFAULT_CACHE_DIRNAME

__all__ = [
    "WorkloadArtifact",
    "WorkloadArtifactStore",
    "default_artifact_store",
    "resolve_store",
]

# Bump when generator output changes so stale artifacts self-invalidate.
ARTIFACT_SALT = "workload-store-v1"

_MANIFEST = "MANIFEST.json"


@dataclass(frozen=True)
class WorkloadArtifact:
    """One materialized dataset: its directory, payload file names (in
    manifest order), and whatever extra metadata the builder recorded."""

    path: Path
    files: "tuple[str, ...]"
    extra: dict = field(default_factory=dict)

    def file_path(self, name: str) -> Path:
        return self.path / name


class WorkloadArtifactStore:
    """A directory of content-addressed workload datasets."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        self.hits = 0
        self.builds = 0
        obs = _current_obs()
        self._tracer = obs.tracer
        self._m_hits = obs.metrics.counter("workload.store.hits")
        self._m_builds = obs.metrics.counter("workload.store.builds")

    # -- keying -----------------------------------------------------------
    @staticmethod
    def fingerprint(kind: str, params: dict) -> str:
        return json.dumps(
            {"kind": kind, "params": params, "salt": ARTIFACT_SALT},
            sort_keys=True,
            separators=(",", ":"),
        )

    def _dir_for(self, key: str) -> Path:
        return self.root / key[:2] / key

    # -- materialize ------------------------------------------------------
    def materialize(self, kind: str, params: dict, builder) -> WorkloadArtifact:
        """Return the artifact for ``(kind, params)``, building at most once.

        ``builder(directory)`` must write the payload files into
        ``directory`` and may return a JSON-serializable dict of extra
        metadata (per-file work units, auxiliary file names, ...) that
        is stored in the manifest and handed back on every later hit.
        """
        fingerprint = self.fingerprint(kind, params)
        key = hashlib.sha256(fingerprint.encode("ascii")).hexdigest()
        target = self._dir_for(key)
        artifact = self._load(target, fingerprint)
        if artifact is not None:
            self.hits += 1
            self._m_hits.inc()
            return artifact

        with self._tracer.span("workload.build", label=kind):
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = Path(
                tempfile.mkdtemp(dir=target.parent, prefix=f"{key}.tmp")
            )
            try:
                extra = builder(tmp) or {}
                files = sorted(
                    p.name for p in tmp.iterdir() if p.name != _MANIFEST
                )
                manifest = {
                    "fingerprint": fingerprint,
                    "files": files,
                    "extra": extra,
                }
                (tmp / _MANIFEST).write_text(
                    json.dumps(manifest, sort_keys=True, indent=2),
                    encoding="utf-8",
                )
                try:
                    os.rename(tmp, target)
                except OSError:
                    # Lost the race to a concurrent builder (or a stale
                    # corrupt artifact occupies the slot): adopt theirs
                    # if valid, else replace it.
                    artifact = self._load(target, fingerprint)
                    if artifact is not None:
                        shutil.rmtree(tmp, ignore_errors=True)
                        self.hits += 1
                        self._m_hits.inc()
                        return artifact
                    shutil.rmtree(target, ignore_errors=True)
                    os.rename(tmp, target)
            except BaseException:
                shutil.rmtree(tmp, ignore_errors=True)
                raise
        self.builds += 1
        self._m_builds.inc()
        return WorkloadArtifact(
            path=target, files=tuple(files), extra=extra
        )

    def _load(
        self, target: Path, fingerprint: str
    ) -> "WorkloadArtifact | None":
        try:
            manifest = json.loads(
                (target / _MANIFEST).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if manifest.get("fingerprint") != fingerprint:
            return None
        files = manifest.get("files")
        if not isinstance(files, list):
            return None
        if any(not (target / name).is_file() for name in files):
            return None  # partially deleted artifact: rebuild
        return WorkloadArtifact(
            path=target,
            files=tuple(files),
            extra=manifest.get("extra", {}),
        )

    # -- attach -----------------------------------------------------------
    def attach(self, artifact: WorkloadArtifact, dest: "str | Path") -> None:
        """Expose the artifact's payload files under ``dest``.

        Hard links where possible (one shared inode per file — readers
        mmap/read the same page-cache copy), byte copies across
        filesystems.  Existing destination entries are replaced
        atomically.
        """
        dest = Path(dest)
        dest.mkdir(parents=True, exist_ok=True)
        for name in artifact.files:
            source = artifact.file_path(name)
            final = dest / name
            tmp = dest / f".{name}.attach-{os.getpid()}"
            try:
                try:
                    os.link(source, tmp)
                except OSError:
                    shutil.copyfile(source, tmp)
                os.replace(tmp, final)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # -- maintenance ------------------------------------------------------
    def stats(self) -> "dict[str, int]":
        entries = 0
        size = 0
        if self.root.is_dir():
            for manifest in self.root.glob(f"*/*/{_MANIFEST}"):
                entries += 1
                for path in manifest.parent.iterdir():
                    try:
                        size += path.stat().st_size
                    except OSError:
                        pass
        return {
            "hits": self.hits,
            "builds": self.builds,
            "entries": entries,
            "bytes": size,
        }

    def clear(self) -> int:
        """Remove every artifact; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return 0
        for manifest in sorted(self.root.glob(f"*/*/{_MANIFEST}")):
            shutil.rmtree(manifest.parent, ignore_errors=True)
            removed += 1
            try:
                manifest.parent.parent.rmdir()
            except OSError:
                pass  # not empty yet / already gone
        return removed


def default_artifact_store(
    root: "str | Path | None" = None,
) -> "WorkloadArtifactStore | None":
    """The process-wide artifact-store policy.

    Returns ``None`` (store off — generate in place) when
    ``REPRO_NO_CACHE`` is set, else a store under ``<cache-root>/
    workloads`` where the cache root is ``root``, ``REPRO_CACHE_DIR``,
    or ``./.repro-cache`` in that order — always a sibling of the sweep
    result cache.
    """
    if os.environ.get("REPRO_NO_CACHE"):
        return None
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIRNAME
    return WorkloadArtifactStore(Path(root) / "workloads")


def resolve_store(
    store: "WorkloadArtifactStore | str | None",
) -> "WorkloadArtifactStore | None":
    """Normalize a ``store=`` argument: ``"auto"`` consults the default
    policy, ``None`` disables the store, anything else is used as-is."""
    if store == "auto":
        return default_artifact_store()
    if store is None:
        return None
    return store
