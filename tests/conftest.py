"""Shared test configuration: load the repro sanitizer pytest plugin.

The plugin adds ``--repro-sanitize`` (run every simulated backend on the
instrumented event loop) and the ``sanitized_env`` fixture.
"""

pytest_plugins = ["repro.lint.pytest_plugin"]
