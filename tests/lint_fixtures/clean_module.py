"""Fixture: a module the determinism linter must accept unchanged."""

import heapq

import numpy as np


def schedule(heap, when, sequence, event):
    heapq.heappush(heap, (when, sequence, event))


def draw(seed, task_ids, done_at, now):
    rng = np.random.default_rng(seed)
    ordered = [rng.random() for _ in sorted(set(task_ids))]
    return ordered, done_at <= now
