"""RPR101 clean: the threaded mutation is under the module lock."""

import threading

RESULTS: dict = {}
_LOCK = threading.Lock()


def worker() -> None:
    with _LOCK:
        RESULTS["answer"] = 42


def launch() -> None:
    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
