"""RPR101 noqa: the unlocked mutation carries a justification."""

import threading

RESULTS: dict = {}


def worker() -> None:
    RESULTS["answer"] = 42  # repro: noqa[RPR101] single writer by design


def launch() -> None:
    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
