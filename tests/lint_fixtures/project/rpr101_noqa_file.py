"""RPR101 file-level noqa: the whole module opts out of the rule."""

# repro: noqa-file[RPR101]: fixture exercising file-level suppression

import threading

RESULTS: dict = {}


def worker() -> None:
    RESULTS["answer"] = 42


def launch() -> None:
    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
