"""RPR101 trigger: module state mutated on a threaded path, no lock."""

import threading

RESULTS: dict = {}
_LOCK = threading.Lock()


def worker() -> None:
    RESULTS["answer"] = 42


def launch() -> None:
    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
