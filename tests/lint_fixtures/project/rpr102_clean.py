"""RPR102 clean: every path takes the locks in the same order."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward() -> None:
    with lock_a:
        with lock_b:
            pass


def also_forward() -> None:
    with lock_a:
        with lock_b:
            pass
