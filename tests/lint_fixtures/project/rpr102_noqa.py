"""RPR102 noqa: the inversion witness site carries a justification."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward() -> None:
    with lock_a:
        with lock_b:  # repro: noqa[RPR102] orders serialized by caller
            pass


def backward() -> None:
    with lock_b:
        with lock_a:
            pass
