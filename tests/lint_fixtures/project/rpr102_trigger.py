"""RPR102 trigger: two locks taken in opposite orders on two paths."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward() -> None:
    with lock_a:
        with lock_b:
            pass


def backward() -> None:
    with lock_b:
        with lock_a:
            pass
