"""RPR103 clean: the callback chain reads simulated time only."""


class Runner:
    def __init__(self, env) -> None:
        self.env = env

    def start(self) -> None:
        self.env.process(self._driver())

    def _driver(self):
        yield self._step()

    def _step(self) -> float:
        return self.env.now
