"""RPR103 noqa: the impure call carries a justification."""

import time


class Runner:
    def __init__(self, env) -> None:
        self.env = env

    def start(self) -> None:
        self.env.process(self._driver())

    def _driver(self):
        yield self._step()

    def _step(self) -> float:
        return time.time()  # repro: noqa[RPR103] progress logging only
