"""RPR104 clean: chunked submissions ship plain picklable specs."""

from repro.sweep.pool import SweepPool


def sweep(chunks):
    pool = SweepPool(4)
    futures = [pool.submit_chunk(chunk) for chunk in chunks]
    return [future.result() for future in futures]
