"""RPR104 noqa: the chunked capture is acknowledged inline."""

from repro.sweep.pool import SweepPool


def sweep(specs):
    pool = SweepPool(4)
    futures = [
        pool.submit_chunk([lambda: spec.run() for spec in chunk])  # repro: noqa[RPR104] test double, never run
        for chunk in specs
    ]
    return [future.result() for future in futures]
