"""RPR104 trigger: a lambda rides inside a chunked pool submission."""

from repro.sweep.pool import SweepPool


def sweep(specs):
    pool = SweepPool(4)
    futures = [
        pool.submit_chunk([lambda: spec.run() for spec in chunk])
        for chunk in specs
    ]
    return [future.result() for future in futures]
