"""RPR104 clean: a module-level function is picklable."""

from concurrent.futures import ProcessPoolExecutor


def double(x):
    return x * 2


def sweep(items):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(double, item) for item in items]
    return [future.result() for future in futures]
