"""RPR104 noqa: the capture carries a justification."""

from concurrent.futures import ProcessPoolExecutor


def sweep(items):
    with ProcessPoolExecutor() as pool:
        futures = [
            pool.submit(lambda x: x * 2, item)  # repro: noqa[RPR104] fork-only pool
            for item in items
        ]
    return [future.result() for future in futures]
