"""RPR104 trigger: a lambda hides inside a dict payload of a chunked
pool submission (the worker-capture payload shape)."""

from repro.sweep.pool import SweepPool


def sweep(specs):
    pool = SweepPool(4)
    futures = [
        pool.submit_chunk({"specs": chunk, "progress": lambda n: n})
        for chunk in specs
    ]
    return [future.result() for future in futures]
