"""RPR104 trigger: a lambda shipped to a ProcessPoolExecutor."""

from concurrent.futures import ProcessPoolExecutor


def sweep(items):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda x: x * 2, item) for item in items]
    return [future.result() for future in futures]
