"""RPR105 clean: spans closed by with-statements, directly or by name."""


def process(item):
    return item


def record(tracer, items):
    with tracer.span("work"):
        for item in items:
            process(item)


def record_by_handle(tracer, items):
    handle = tracer.span("work")
    with handle:
        for item in items:
            process(item)
