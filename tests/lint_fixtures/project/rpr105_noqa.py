"""RPR105 noqa: the open span carries a justification."""


def process(item):
    return item


def record(tracer, items):
    span = tracer.span("work")  # repro: noqa[RPR105] closed by the caller
    for item in items:
        process(item)
    return span
